#![allow(clippy::all)] // vendored shim: keep diff-to-upstream minimal, not lint-clean

//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the Fx hash function (the multiply-rotate hash used by the
//! Rust compiler) and the usual `FxHashMap` / `FxHashSet` aliases. The
//! algorithm matches the published one, so hash quality and performance
//! characteristics are the same as the real crate's.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: a fast, non-cryptographic multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: &str| {
            let mut h = FxHasher::default();
            h.write(x.as_bytes());
            h.finish()
        };
        assert_eq!(h("hello"), h("hello"));
        assert_ne!(h("hello"), h("world"));
    }
}
