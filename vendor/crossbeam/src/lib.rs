#![allow(clippy::all)] // vendored shim: keep diff-to-upstream minimal, not lint-clean

//! Offline stand-in for `crossbeam`, providing only the scoped-thread API
//! this workspace uses, implemented over `std::thread::scope`.
//!
//! Supported surface:
//!
//! ```
//! let result = crossbeam::scope(|scope| {
//!     let h = scope.spawn(|_| 40 + 2);
//!     h.join().unwrap()
//! })
//! .unwrap();
//! assert_eq!(result, 42);
//! ```
//!
//! Limitation: the `&Scope` argument handed to a spawned closure is a dummy
//! — nested `spawn` from *inside* a worker thread is not supported (the
//! workspace never does this; workers receive `|_|`).

use std::marker::PhantomData;

/// Scoped-thread module, mirroring `crossbeam::thread`.
pub mod thread {
    use super::*;

    /// Result type of [`scope`] and of joining a scoped thread.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
        pub(crate) _marker: PhantomData<&'env ()>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives a dummy
        /// `&Scope` (nested spawning is unsupported in this shim).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'_, '_>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let s = self
                .inner
                .expect("vendored crossbeam shim: spawn from inside a worker is unsupported");
            ScopedJoinHandle(s.spawn(move || {
                let dummy = Scope { inner: None, _marker: PhantomData };
                f(&dummy)
            }))
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller.
    /// All spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: Some(s), _marker: PhantomData };
            f(&wrapper)
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1usize, 2, 3, 4];
        let total: usize = crate::scope(|scope| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| scope.spawn(move |_| c.iter().sum::<usize>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
