#![allow(clippy::all)] // vendored shim: keep diff-to-upstream minimal, not lint-clean

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` with parking_lot's
//! non-poisoning API (`lock()` / `read()` / `write()` return guards
//! directly). A poisoned std lock is recovered transparently, matching
//! parking_lot's semantics of never poisoning.

use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable that never poisons.
///
/// Shim deviation from upstream: `wait` consumes and returns the guard
/// instead of taking `&mut` — the shim's guards are `std` guards, which
/// can only be waited on by value.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified;
    /// re-acquires the lock before returning. Spurious wakeups possible.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
