#![allow(clippy::all)] // vendored shim: keep diff-to-upstream minimal, not lint-clean

//! Offline stand-in for `criterion` 0.5.
//!
//! Implements `Criterion::bench_function`, `Bencher::{iter, iter_batched,
//! iter_with_large_drop}`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros over a simple wall-clock harness: a warm-up
//! phase sizes the batch, then measurement samples report mean / median /
//! min per iteration. No statistical regression analysis, no HTML reports —
//! stdout only, one line per benchmark.

use std::time::{Duration, Instant};

/// Batch sizing hints (accepted for API compatibility; the harness always
/// times per-iteration with setup excluded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The measurement driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.target_iters {
            let t = Instant::now();
            let out = routine();
            self.samples.push(t.elapsed());
            drop(black_box(out));
        }
    }

    /// Time `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.target_iters {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.samples.push(t.elapsed());
            drop(black_box(out));
        }
    }

    /// Like [`Bencher::iter`], dropping the output outside the timing.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.iter(routine);
    }
}

/// Benchmark registry and runner (stand-in for criterion's `Criterion`).
pub struct Criterion {
    /// Wall-clock budget per benchmark's measurement phase.
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Configure the measurement budget (builder style, like criterion).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Configure the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark and print a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up: run with a growing iteration count until the warm-up
        // budget is used, to estimate per-iteration cost.
        let mut iters = 1u64;
        let per_iter = loop {
            let mut b = Bencher { samples: Vec::new(), target_iters: iters };
            let t = Instant::now();
            f(&mut b);
            let elapsed = t.elapsed();
            if b.samples.is_empty() {
                break Duration::from_nanos(1); // closure never called iter
            }
            if elapsed >= self.warm_up_time || iters >= 1 << 20 {
                break elapsed / iters.max(1) as u32;
            }
            iters = iters.saturating_mul(4);
        };
        let target = (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let target_iters = target.clamp(10, 1_000_000);

        let mut b = Bencher { samples: Vec::with_capacity(target_iters as usize), target_iters };
        f(&mut b);
        if b.samples.is_empty() {
            println!("bench {name:<44} (no measurements)");
            return self;
        }
        b.samples.sort_unstable();
        let n = b.samples.len();
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let median = b.samples[n / 2];
        let min = b.samples[0];
        println!(
            "bench {name:<44} {n:>8} iters  mean {mean:>12?}  median {median:>12?}  min {min:>12?}"
        );
        self
    }
}

/// Expands to a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
