#![allow(clippy::all)] // vendored shim: keep diff-to-upstream minimal, not lint-clean

//! Offline stand-in for `rand` 0.8.
//!
//! Provides deterministic, seedable RNGs with the API subset the workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//! The core generator is xoshiro256++ seeded through SplitMix64 — high
//! quality for simulation workloads, not cryptographic.
//!
//! Streams differ from the real rand crate's ChaCha-based `StdRng`, so
//! datasets generated under a fixed seed differ in *content* (not in
//! statistical shape) from those the real crate would produce.

/// Core trait for generators: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy. The shim derives entropy from the system
    /// clock and address-space layout — fine for benchmarks, not security.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xdead_beef);
        let aslr = &t as *const _ as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(32))
    }
}

/// Values producible uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the workloads can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + hi as u128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u128 + v as u128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing randomness trait (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256 { s }
    }
}

/// Named RNG types mirroring `rand::rngs`.
pub mod rngs {
    pub use super::Xoshiro256 as StdRng;
    pub use super::Xoshiro256 as SmallRng;
}

/// Convenience thread-local-free generator, `rand::thread_rng` analogue.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: usize = a.gen_range(0..7);
            assert!(x < 7);
            let y: usize = a.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn ranges_cover_endpoints() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
