//! Test execution: config, RNG, and the case-running loop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Runner configuration. Only `cases` is honoured; other real-proptest
/// fields are absent.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case asserted something false.
    Fail(String),
    /// The case asked to be discarded (counted, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving generation (xoshiro-style via splitmix64
/// stream; seeded from the test name so failures reproduce across runs).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a string (e.g. the test's full path).
    pub fn seeded_from(name: &str) -> Self {
        // FNV-1a over the name, then a splitmix64 scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "TestRng::below(0)");
        // Lemire multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Kept for prelude compatibility (`use ...::TestRunner`); the shim drives
/// everything through [`run_proptest`], but a manual runner can also
/// generate values directly.
#[derive(Clone, Debug)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// A runner with deterministic seeding from `name`.
    pub fn new_seeded(name: &str) -> Self {
        TestRunner { rng: TestRng::seeded_from(name) }
    }

    /// Generate one value from `strategy`.
    pub fn generate<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new_seeded("proptest::default_runner")
    }
}

/// Generate `config.cases` inputs from `strategy` and run `test` on each.
/// Panics (failing the enclosing `#[test]`) on the first case whose result
/// is `Fail` or whose body panics, printing the generated input first.
pub fn run_proptest<S, F>(config: &ProptestConfig, strategy: &S, test: F, name: &str)
where
    S: Strategy,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::seeded_from(name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => case += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejects += 1;
                if rejects > 10 * config.cases.max(1) {
                    panic!("proptest {name}: too many rejected cases ({rejects}), last: {why}");
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest {name} failed at case {case} with input {shown}: {msg}");
            }
            Err(payload) => {
                eprintln!("proptest {name} panicked at case {case} with input {shown}");
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::seeded_from("x");
        let mut b = TestRng::seeded_from("x");
        let mut c = TestRng::seeded_from("y");
        let (sa, sb, sc): (Vec<_>, Vec<_>, Vec<_>) = (
            (0..8).map(|_| a.next_u64()).collect(),
            (0..8).map(|_| b.next_u64()).collect(),
            (0..8).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::seeded_from("bounds");
        for bound in [1u64, 2, 3, 7, 100, u64::MAX] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::seeded_from("floats");
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
