//! Regex-subset string generation.
//!
//! Supports the patterns the workspace's tests use: a sequence of atoms,
//! each an escaped class (`\PC`, `\n`, …), a character class (`[a-z0-9_-]`,
//! ranges, escapes, leading `^` negation), or a literal character, followed
//! by an optional `{m,n}` / `{n}` repetition. Unsupported syntax panics
//! with the offending pattern, so silent misgeneration is impossible.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate chars (char classes, escapes, literals).
    Class(Vec<char>),
    /// Any printable char (`\PC`): ASCII printable plus a unicode sample.
    AnyPrintable,
}

/// Characters sampled for `\PC` beyond printable ASCII — enough to exercise
/// multi-byte UTF-8 handling without full category tables.
const UNICODE_SAMPLE: &[char] =
    &['é', 'ß', 'λ', 'Ж', '中', '日', '한', '🙂', '𝛼', 'Ω', '→', '…', '\u{00a0}'];

fn printable_ascii() -> impl Iterator<Item = char> {
    (0x20u8..0x7f).map(|b| b as char)
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, lo, hi) in &atoms {
        let span = (hi - lo) as u64 + 1;
        let n = lo + rng.below(span) as usize;
        for _ in 0..n {
            out.push(sample(atom, rng));
        }
    }
    out
}

fn sample(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
        Atom::AnyPrintable => {
            // Mostly ASCII with a unicode sprinkle, mirroring proptest's
            // bias toward simple characters.
            if rng.below(8) == 0 {
                UNICODE_SAMPLE[rng.below(UNICODE_SAMPLE.len() as u64) as usize]
            } else {
                let ascii: Vec<char> = printable_ascii().collect();
                ascii[rng.below(ascii.len() as u64) as usize]
            }
        }
    }
}

/// Parse into (atom, min-reps, max-reps) triples.
fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
                i += 1;
                match c {
                    'P' | 'p' => {
                        // `\PC` / `\pC`: treat as "printable" (the tests
                        // only use the C category complement).
                        let cat = *chars
                            .get(i)
                            .unwrap_or_else(|| unsupported(pattern, "\\P needs a category"));
                        if cat != 'C' {
                            unsupported::<()>(pattern, "only \\PC is supported");
                        }
                        i += 1;
                        Atom::AnyPrintable
                    }
                    other => Atom::Class(vec![unescape(other)]),
                }
            }
            '{' | '}' | '*' | '+' | '?' | '|' | '(' | ')' => {
                unsupported::<()>(pattern, "quantifier/group syntax outside the supported subset");
                unreachable!()
            }
            lit => {
                i += 1;
                Atom::Class(vec![lit])
            }
        };
        // Optional repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| unsupported(pattern, "unterminated {"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.parse().unwrap_or_else(|_| unsupported(pattern, "bad {m,n}")),
                    b.parse().unwrap_or_else(|_| unsupported(pattern, "bad {m,n}")),
                ),
                None => {
                    let n = body.parse().unwrap_or_else(|_| unsupported(pattern, "bad {n}"));
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "bad repetition in pattern {pattern:?}");
        out.push((atom, lo, hi));
    }
    out
}

/// Parse a `[...]` class starting after the `[`; returns (set, next index).
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut set: Vec<char> = Vec::new();
    let mut first = true;
    while i < chars.len() && (chars[i] != ']' || first) {
        first = false;
        let c = if chars[i] == '\\' {
            i += 1;
            let e = *chars
                .get(i)
                .unwrap_or_else(|| unsupported(pattern, "trailing backslash in class"));
            i += 1;
            unescape(e)
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // Range `a-z` (a `-` not at the end and not after an escape-start).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).map_or(false, |&n| n != ']') {
            let hi = chars[i + 1];
            i += 2;
            let (lo, hi) = (c as u32, hi as u32);
            assert!(lo <= hi, "bad class range in {pattern:?}");
            for code in lo..=hi {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
        } else {
            set.push(c);
        }
    }
    if chars.get(i) != Some(&']') {
        unsupported::<()>(pattern, "unterminated [class]");
    }
    i += 1;
    if negated {
        let excluded = set;
        set = printable_ascii().filter(|c| !excluded.contains(c)).collect();
    }
    set.dedup();
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    (set, i)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn unsupported<T>(pattern: &str, what: &str) -> T {
    panic!("vendored proptest shim: unsupported regex {pattern:?} ({what})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::seeded_from("string-tests")
    }

    #[test]
    fn classes_and_reps() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{1,6}", &mut r);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn escapes_inside_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[<>\"\\\\ a-z.^@_:-]{0,120}", &mut r);
            assert!(s.len() <= 120);
            assert!(
                s.chars().all(|c| "<>\"\\ .^@_:-".contains(c) || c.is_ascii_lowercase()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_from_pattern("[ -~]{0,80}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_any() {
        let mut r = rng();
        let mut saw_unicode = false;
        for _ in 0..300 {
            let s = generate_from_pattern("\\PC{0,200}", &mut r);
            assert!(s.chars().count() <= 200);
            saw_unicode |= s.chars().any(|c| !c.is_ascii());
        }
        assert!(saw_unicode, "\\PC should exercise non-ASCII");
    }

    #[test]
    fn control_chars_in_class_literal() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_from_pattern("[a-z \\\\\"\n\t]{0,12}", &mut r);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || " \\\"\n\t".contains(c)), "{s:?}");
        }
    }
}
