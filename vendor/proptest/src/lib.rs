#![allow(clippy::all)] // vendored shim: keep diff-to-upstream minimal, not lint-clean

//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset of proptest this workspace's test suites use:
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`] unions,
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter` / `boxed`,
//! * integer range strategies, tuple strategies, `prop::collection::vec`,
//!   `prop::option::of`, `prop::sample::select`,
//! * regex-subset string strategies (`"[a-z]{1,6}"`, `"\\PC{0,200}"`, …).
//!
//! Differences from real proptest: **no shrinking** (a failing case reports
//! the raw generated input) and no persistence of failure seeds. Generation
//! is deterministic per test name, so failures reproduce across runs.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Strategy combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// `Option` strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The common import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors proptest's macro:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u8..8, v in prop::collection::vec(0u32..10, 0..5)) {
///         prop_assert!(v.len() < 5 || x < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `fn name(args in strategies) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_proptest(
                    &config,
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                    concat!(module_path!(), "::", stringify!($name)),
                );
            }
        )*
    };
}

/// Assert inside a proptest body, failing the case (not panicking) so the
/// runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Union of same-valued strategies: pick one branch uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u8..8, (a, b) in (0usize..3, 1usize..=4)) {
            prop_assert!(x < 8);
            prop_assert!(a < 3 && (1..=4).contains(&b));
        }

        #[test]
        fn vec_and_option(
            v in prop::collection::vec((0u8..4, 0u8..4), 0..10),
            o in prop::option::of(0u8..2),
        ) {
            prop_assert!(v.len() < 10);
            if let Some(x) = o { prop_assert!(x < 2); }
        }

        #[test]
        fn strings_match_their_class(s in "[a-z]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }

        #[test]
        fn select_and_map(
            w in prop::sample::select(vec!["a", "b", "c"]),
            n in (0u8..3).prop_map(|x| x as usize + 10),
        ) {
            prop_assert!(["a", "b", "c"].contains(&w));
            prop_assert!((10..13).contains(&n));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..4).prop_flat_map(|n| {
            crate::strategy::vec(0usize..10, n..n + 1).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn oneof_unions(x in prop_oneof![(0u8..1).prop_map(|_| 1u32), (0u8..1).prop_map(|_| 2u32)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_report_input() {
        crate::test_runner::run_proptest(
            &ProptestConfig::with_cases(10),
            &(0u8..8,),
            |(x,)| {
                prop_assert!(x < 3, "assertion failed for {x}");
                Ok(())
            },
            "tests::failures_report_input",
        );
    }
}
