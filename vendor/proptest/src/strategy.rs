//! The `Strategy` trait and combinators (generate-only, no shrinking).

use crate::test_runner::TestRng;

/// A generator of random values. The shim's analogue of proptest's
/// `Strategy`; `Value` is the generated type directly (no value trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Retain only values satisfying `pred` (retries generation; panics
    /// after an excessive reject streak).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy alias used by [`Union`] / `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

/// Object-safe mirror of [`Strategy`].
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed branches; must be non-empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

// --- integer ranges ------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// --- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --- strings (regex subset) ----------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// --- collections ---------------------------------------------------------

/// Element-count specification for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// `prop::collection::vec`: a vector of `size` elements of `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let n = self.size.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of`: `None` in ~half the cases, `Some(inner)` otherwise.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`option_of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(2) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::sample::select`: pick one of the given values uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}
