//! # ganswer — graph data-driven natural-language question answering over RDF
//!
//! A from-scratch Rust reproduction of Zou et al., *"Natural Language Question
//! Answering over RDF — A Graph Data Driven Approach"* (SIGMOD 2014), the
//! system later released as **gAnswer**.
//!
//! Instead of disambiguating a question up front and emitting SPARQL (the
//! DEANNA / template-system approach), this system:
//!
//! 1. parses the question into a dependency tree ([`nlp`]),
//! 2. extracts *semantic relations* and builds a **semantic query graph**
//!    `Q^S` whose vertices/edges keep *all* candidate entity/predicate
//!    mappings alive ([`core`]),
//! 3. resolves the ambiguity lazily while searching for top-k subgraph
//!    matches of `Q^S` over the RDF graph ([`core::topk`]).
//!
//! The facade below re-exports each subsystem under a stable name. See the
//! crate-level docs of each for details, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```
//! use ganswer::prelude::*;
//!
//! // A curated mini knowledge graph, a mined paraphrase dictionary, and
//! // the QA pipeline on top of both.
//! let store = ganswer::datagen::mini_dbpedia();
//! let dict = ganswer::mini_dict(&store);
//! let system = GAnswer::new(&store, dict, GAnswerConfig::default());
//!
//! let response = system.answer("Who is the mayor of Berlin?");
//! assert_eq!(response.texts(), vec!["Klaus Wowereit"]);
//! ```

pub use gqa_baselines as baselines;
pub use gqa_core as core;
pub use gqa_datagen as datagen;
pub use gqa_fault as fault;
pub use gqa_linker as linker;
pub use gqa_nlp as nlp;
pub use gqa_obs as obs;
pub use gqa_paraphrase as paraphrase;
pub use gqa_rdf as rdf;
pub use gqa_registry as registry;
pub use gqa_server as server;
pub use gqa_sparql as sparql;

pub use gqa_datagen::patty::mini_dict;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use crate::mini_dict;
    pub use gqa_core::pipeline::{GAnswer, GAnswerConfig, Response};
    pub use gqa_core::sqg::SemanticQueryGraph;
    pub use gqa_nlp::parser::DependencyParser;
    pub use gqa_obs::Obs;
    pub use gqa_paraphrase::dict::ParaphraseDict;
    pub use gqa_rdf::store::Store;
    pub use gqa_rdf::term::Term;
}
