//! `ganswer` — interactive natural-language question answering over RDF.
//!
//! ```text
//! # demo mode: bundled mini-DBpedia + mined dictionary
//! cargo run --release --bin ganswer
//!
//! # your own data
//! cargo run --release --bin ganswer -- --data my.nt --dict my_dict.tsv
//! ```
//!
//! REPL commands: a bare line is a question; `:sqg` / `:sparql` / `:matches`
//! toggle extra output; `:explain` toggles a per-question EXPLAIN trace
//! (parse, candidates, pruning, TA rounds with θ/Upbound); `:aggregates`
//! toggles the aggregation extension; `:quit` exits.

use ganswer::core::pipeline::{GAnswer, GAnswerConfig};
use ganswer::obs::Obs;
use ganswer::paraphrase::ParaphraseDict;
use ganswer::rdf::Store;
use std::io::{BufRead, Write};
use std::sync::Arc;

#[derive(Clone, Debug)]
struct Options {
    data: Option<String>,
    dict: Option<String>,
    top_k: usize,
    questions: Vec<String>,
    metrics: Option<String>,
    explain: bool,
    threads: Option<usize>,
    serve: Option<String>,
    queue: Option<usize>,
    timeout_ms: Option<u64>,
    strict: bool,
    mini_dict: bool,
    snapshot: Option<String>,
    faults: Option<String>,
    fault_seed: u64,
    /// `--cache N` / `--no-cache` (`Some(0)`); `None` = serve default.
    cache: Option<usize>,
    access_log: Option<String>,
    flight_recorder: Option<usize>,
    /// Extra tenants for serve mode: repeatable `--store NAME=SPEC` where
    /// SPEC is `mini`, `DATA.nt`, or `DATA.nt,DICT.tsv`.
    stores: Vec<(String, String)>,
    /// `--durable DIR`: per-store write-ahead logging under `DIR/<store>/`.
    durable: Option<String>,
    /// `--compact-ops N`: overlay ops before a store folds into a fresh CSR.
    compact_ops: Option<usize>,
    /// `--max-upsert-bytes N`: body cap for the upsert route.
    max_upsert_bytes: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        data: None,
        dict: None,
        top_k: 10,
        questions: Vec::new(),
        metrics: None,
        explain: false,
        threads: None,
        serve: None,
        queue: None,
        timeout_ms: None,
        strict: false,
        mini_dict: false,
        snapshot: None,
        faults: None,
        fault_seed: 0,
        cache: None,
        access_log: None,
        flight_recorder: None,
        stores: Vec::new(),
        durable: None,
        compact_ops: None,
        max_upsert_bytes: None,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--data" => opts.data = Some(args.next().ok_or("--data needs a file")?),
            "--dict" => opts.dict = Some(args.next().ok_or("--dict needs a file")?),
            "--top-k" => {
                opts.top_k = args
                    .next()
                    .ok_or("--top-k needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --top-k: {e}"))?;
            }
            "--question" | "-q" => opts.questions.push(args.next().ok_or("-q needs a question")?),
            "--threads" => {
                opts.threads = Some(
                    args.next()
                        .ok_or("--threads needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                );
            }
            "--metrics" => opts.metrics = Some(args.next().ok_or("--metrics needs a file")?),
            "--explain" => opts.explain = true,
            "--serve" => {
                opts.serve = Some(args.next().ok_or("--serve needs ADDR (e.g. 127.0.0.1:8080)")?);
            }
            "--queue" => {
                opts.queue = Some(
                    args.next()
                        .ok_or("--queue needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --queue: {e}"))?,
                );
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    args.next()
                        .ok_or("--timeout-ms needs a number")?
                        .parse()
                        .map_err(|e| format!("bad --timeout-ms: {e}"))?,
                );
            }
            "--strict" => opts.strict = true,
            "--mini-dict" => opts.mini_dict = true,
            "--snapshot" => {
                opts.snapshot = Some(args.next().ok_or("--snapshot needs an output file")?);
            }
            "--cache" => {
                opts.cache = Some(
                    args.next()
                        .ok_or("--cache needs a number of responses")?
                        .parse()
                        .map_err(|e| format!("bad --cache: {e}"))?,
                );
            }
            "--no-cache" => opts.cache = Some(0),
            "--store" => {
                let spec = args.next().ok_or("--store needs NAME=DATA[,DICT] (or NAME=mini)")?;
                let (name, source) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --store {spec:?}: expected NAME=DATA[,DICT]"))?;
                if !ganswer::server::valid_tenant_name(name) {
                    return Err(format!(
                        "bad --store name {name:?}: use 1-64 chars of [A-Za-z0-9._-]"
                    ));
                }
                // Last-writer-wins here would silently drop an operator's
                // earlier spec (the registry insert loop would only ever see
                // the survivor), so repeats are a hard startup error.
                if opts.stores.iter().any(|(n, _)| n == name) {
                    return Err(format!(
                        "duplicate --store name {name:?}: each store may be given once \
                         (remove one of the conflicting --store flags)"
                    ));
                }
                if name == "default" {
                    return Err("bad --store name \"default\": the default store is built from \
                         --data/--dict"
                        .into());
                }
                opts.stores.push((name.to_owned(), source.to_owned()));
            }
            "--access-log" => {
                opts.access_log = Some(args.next().ok_or("--access-log needs a file")?);
            }
            "--flight-recorder" => {
                opts.flight_recorder = Some(
                    args.next()
                        .ok_or("--flight-recorder needs a capacity")?
                        .parse()
                        .map_err(|e| format!("bad --flight-recorder: {e}"))?,
                );
            }
            "--durable" => {
                opts.durable = Some(args.next().ok_or("--durable needs a directory")?);
            }
            "--compact-ops" => {
                opts.compact_ops = Some(
                    args.next()
                        .ok_or("--compact-ops needs a number of ops")?
                        .parse()
                        .map_err(|e| format!("bad --compact-ops: {e}"))?,
                );
            }
            "--max-upsert-bytes" => {
                opts.max_upsert_bytes = Some(
                    args.next()
                        .ok_or("--max-upsert-bytes needs a byte count")?
                        .parse()
                        .map_err(|e| format!("bad --max-upsert-bytes: {e}"))?,
                );
            }
            "--faults" => opts.faults = Some(args.next().ok_or("--faults needs a spec")?),
            "--fault-seed" => {
                opts.fault_seed = args
                    .next()
                    .ok_or("--fault-seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: ganswer [--data FILE.nt] [--dict FILE.tsv] [--top-k N] \
                     [--threads N] [--metrics FILE.prom] [--explain] [-q QUESTION]...\n\
                     \x20      ganswer --serve ADDR [--queue N] [--timeout-ms MS] [...]\n\n\
                     --threads N          worker threads for the online path (TA probe\n\
                     \x20                    fan-out and sharded pruning); 1 = strictly\n\
                     \x20                    serial; default: $GQA_THREADS, else all cores.\n\
                     \x20                    Results are identical at any thread count.\n\
                     \x20                    With --serve, also sizes the HTTP worker pool.\n\
                     --metrics FILE.prom  collect pipeline/store/linker metrics and write\n\
                     \x20                    them to FILE in Prometheus text format on exit\n\
                     --explain            print a per-question EXPLAIN trace (parse,\n\
                     \x20                    candidates, pruning, TA rounds with theta/Upbound)\n\
                     --serve ADDR         run the HTTP answering service on ADDR\n\
                     \x20                    (POST /answer, GET /metrics, GET /healthz,\n\
                     \x20                    POST /admin/reload to re-read --data/--dict);\n\
                     \x20                    SIGHUP also reloads; SIGINT/SIGTERM drain\n\
                     \x20                    in-flight requests and exit 0\n\
                     --queue N            (--serve) bounded admission queue; a full queue\n\
                     \x20                    sheds with 503 + Retry-After (default 64)\n\
                     --timeout-ms MS      (--serve) default per-request deadline; requests\n\
                     \x20                    past it get 504 (default 2000)\n\
                     --cache N            (--serve) answer cache capacity in responses\n\
                     \x20                    (default 1024); reloads invalidate stale entries\n\
                     --no-cache           (--serve) disable the answer cache\n\
                     --store NAME=SPEC    (--serve, repeatable) serve an extra named store\n\
                     \x20                    alongside the default; SPEC is \"mini\" (bundled\n\
                     \x20                    demo graph), \"DATA.nt\" (demo dictionary), or\n\
                     \x20                    \"DATA.nt,DICT.tsv\". Route with the \"store\"\n\
                     \x20                    field of POST /answer; manage live with\n\
                     \x20                    POST /admin/stores/{{load,unload,reload}} and\n\
                     \x20                    POST /admin/stores/<name>/upsert (N-Triples\n\
                     \x20                    body, \"-\"-prefixed lines delete)\n\
                     --durable DIR        (--serve) per-store write-ahead logging under\n\
                     \x20                    DIR/<store>/: upserts append + fsync to a WAL\n\
                     \x20                    before the 200 ack (concurrent writers share\n\
                     \x20                    one fsync via group commit), boot and reload\n\
                     \x20                    replay the log (torn tails truncated, never\n\
                     \x20                    fatal), and compaction checkpoints a base\n\
                     \x20                    snapshot then rotates the log. DIR/manifest\n\
                     \x20                    records stores loaded via /admin/stores/load\n\
                     \x20                    so a restart brings them back; default:\n\
                     \x20                    in-memory upserts\n\
                     --compact-ops N      (--serve) buffered overlay ops before a store\n\
                     \x20                    folds into a fresh CSR index (default 4096)\n\
                     --max-upsert-bytes N (--serve) request-body cap for the upsert route\n\
                     \x20                    only (default 4194304); larger bodies get 413\n\
                     --access-log FILE    (--serve) append one JSON line per request to\n\
                     \x20                    FILE, written off the hot path; flushed on\n\
                     \x20                    graceful shutdown\n\
                     --flight-recorder N  (--serve) retain up to N request traces for\n\
                     \x20                    GET /debug/requests[/<id>] with tail sampling\n\
                     \x20                    (default 256; 0 disables)\n\
                     --strict             abort loading on the first malformed N-Triples\n\
                     \x20                    line (default: skip, count, and continue)\n\
                     --mini-dict          use the built-in demo dictionary with --data\n\
                     \x20                    (for snapshots of the bundled graph)\n\
                     --snapshot OUT       load --data (or the bundled graph), write it as\n\
                     \x20                    a checksummed binary snapshot to OUT, and exit;\n\
                     \x20                    --data accepts snapshot files everywhere, so\n\
                     \x20                    boot and /admin/reload skip the N-Triples parse\n\
                     --faults SPEC        deterministic fault injection, e.g.\n\
                     \x20                    \"server.worker:panic:0.05;rdf.bfs:latency:0.5:20\"\n\
                     \x20                    (also read from $GQA_FAULTS when the flag is absent)\n\
                     --fault-seed N       seed for the fault-injection RNG (default 0,\n\
                     \x20                    or $GQA_FAULT_SEED with $GQA_FAULTS)\n\n\
                     REPL commands: :sqg :sparql :matches :explain :aggregates :quit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Publish component counters and write the Prometheus exposition.
fn write_metrics(system: &GAnswer<'_>, path: &str) {
    system.publish_metrics();
    match std::fs::write(path, system.obs().prometheus()) {
        Ok(()) => eprintln!("metrics written to {path}"),
        Err(e) => eprintln!("error: cannot write {path}: {e}"),
    }
}

/// Build one tenant's engine from a `--store` / `/admin/stores/load`
/// source spec: `"mini"` is the bundled demo graph with its mined demo
/// dictionary; otherwise `DATA[,DICT]`, where DATA is N-Triples text or a
/// binary snapshot and DICT a mined dictionary TSV (omitting DICT falls
/// back to the demo dictionary, which only fits snapshots of the demo
/// graph). The engine reloads by re-reading the spec and supports
/// incremental upserts (the pipeline is re-assembled around the mutated
/// store; the dictionary loaded at boot is reused).
fn tenant_engine(
    name: &str,
    source: &str,
    base: &Options,
    config: &GAnswerConfig,
    obs: &Obs,
) -> Result<ganswer::server::Engine, String> {
    let mut opts = base.clone();
    if source == "mini" {
        opts.data = None;
        opts.dict = None;
        opts.mini_dict = false;
    } else {
        match source.split_once(',') {
            Some((data, dict)) => {
                opts.data = Some(data.to_owned());
                opts.dict = Some(dict.to_owned());
                opts.mini_dict = false;
            }
            None => {
                opts.data = Some(source.to_owned());
                opts.dict = None;
                opts.mini_dict = true;
            }
        }
    }
    let build = {
        let config = config.clone();
        let obs = obs.clone();
        move || -> Result<GAnswer<'static>, String> {
            let (store, dict, parse_errors) = load(&opts)?;
            let system = GAnswer::shared(Arc::new(store), dict, config.clone(), obs.clone());
            system.obs().counter("gqa_rdf_parse_errors_total", &[]).add(parse_errors);
            Ok(system)
        }
    };
    let initial = build()?;
    configure_engine(upsertable_engine(initial, build), name, base, &config.fault)
}

/// Apply serve-mode engine options shared by the default store, `--store`
/// tenants, and stores loaded at runtime: the `--compact-ops` compaction
/// cadence and — with `--durable DIR` — a per-tenant write-ahead log under
/// `DIR/<name>/` (tenant names are `[A-Za-z0-9._-]`, so they are path-safe;
/// recovery replays the log before the engine serves its first request).
fn configure_engine(
    engine: ganswer::server::Engine,
    name: &str,
    opts: &Options,
    fault: &ganswer::fault::FaultPlan,
) -> Result<ganswer::server::Engine, String> {
    let mut engine = engine;
    if let Some(n) = opts.compact_ops {
        engine = engine.compact_after(n);
    }
    if let Some(root) = &opts.durable {
        let dir = std::path::Path::new(root).join(name);
        engine = engine
            .with_durable(&dir, fault.clone())
            .map_err(|e| format!("--durable {}: {e}", dir.display()))?;
    }
    Ok(engine)
}

/// Wrap a built system and its rebuild recipe in an [`Engine`] that also
/// supports incremental N-Triples upserts: the assemble step re-derives
/// the linker and literal indexes around the mutated store while reusing
/// the dictionary and configuration of the boot-time system.
fn upsertable_engine(
    initial: GAnswer<'static>,
    build: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
) -> ganswer::server::Engine {
    let (dict, config, obs) =
        (initial.dict().clone(), initial.config.clone(), initial.obs().clone());
    let assemble = move |store: Store| {
        Ok(GAnswer::shared(Arc::new(store), dict.clone(), config.clone(), obs.clone()))
    };
    ganswer::server::Engine::with_assemble(initial, build, assemble)
}

/// Load the triple store from `--data` or the bundled mini-DBpedia. A data
/// file starting with the snapshot magic is loaded through the binary path
/// (one checksummed pass, no N-Triples parse); anything else is treated as
/// N-Triples text. The second value is the number of malformed N-Triples
/// lines skipped by the default lenient parse (always 0 with `--strict` and
/// for snapshots).
fn load_store(opts: &Options) -> Result<(Store, u64), String> {
    let mut parse_errors = 0u64;
    let store = match &opts.data {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            if ganswer::rdf::is_snapshot(&bytes) {
                ganswer::rdf::read_snapshot(&bytes).map_err(|e| format!("{path}: {e}"))?
            } else {
                let text = String::from_utf8(bytes)
                    .map_err(|e| format!("{path}: not UTF-8 N-Triples text: {e}"))?;
                if opts.strict {
                    ganswer::rdf::ntriples::parse(&text).map_err(|e| e.to_string())?
                } else {
                    let (store, stats) = ganswer::rdf::ntriples::parse_lenient(&text);
                    parse_errors = stats.skipped as u64;
                    if stats.skipped > 0 {
                        eprintln!(
                            "warning: {path}: skipped {} malformed line(s), kept {} triples \
                             (first error: {}); use --strict to abort instead",
                            stats.skipped,
                            stats.triples,
                            stats.errors.first().map_or_else(String::new, |e| e.to_string()),
                        );
                    }
                    store
                }
            }
        }
        None => ganswer::datagen::mini_dbpedia(),
    };
    Ok((store, parse_errors))
}

/// Load data and dictionary. The third value is the malformed-line count
/// from [`load_store`], published as `gqa_rdf_parse_errors_total`.
fn load(opts: &Options) -> Result<(Store, ParaphraseDict, u64), String> {
    let (store, parse_errors) = load_store(opts)?;
    let dict = match &opts.dict {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            ParaphraseDict::from_text(&text, &store)?
        }
        None => {
            if opts.data.is_some() && !opts.mini_dict {
                return Err("--data without --dict: mine a dictionary first (see the \
                            offline_mining example) and pass it with --dict, or pass \
                            --mini-dict if the data is the bundled demo graph (e.g. a \
                            --snapshot of it)"
                    .into());
            }
            ganswer::mini_dict(&store)
        }
    };
    Ok((store, dict, parse_errors))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // Snapshot mode: load the store (no paraphrase dictionary needed),
    // serialize, write, exit. The output file is accepted by --data
    // everywhere a .nt file is.
    if let Some(out) = &opts.snapshot {
        let t0 = std::time::Instant::now();
        let (store, _) = match load_store(&opts) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let load_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        // Atomic replace (tmp + fsync + rename): a crash mid-write leaves
        // any existing OUT intact instead of a torn half-snapshot.
        if let Err(e) = ganswer::rdf::write_snapshot_file(&store, std::path::Path::new(out)) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(2);
        }
        let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
        println!(
            "snapshot written to {out}: {} triples, {} terms, {} bytes \
             (source load {:.2?}, encode+write {:.2?})",
            store.len(),
            store.dict().len(),
            bytes,
            load_time,
            t1.elapsed(),
        );
        return;
    }
    let (store, dict, parse_errors) = match load(&opts) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // --faults beats $GQA_FAULTS; an empty/absent spec is an inert plan.
    let fault = match &opts.faults {
        Some(spec) => ganswer::fault::FaultPlan::parse(spec, opts.fault_seed),
        None => ganswer::fault::FaultPlan::from_env(),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: bad fault spec: {e}");
        std::process::exit(2);
    });
    let stats = ganswer::rdf::stats::StoreStats::collect(&store);
    // --threads beats GQA_THREADS beats available parallelism.
    let concurrency = match opts.threads {
        Some(n) => ganswer::core::concurrency::Concurrency::with_threads(n),
        None => ganswer::core::concurrency::Concurrency::from_env(),
    };
    let mut config = GAnswerConfig {
        top_k: opts.top_k,
        concurrency,
        fault: fault.clone(),
        ..Default::default()
    };

    // Serve mode: same startup path (load + config above), then hand the
    // pipeline to the HTTP service instead of the REPL. Metrics are always
    // on — /metrics is one of the endpoints. The store sits behind a
    // reloadable engine: `POST /admin/reload` or SIGHUP re-reads
    // --data/--dict and atomically swaps the snapshot (the rebuild reuses
    // this Obs so metric series survive reloads, and the epoch bump
    // invalidates stale answer-cache entries).
    if let Some(addr) = &opts.serve {
        let obs = Obs::new();
        let rebuild = {
            let opts = opts.clone();
            let config = config.clone();
            let obs = obs.clone();
            move || -> Result<GAnswer<'static>, String> {
                let (store, dict, parse_errors) = load(&opts)?;
                let system = GAnswer::shared(Arc::new(store), dict, config.clone(), obs.clone());
                system.obs().counter("gqa_rdf_parse_errors_total", &[]).add(parse_errors);
                Ok(system)
            }
        };
        let initial = GAnswer::shared(Arc::new(store), dict, config.clone(), obs.clone());
        initial.obs().counter("gqa_rdf_parse_errors_total", &[]).add(parse_errors);
        let engine =
            match configure_engine(upsertable_engine(initial, rebuild), "default", &opts, &fault) {
                Ok(e) => Arc::new(e),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
        let mut server_config = ganswer::server::ServerConfig {
            cache_capacity: opts.cache.unwrap_or(1024),
            fault: fault.clone(),
            ..Default::default()
        };
        if let Some(n) = opts.max_upsert_bytes {
            server_config.limits.max_upsert_body_bytes = n.max(1);
        }
        // The default store plus any --store tenants live in one registry;
        // /admin/stores/load can add more at runtime through the factory.
        let registry = match ganswer::server::Registry::new(
            "default",
            Arc::clone(&engine),
            server_config.cache_capacity,
            obs.clone(),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let factory = {
            let base = opts.clone();
            let config = config.clone();
            let obs = obs.clone();
            Box::new(move |name: &str, source: &str| {
                tenant_engine(name, source, &base, &config, &obs)
            })
        };
        let mut registry = registry.with_factory(factory);
        // With --durable, DIR/manifest is the catalog of stores loaded at
        // runtime through /admin/stores/load: read it now (before attaching,
        // so replay below sees the pre-boot entries), then attach it so
        // future load/unload calls keep it current.
        let mut manifest_entries = Vec::new();
        if let Some(root) = &opts.durable {
            let root = std::path::Path::new(root);
            if let Err(e) = std::fs::create_dir_all(root) {
                eprintln!("error: --durable {}: {e}", root.display());
                std::process::exit(2);
            }
            let manifest = match ganswer::server::Manifest::open(root, fault.clone()) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: --durable {}: manifest: {e}", root.display());
                    std::process::exit(2);
                }
            };
            let options = format!(
                "compact_ops={} durable=1",
                opts.compact_ops.unwrap_or(ganswer::server::Engine::DEFAULT_COMPACT_OPS)
            );
            manifest_entries = manifest.entries();
            registry = registry.with_manifest(manifest.with_default_options(&options));
        }
        let registry = Arc::new(registry);
        for (name, source) in &opts.stores {
            let tenant = tenant_engine(name, source, &opts, &config, &obs)
                .and_then(|eng| registry.insert(name, Arc::new(eng)).map_err(|e| e.to_string()));
            if let Err(e) = tenant {
                eprintln!("error: --store {name}: {e}");
                std::process::exit(2);
            }
        }
        // Replay the manifest: every store that was live via
        // /admin/stores/load when the previous process died comes back
        // through the same factory (which also replays its WAL). Failures
        // are warnings, not fatal — the data that sourced a tenant may
        // legitimately be gone, and the rest of the server still serves.
        for entry in &manifest_entries {
            match registry.load(&entry.name, &entry.source) {
                Ok(_) => {}
                Err(ganswer::server::TenantError::AlreadyExists(_)) => eprintln!(
                    "warning: manifest store {:?} also given as a boot flag; the boot \
                     flag wins",
                    entry.name
                ),
                Err(e) => eprintln!(
                    "warning: manifest store {:?} ({}) failed to recover: {e}",
                    entry.name, entry.source
                ),
            }
        }
        if let Some(n) = opts.threads {
            server_config.workers = n.max(1);
        }
        if let Some(n) = opts.queue {
            server_config.queue_capacity = n.max(1);
        }
        if let Some(ms) = opts.timeout_ms {
            server_config.default_timeout_ms = ms.max(1);
        }
        if let Some(n) = opts.flight_recorder {
            server_config.flight_recorder = n;
        }
        let mut server = match ganswer::server::Server::bind_registry(
            addr.as_str(),
            Arc::clone(&registry),
            server_config,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot bind {addr}: {e}");
                std::process::exit(2);
            }
        };
        if let Some(path) = &opts.access_log {
            match ganswer::obs::AccessLog::to_file(std::path::Path::new(path)) {
                Ok(log) => server.set_access_log(log),
                Err(e) => {
                    eprintln!("error: cannot open access log {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        ganswer::server::signal::install();
        // SIGHUP-as-reload is opt-in: this serve path always runs a
        // reloadable engine, so it is safe to claim the signal here.
        ganswer::server::signal::install_reload();
        let local = server.local_addr().expect("bound listener has an address");
        let tenant_names: Vec<String> = registry.list().into_iter().map(|row| row.name).collect();
        println!(
            "ganswer serving on http://{local} — {} entities, {} triples; \
             stores: {}; \
             {} workers, queue {}, default deadline {} ms, answer cache {}, \
             flight recorder {} \
             (SIGTERM to stop, SIGHUP or POST /admin/reload to reload)",
            stats.entities,
            stats.triples,
            tenant_names.join(", "),
            server.config().workers,
            server.config().queue_capacity,
            server.config().default_timeout_ms,
            if server.config().cache_capacity > 0 {
                format!("{} responses", server.config().cache_capacity)
            } else {
                "off".to_owned()
            },
            if server.config().flight_recorder > 0 {
                format!("{} traces", server.config().flight_recorder)
            } else {
                "off".to_owned()
            },
        );
        let served = server.run();
        if let Some(path) = &opts.metrics {
            // Per-tenant publish so every store's series carry its label.
            for tenant in registry.ready() {
                tenant.publish_metrics();
            }
            match std::fs::write(path, obs.prometheus()) {
                Ok(()) => eprintln!("metrics written to {path}"),
                Err(e) => eprintln!("error: cannot write {path}: {e}"),
            }
        }
        println!(
            "ganswer: drained — {} accepted, {} served, {} shed, {} timed out",
            served.accepted, served.served, served.shed, served.timeouts
        );
        return;
    }

    let obs = if opts.metrics.is_some() { Obs::new() } else { Obs::disabled() };
    obs.counter("gqa_rdf_parse_errors_total", &[]).add(parse_errors);

    let mut show_sqg = false;
    let mut show_sparql = false;
    let mut show_matches = false;
    let mut explain = opts.explain;

    let run = |system: &GAnswer<'_>,
               q: &str,
               show_sqg: bool,
               show_sparql: bool,
               show_matches: bool,
               explain: bool| {
        let r = if explain { system.answer_traced(q) } else { system.answer(q) };
        if let Some(t) = &r.trace {
            println!("{}", t.render());
        }
        match (&r.failure, r.boolean, r.count) {
            (Some(f), _, _) => println!("  no answer ({f:?})"),
            (None, Some(b), _) => println!("  {}", if b { "yes" } else { "no" }),
            (None, None, Some(c)) => println!("  {c}"),
            (None, None, None) => {
                for a in &r.answers {
                    println!("  {}", a.text);
                }
            }
        }
        if show_sqg {
            if let Some(g) = &r.sqg {
                println!("--- semantic query graph ---\n{g}");
            }
        }
        if show_sparql {
            for s in &r.sparql {
                println!("--- sparql --- {s}");
            }
        }
        if show_matches {
            for m in r.matches.iter().take(5) {
                let b: Vec<String> =
                    m.bindings.iter().map(|&x| system.store().term(x).to_string()).collect();
                println!("--- match ({:+.3}) --- {}", m.score, b.join(" · "));
            }
        }
        println!(
            "  [{} total: understand {:?}, evaluate {:?}]",
            q.len(),
            r.understanding_time,
            r.evaluation_time
        );
    };

    // One-shot mode.
    if !opts.questions.is_empty() {
        let system = GAnswer::with_obs(&store, dict, config.clone(), obs.clone());
        for q in &opts.questions {
            println!("Q: {q}");
            run(&system, q, false, true, false, explain);
        }
        if let Some(path) = &opts.metrics {
            write_metrics(&system, path);
        }
        return;
    }

    // REPL.
    println!(
        "ganswer — {} entities, {} triples, {} predicates. Ask a question (\":quit\" to exit).",
        stats.entities, stats.triples, stats.predicates
    );
    let stdin = std::io::stdin();
    let mut system = GAnswer::with_obs(&store, dict.clone(), config.clone(), obs.clone());
    loop {
        print!("? ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            ":quit" | ":q" | ":exit" => break,
            ":sqg" => {
                show_sqg = !show_sqg;
                println!("  sqg output: {show_sqg}");
            }
            ":sparql" => {
                show_sparql = !show_sparql;
                println!("  sparql output: {show_sparql}");
            }
            ":matches" => {
                show_matches = !show_matches;
                println!("  match output: {show_matches}");
            }
            ":explain" => {
                explain = !explain;
                println!("  explain output: {explain}");
            }
            ":aggregates" => {
                config.enable_aggregates = !config.enable_aggregates;
                system = GAnswer::with_obs(&store, dict.clone(), config.clone(), obs.clone());
                println!("  aggregation extension: {}", config.enable_aggregates);
            }
            q => run(&system, q, show_sqg, show_sparql, show_matches, explain),
        }
    }
    if let Some(path) = &opts.metrics {
        write_metrics(&system, path);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args_from;

    fn parse(args: &[&str]) -> Result<super::Options, String> {
        parse_args_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn distinct_store_names_parse() {
        let opts = parse(&["--serve", "127.0.0.1:0", "--store", "a=mini", "--store", "b=mini"])
            .expect("distinct names parse");
        assert_eq!(
            opts.stores,
            vec![("a".to_owned(), "mini".to_owned()), ("b".to_owned(), "mini".to_owned())]
        );
    }

    #[test]
    fn duplicate_store_name_is_rejected_and_names_the_tenant() {
        let err = parse(&["--store", "movies=mini", "--store", "movies=data.nt"])
            .expect_err("duplicate names must not last-writer-win");
        assert!(err.contains("duplicate --store name"), "unexpected error: {err}");
        assert!(err.contains("\"movies\""), "error must name the tenant: {err}");
    }

    #[test]
    fn duplicate_check_is_by_name_not_by_spec() {
        // Same NAME=SPEC twice is still a duplicate — the operator repeated
        // themselves, and the second flag would have been silently dropped.
        let err = parse(&["--store", "m=mini", "--store", "m=mini"]).unwrap_err();
        assert!(err.contains("duplicate --store name \"m\""), "unexpected error: {err}");
    }

    #[test]
    fn store_named_default_is_rejected_at_parse_time() {
        let err = parse(&["--store", "default=mini"]).unwrap_err();
        assert!(err.contains("default"), "unexpected error: {err}");
    }

    #[test]
    fn invalid_store_name_still_rejected() {
        let err = parse(&["--store", "bad/name=mini"]).unwrap_err();
        assert!(err.contains("bad --store name"), "unexpected error: {err}");
    }
}
