#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation into results/.
# See DESIGN.md §5 for the experiment ↔ binary index and EXPERIMENTS.md for
# the recorded paper-vs-measured comparison.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

bins=(
  exp1_dictionary_precision
  exp2_offline_time
  exp3_end_to_end
  exp4_heuristic_rules
  exp5_failure_analysis
  table11_response_times
  fig6_online_time
  complexity_scaling
  ablations
  scale_end_to_end
)
for b in "${bins[@]}"; do
  echo "== $b =="
  cargo run --release -p gqa-bench --bin "$b" | tee "results/$b.txt"
done
cargo bench -p gqa-bench | tee results/criterion.txt
echo "All experiment outputs written to results/."
