//! Cross-crate integration: consistency between independently implemented
//! subsystems (matcher ↔ SPARQL engine, dictionary serialization ↔ answers,
//! N-Triples round trip ↔ answers).

use ganswer::core::pipeline::{GAnswer, GAnswerConfig};
use ganswer::paraphrase::ParaphraseDict;

const QUESTIONS: &[&str] = &[
    "Who was married to an actor that played in Philadelphia?",
    "Who is the mayor of Berlin?",
    "Who is the uncle of John F. Kennedy, Jr.?",
    "Give me all movies directed by Francis Ford Coppola.",
    "Which countries are connected by the Rhine?",
    "What is the birth name of Angela Merkel?",
];

#[test]
fn generated_sparql_agrees_with_the_matcher() {
    // The top match's SPARQL, executed through the (independent) SPARQL
    // engine, must contain the matcher's answers.
    let store = ganswer::datagen::mini_dbpedia();
    let sys = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
    for q in QUESTIONS {
        let r = sys.answer(q);
        assert!(r.failure.is_none(), "{q}: {:?}", r.failure);
        let sparql = r.sparql.first().expect("at least one query");
        let rs =
            ganswer::sparql::run(&store, sparql).unwrap_or_else(|e| panic!("{q}: {e}\n{sparql}"));
        let sparql_answers: Vec<String> =
            rs.rows.iter().map(|row| store.term(row[0]).label().into_owned()).collect();
        for a in &r.answers {
            // Every best-tier matcher answer appears among the SPARQL rows
            // of some generated query.
            let anywhere = r.sparql.iter().any(|sq| {
                ganswer::sparql::run(&store, sq)
                    .map(|rs| {
                        rs.rows.iter().any(|row| store.term(row[0]).label() == a.text.as_str())
                    })
                    .unwrap_or(false)
            });
            assert!(
                anywhere,
                "{q}: answer {a:?} missing from all generated SPARQL ({sparql_answers:?})"
            );
        }
    }
}

#[test]
fn dictionary_serialization_preserves_answers() {
    let store = ganswer::datagen::mini_dbpedia();
    let dict = ganswer::mini_dict(&store);
    let text = dict.to_text(&store);
    let reloaded = ParaphraseDict::from_text(&text, &store).expect("reload");
    let sys1 = GAnswer::new(&store, dict, GAnswerConfig::default());
    let sys2 = GAnswer::new(&store, reloaded, GAnswerConfig::default());
    for q in QUESTIONS {
        assert_eq!(sys1.answer(q).texts(), sys2.answer(q).texts(), "{q}");
    }
}

#[test]
fn ntriples_roundtrip_preserves_answers() {
    let store = ganswer::datagen::mini_dbpedia();
    let text = ganswer::rdf::ntriples::serialize(&store);
    let reparsed = ganswer::rdf::ntriples::parse(&text).expect("reparse");
    let sys1 = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
    let sys2 = GAnswer::new(&reparsed, ganswer::mini_dict(&reparsed), GAnswerConfig::default());
    for q in QUESTIONS {
        let mut a = sys1.answer(q).texts().into_iter().map(str::to_owned).collect::<Vec<_>>();
        let mut b = sys2.answer(q).texts().into_iter().map(str::to_owned).collect::<Vec<_>>();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{q}");
    }
}

#[test]
fn ambiguous_store_answers_match_plain_store() {
    // Decoys must never change gold answers (they share labels but carry
    // only decoy predicates).
    let plain = ganswer::datagen::mini_dbpedia();
    let noisy = ganswer::datagen::minidbp::ambiguous_dbpedia(6, 7);
    let sys1 = GAnswer::new(&plain, ganswer::mini_dict(&plain), GAnswerConfig::default());
    let sys2 = GAnswer::new(&noisy, ganswer::mini_dict(&noisy), GAnswerConfig::default());
    for q in QUESTIONS {
        let mut a = sys1.answer(q).texts().into_iter().map(str::to_owned).collect::<Vec<_>>();
        let mut b = sys2.answer(q).texts().into_iter().map(str::to_owned).collect::<Vec<_>>();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{q}");
    }
}

#[test]
fn deanna_and_ganswer_agree_on_unambiguous_questions() {
    let store = ganswer::datagen::mini_dbpedia();
    let ours = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
    let theirs = ganswer::baselines::Deanna::new(
        &store,
        ganswer::mini_dict(&store),
        ganswer::baselines::DeannaConfig::default(),
    );
    for q in ["Who is the mayor of Berlin?", "Who founded Intel?", "What is the capital of Canada?"]
    {
        let mut a = ours.answer(q).texts().into_iter().map(str::to_owned).collect::<Vec<_>>();
        let mut b = theirs.answer(q).answers;
        a.sort();
        b.sort();
        assert_eq!(a, b, "{q}");
    }
}
