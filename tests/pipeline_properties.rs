//! Property-based tests over the whole pipeline.

use ganswer::core::matcher::{find_matches, MatcherConfig};
use ganswer::core::pipeline::{GAnswer, GAnswerConfig};
use ganswer::core::topk::top_k;
use ganswer::nlp::DependencyParser;
use ganswer::rdf::schema::Schema;
use proptest::prelude::*;

/// Template-generated questions: every instantiation must parse into a
/// well-formed dependency tree and never panic anywhere in the pipeline.
fn arb_question() -> impl Strategy<Value = String> {
    let wh = prop::sample::select(vec!["Who", "What", "Which cities", "Which films"]);
    let verb = prop::sample::select(vec![
        "is the mayor of",
        "was married to",
        "directed",
        "founded",
        "is the capital of",
        "flows through",
    ]);
    let ent = prop::sample::select(vec![
        "Berlin",
        "Antonio Banderas",
        "Intel",
        "Canada",
        "the Weser",
        "Philadelphia",
        "Zanzibar Floof", // unlinkable on purpose
    ]);
    (wh, verb, ent).prop_map(|(w, v, e)| format!("{w} {v} {e}?"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn templated_questions_never_panic(q in arb_question()) {
        let store = ganswer::datagen::mini_dbpedia();
        let sys = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
        let tree = DependencyParser::new().parse(&q);
        if let Some(t) = &tree {
            prop_assert!(t.is_well_formed(), "{q}\n{t}");
        }
        let r = sys.answer(&q);
        // Scores are log-probabilities: non-positive, sorted descending.
        for w in r.matches.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for m in &r.matches {
            prop_assert!(m.score <= 1e-9, "{q}: positive score {m:?}");
        }
    }

    #[test]
    fn arbitrary_text_never_panics(q in "[ -~]{0,80}") {
        let store = ganswer::datagen::mini_dbpedia();
        let sys = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
        let _ = sys.answer(&q);
    }

    /// TA top-k equals the score-sorted prefix of exhaustive matching on
    /// whatever mapped query the pipeline produces.
    #[test]
    fn topk_is_a_prefix_of_exhaustive(idx in 0usize..6) {
        let questions = [
            "Who was married to an actor that played in Philadelphia?",
            "Who is the mayor of Berlin?",
            "Who is the uncle of John F. Kennedy, Jr.?",
            "Give me all movies directed by Francis Ford Coppola.",
            "Which countries are connected by the Rhine?",
            "Who founded Intel?",
        ];
        let store = ganswer::datagen::mini_dbpedia();
        let sys = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
        let Some(u) = sys.understand(questions[idx]) else { return Ok(()); };
        let Ok(mapped) = sys.map(&u.sqg) else { return Ok(()); };
        let schema = Schema::new(&store);
        let (ta, _) = top_k(&store, &schema, &mapped, &MatcherConfig::default(), 5);
        let mut all = find_matches(&store, &schema, &mapped, &MatcherConfig::default(), None);
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        prop_assert!(ta.len() <= all.len());
        for (t, a) in ta.iter().zip(all.iter()) {
            prop_assert!((t.score - a.score).abs() < 1e-9, "score mismatch: {} vs {}", t.score, a.score);
        }
    }

    /// Fewer decoys never change the answer set (monotone robustness of the
    /// lazy disambiguation).
    #[test]
    fn decoy_count_does_not_change_answers(decoys in 0usize..6) {
        let store = ganswer::datagen::minidbp::ambiguous_dbpedia(decoys, 99);
        let sys = GAnswer::new(&store, ganswer::mini_dict(&store), GAnswerConfig::default());
        let r = sys.answer("Who is the mayor of Berlin?");
        prop_assert_eq!(r.texts(), vec!["Klaus Wowereit"]);
    }
}
