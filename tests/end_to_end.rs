//! End-to-end integration: the full pipeline over the bundled benchmark.

use ganswer::core::pipeline::{Failure, GAnswer, GAnswerConfig};
use ganswer::datagen::qald::{benchmark, Category, Gold};
use ganswer::datagen::{mini_dbpedia, BenchQuestion};
use ganswer::prelude::*;

fn system(store: &Store) -> GAnswer<'_> {
    GAnswer::new(store, ganswer::mini_dict(store), GAnswerConfig::default())
}

/// QALD-style exact-match check for one question.
fn is_right(store: &Store, sys: &GAnswer<'_>, q: &BenchQuestion) -> bool {
    let r = sys.answer(q.text);
    match &q.gold {
        Gold::Boolean(b) => r.boolean == Some(*b),
        Gold::Count(n) => r.count == Some(*n),
        Gold::OutOfScope => false,
        Gold::Resources(rs) => {
            let gold: Vec<String> =
                rs.iter().map(|iri| Term::iri(*iri).label().into_owned()).collect();
            let got: Vec<&str> = r.texts();
            got.len() == gold.len() && got.iter().all(|g| gold.iter().any(|x| x == g))
        }
        Gold::Literals(ls) => {
            let got: Vec<&str> = r.texts();
            got.len() == ls.len() && got.iter().all(|g| ls.contains(g))
        }
    }
    .then(|| {
        let _ = store;
    })
    .is_some()
}

#[test]
fn every_normal_question_is_answered_exactly_right() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let mut wrong = Vec::new();
    for q in benchmark().iter().filter(|q| q.category == Category::Normal) {
        if !is_right(&store, &sys, q) {
            wrong.push(format!("Q{}: {}", q.id, q.text));
        }
    }
    assert!(wrong.is_empty(), "normal questions answered wrongly: {wrong:#?}");
}

#[test]
fn overall_right_count_reproduces_table_8_shape() {
    // Paper Table 8: 32 right out of 99. Our substrate answers the same
    // ballpark (36 normal + a stray "other").
    let store = mini_dbpedia();
    let sys = system(&store);
    let right = benchmark().iter().filter(|q| is_right(&store, &sys, q)).count();
    assert!((32..=40).contains(&right), "right = {right}, expected the Table-8 ballpark");
}

#[test]
fn aggregation_questions_fail_closed_by_default() {
    let store = mini_dbpedia();
    let sys = system(&store);
    for q in benchmark().iter().filter(|q| q.category == Category::Aggregation) {
        let r = sys.answer(q.text);
        assert_eq!(r.failure, Some(Failure::Aggregation), "Q{}: {:?}", q.id, r.failure);
    }
}

#[test]
fn aggregation_extension_recovers_at_least_half() {
    let store = mini_dbpedia();
    let mut sys = system(&store);
    sys.config.enable_aggregates = true;
    let agg: Vec<_> =
        benchmark().into_iter().filter(|q| q.category == Category::Aggregation).collect();
    let right = agg.iter().filter(|q| is_right(&store, &sys, q)).count();
    assert!(
        right * 2 >= agg.len(),
        "aggregation extension answered only {right}/{} questions",
        agg.len()
    );
}

#[test]
fn entity_linking_hard_questions_fail_for_the_right_reason() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let mut el_failures = 0usize;
    let questions: Vec<_> =
        benchmark().into_iter().filter(|q| q.category == Category::EntityLinkingHard).collect();
    for q in &questions {
        let r = sys.answer(q.text);
        // No EL-hard question may be silently answered exactly right.
        let silently_right =
            r.failure.is_none() && !r.answers.is_empty() && is_right(&store, &sys, q);
        assert!(!silently_right, "Q{} unexpectedly right", q.id);
        if matches!(r.failure, Some(Failure::EntityLinking(_))) {
            el_failures += 1;
        }
    }
    assert!(
        el_failures * 2 >= questions.len(),
        "only {el_failures}/{} EL-hard questions fail at linking",
        questions.len()
    );
}

#[test]
fn boolean_negative_is_answered_no_not_failed() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let r = sys.answer("Is Melanie Griffith the wife of Barack Obama?");
    assert_eq!(r.boolean, Some(false), "{:?}", r.failure);
}

#[test]
fn top_k_limits_are_respected() {
    let store = mini_dbpedia();
    let mut sys = system(&store);
    sys.config.top_k = 1;
    let r = sys.answer("Which countries are connected by the Rhine?");
    // k = 1 but ties at the top score are all kept (paper footnote 4):
    // the four countries tie.
    assert_eq!(r.answers.len(), 4, "{:?}", r.answers);
}

#[test]
fn disabling_implicit_edges_loses_bare_np_questions() {
    let store = mini_dbpedia();
    let mut sys = system(&store);
    sys.config.implicit_edges = false;
    let r = sys.answer("Give me all companies in Munich.");
    // Without implicit edges the query degenerates to "all companies".
    assert!(r.answers.len() != 3 || r.failure.is_some(), "{:?}", r.answers);
}

#[test]
fn pruning_toggle_preserves_answers() {
    let store = mini_dbpedia();
    let mut sys = system(&store);
    sys.config.neighborhood_pruning = false;
    for text in [
        "Who was married to an actor that played in Philadelphia?",
        "Who is the mayor of Berlin?",
        "Give me all members of Prodigy.",
    ] {
        let no_prune = sys.answer(text);
        let with_prune = system(&store).answer(text);
        assert_eq!(no_prune.texts(), with_prune.texts(), "{text}");
    }
}

#[test]
fn responses_report_stage_timings() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let r = sys.answer("What is the capital of Canada?");
    assert!(r.failure.is_none());
    assert!(r.understanding_time.as_nanos() > 0);
    assert!(r.total_time() >= r.understanding_time);
}

#[test]
fn the_pipeline_is_repository_agnostic_yago2() {
    // §6: "We also evaluate our method in other RDF repositories, such as
    // Yago2." The same pipeline, mined fresh over the Yago-vocabulary
    // graph, answers its benchmark.
    use ganswer::datagen::miniyago::{mini_yago, yago_benchmark, yago_phrase_dataset};
    use ganswer::paraphrase::miner::{mine, MinerConfig};
    let store = mini_yago();
    let dict = mine(&store, &yago_phrase_dataset(), &MinerConfig::default());
    let sys = GAnswer::new(&store, dict, GAnswerConfig::default());
    let mut right = 0usize;
    let mut failures = Vec::new();
    let benchmark = yago_benchmark();
    for (q, gold) in &benchmark {
        let r = sys.answer(q);
        let got = r.texts();
        if got.len() == gold.len() && got.iter().all(|g| gold.contains(g)) {
            right += 1;
        } else {
            failures.push(format!("{q}: got {got:?}, want {gold:?} ({:?})", r.failure));
        }
    }
    assert!(
        right * 4 >= benchmark.len() * 3,
        "only {right}/{} Yago questions right: {failures:#?}",
        benchmark.len()
    );
}

#[test]
fn nested_of_chains_compose_relations() {
    // "successor of the father of X" — two relation phrases chained through
    // an intermediate variable vertex, the multi-edge Q^S shape of Fig. 2.
    let store = mini_dbpedia();
    let sys = system(&store);
    let r = sys.answer("Who is the successor of the father of Queen Elizabeth II?");
    assert_eq!(r.texts(), vec!["Queen Elizabeth II"], "{:?}", r.failure);
    let sqg = r.sqg.expect("answered");
    assert_eq!(sqg.len(), 3, "{sqg}");
    assert_eq!(sqg.edges.len(), 2, "{sqg}");
}

#[test]
fn comparative_filter_extension() {
    // Exp 5: "They should be translated to SPARQLs with FILTER" — the
    // comparison extension answers threshold questions data-driven.
    let store = mini_dbpedia();
    let mut sys = system(&store);
    sys.config.enable_aggregates = true;
    let over = sys.answer("Which cities have more than 2000000 inhabitants?");
    assert!(over.failure.is_none(), "{:?}", over.failure);
    let mut texts = over.texts();
    texts.sort_unstable();
    assert_eq!(texts, vec!["Berlin", "Melbourne", "Sydney"], "{:?}", over.answers);
    let under = sys.answer("Which cities have fewer than 2000000 inhabitants?");
    let mut texts = under.texts();
    texts.sort_unstable();
    assert_eq!(texts, vec!["Munich", "Philadelphia"], "{:?}", under.answers);
}
