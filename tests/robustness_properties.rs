//! Robustness properties: no input and no budget may panic the pipeline,
//! and budgeted (degraded) answers are always drawn from the unbudgeted
//! result set.

use ganswer::core::concurrency::Concurrency;
use ganswer::core::pipeline::{GAnswer, GAnswerConfig};
use ganswer::fault::Budget;
use proptest::prelude::*;

fn system(store: &ganswer::rdf::Store, config: GAnswerConfig) -> GAnswer<'_> {
    GAnswer::new(store, ganswer::mini_dict(store), config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary UTF-8 (any printable code points, not just ASCII) never
    /// panics the pipeline — serial and with TA probe fan-out at 4
    /// threads, which exercises the panic-propagation path through the
    /// scoped worker pool.
    #[test]
    fn arbitrary_utf8_never_panics(q in "\\PC{0,60}") {
        let store = ganswer::datagen::mini_dbpedia();
        let serial = system(&store, GAnswerConfig {
            concurrency: Concurrency::serial(),
            ..GAnswerConfig::default()
        });
        let parallel = system(&store, GAnswerConfig {
            concurrency: Concurrency::with_threads(4),
            ..GAnswerConfig::default()
        });
        let a = serial.answer(&q);
        let b = parallel.answer(&q);
        prop_assert_eq!(a.texts(), b.texts(), "{:?}", q);
        prop_assert_eq!(a.failure, b.failure, "{:?}", q);
    }

    /// Arbitrary UTF-8 under arbitrary tight budgets never panics either:
    /// budget exhaustion must degrade, not crash.
    #[test]
    fn tight_budgets_never_panic(
        q in "\\PC{0,60}",
        frontier in 1usize..64,
        candidates in 1usize..4,
        rounds in 1usize..3,
    ) {
        let store = ganswer::datagen::mini_dbpedia();
        let sys = system(&store, GAnswerConfig {
            budget: Budget {
                max_frontier: frontier,
                max_candidates: candidates,
                max_ta_rounds: rounds,
                max_bytes: 1 << 16,
            },
            ..GAnswerConfig::default()
        });
        let _ = sys.answer(&q);
    }

    /// Every match a budgeted run returns is bit-identical to a match the
    /// unbudgeted run finds: degradation only ever *drops* work, it never
    /// invents or corrupts results.
    #[test]
    fn degraded_matches_are_a_subset_of_unbudgeted_matches(
        idx in 0usize..4,
        frontier in 4usize..200,
    ) {
        let questions = [
            "Who was married to an actor that played in Philadelphia?",
            "Who is the mayor of Berlin?",
            "Who is the uncle of John F. Kennedy, Jr.?",
            "Give me all cars that are produced in Germany.",
        ];
        let store = ganswer::datagen::mini_dbpedia();
        // Unbudgeted, with a large k so the budgeted top-k cannot contain
        // a (correct) match the unbudgeted run truncated away.
        let full_sys = system(&store, GAnswerConfig {
            top_k: 1000,
            ..GAnswerConfig::default()
        });
        let full = full_sys.answer(questions[idx]);
        let tight = system(&store, GAnswerConfig {
            budget: Budget { max_frontier: frontier, ..Budget::unlimited() },
            ..GAnswerConfig::default()
        });
        let r = tight.answer(questions[idx]);
        for m in &r.matches {
            prop_assert!(
                full.matches.iter().any(|f| f.bindings == m.bindings
                    && f.score.to_bits() == m.score.to_bits()),
                "budget {} invented match {:?}", frontier, m
            );
        }
    }
}
