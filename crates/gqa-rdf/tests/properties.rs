//! Property-based tests for the RDF substrate.

use gqa_rdf::paths::{simple_paths, simple_paths_dfs, PathConfig};
use gqa_rdf::store::StoreBuilder;
use gqa_rdf::triple::TriplePattern;
use gqa_rdf::{ntriples, Term, TermId};
use proptest::prelude::*;

/// A random small multigraph: edges (s, p, o) over `n` vertices and `k`
/// predicates.
fn arb_graph() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..40)
}

fn build(edges: &[(u8, u8, u8)]) -> gqa_rdf::Store {
    let mut b = StoreBuilder::new();
    for &(s, p, o) in edges {
        b.add_iri(&format!("v{s}"), &format!("p{p}"), &format!("v{o}"));
    }
    b.build()
}

proptest! {
    /// The bidirectional-BFS path enumerator agrees with the exhaustive DFS
    /// reference for every θ in 1..=4.
    #[test]
    fn bidirectional_bfs_matches_dfs(edges in arb_graph(), a in 0u8..8, b in 0u8..8, theta in 1usize..=4) {
        let store = build(&edges);
        let (Some(va), Some(vb)) = (store.iri(&format!("v{a}")), store.iri(&format!("v{b}"))) else {
            return Ok(());
        };
        let cfg = PathConfig::with_max_len(theta);
        let fast = simple_paths(&store, va, vb, &cfg);
        let slow = simple_paths_dfs(&store, va, vb, &cfg);
        prop_assert_eq!(fast, slow);
    }

    /// The concurrent memo cache is transparent: `PathCache::simple_paths`
    /// equals the uncached enumerator on every random graph and θ, and a
    /// second identical call is served from the pair cache.
    #[test]
    fn cached_paths_equal_uncached(edges in arb_graph(), a in 0u8..8, b in 0u8..8, theta in 1usize..=4) {
        let store = build(&edges);
        let (Some(va), Some(vb)) = (store.iri(&format!("v{a}")), store.iri(&format!("v{b}"))) else {
            return Ok(());
        };
        let cfg = PathConfig::with_max_len(theta);
        let plain = simple_paths(&store, va, vb, &cfg);
        let cache = gqa_rdf::PathCache::new(cfg);
        prop_assert_eq!(&*cache.simple_paths(&store, va, vb), &plain);
        let hits_before = cache.stats().hits;
        prop_assert_eq!(&*cache.simple_paths(&store, va, vb), &plain);
        if va != vb {
            prop_assert_eq!(cache.stats().hits, hits_before + 1);
        }
    }

    /// Every enumerated path is simple, within the bound, and correctly
    /// anchored; and every step corresponds to a real triple.
    #[test]
    fn paths_are_valid_walks(edges in arb_graph(), a in 0u8..8, b in 0u8..8) {
        let store = build(&edges);
        let (Some(va), Some(vb)) = (store.iri(&format!("v{a}")), store.iri(&format!("v{b}"))) else {
            return Ok(());
        };
        for p in simple_paths(&store, va, vb, &PathConfig::with_max_len(3)) {
            prop_assert!(p.len() <= 3);
            prop_assert_eq!(p.vertices[0], va);
            prop_assert_eq!(*p.vertices.last().unwrap(), vb);
            let mut sorted = p.vertices.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.vertices.len());
            for (i, step) in p.steps.iter().enumerate() {
                let (x, y) = (p.vertices[i], p.vertices[i + 1]);
                let exists = match step.dir {
                    gqa_rdf::Dir::Forward => store.contains(gqa_rdf::Triple::new(x, step.pred, y)),
                    gqa_rdf::Dir::Backward => store.contains(gqa_rdf::Triple::new(y, step.pred, x)),
                };
                prop_assert!(exists, "step {i} of {p:?} is not a store triple");
            }
        }
    }

    /// `matching` with any pattern equals a brute-force filter over all
    /// triples.
    #[test]
    fn matching_equals_linear_scan(
        edges in arb_graph(),
        sb in prop::option::of(0u8..8),
        pb in prop::option::of(0u8..3),
        ob in prop::option::of(0u8..8),
    ) {
        let store = build(&edges);
        let lookup = |name: String| store.iri(&name);
        let pat = TriplePattern {
            s: sb.and_then(|v| lookup(format!("v{v}"))),
            p: pb.and_then(|v| lookup(format!("p{v}"))),
            o: ob.and_then(|v| lookup(format!("v{v}"))),
        };
        let mut fast: Vec<_> = store.matching(pat).collect();
        fast.sort_unstable();
        let mut slow: Vec<_> = store.triples().filter(|t| pat.matches(t)).collect();
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    /// N-Triples serialization round-trips every store built from random
    /// edges plus random literals.
    #[test]
    fn ntriples_roundtrip(edges in arb_graph(), lits in prop::collection::vec("[a-z \\\\\"\n\t]{0,12}", 0..6)) {
        let mut b = StoreBuilder::new();
        for &(s, p, o) in &edges {
            b.add_iri(&format!("v{s}"), &format!("p{p}"), &format!("v{o}"));
        }
        for (i, l) in lits.iter().enumerate() {
            b.add_obj(&format!("v{}", i % 8), "rdfs:label", Term::lit(l.as_str()));
        }
        let store = b.build();
        let text = ntriples::serialize(&store);
        let round = ntriples::parse(&text).unwrap();
        prop_assert_eq!(store.len(), round.len());
        // Triple order follows dictionary ids, which differ between the two
        // stores; compare the *set* of serialized statements.
        let canon = |s: &str| { let mut v: Vec<_> = s.lines().map(str::to_owned).collect(); v.sort(); v };
        prop_assert_eq!(canon(&text), canon(&ntriples::serialize(&round)));
    }

    /// Dictionary interning: ids round-trip and stay dense.
    #[test]
    fn dict_ids_are_dense(names in prop::collection::vec("[a-z]{1,6}", 1..30)) {
        let mut d = gqa_rdf::Dict::new();
        let mut max = 0u32;
        for n in &names {
            let id = d.intern_iri(n);
            max = max.max(id.0);
            prop_assert_eq!(d.term(id).as_iri(), Some(n.as_str()));
        }
        prop_assert_eq!(max as usize + 1, d.len());
        prop_assert!(d.len() <= names.len());
    }

    /// Degree equals the number of incident triples counted from both sides.
    #[test]
    fn degree_consistency(edges in arb_graph(), v in 0u8..8) {
        let store = build(&edges);
        let Some(id) = store.iri(&format!("v{v}")) else { return Ok(()); };
        let manual = store
            .triples()
            .filter(|t| t.s == id)
            .count()
            + store.triples().filter(|t| t.o == id).count();
        prop_assert_eq!(store.degree(id), manual);
    }
}

#[test]
fn termid_is_small() {
    assert_eq!(std::mem::size_of::<TermId>(), 4);
    assert_eq!(std::mem::size_of::<gqa_rdf::Triple>(), 12);
}

proptest! {
    /// The N-Triples parser never panics, whatever the input; on success
    /// the parsed store re-serializes.
    #[test]
    fn ntriples_parser_never_panics(input in "\\PC{0,200}") {
        if let Ok(store) = gqa_rdf::ntriples::parse(&input) {
            let _ = gqa_rdf::ntriples::serialize(&store);
        }
    }

    /// The SPARQL-ish cursor machinery embedded in ntriples survives
    /// line-noise with '<', '"' and '\\' characters specifically.
    #[test]
    fn ntriples_parser_survives_quote_noise(input in "[<>\"\\\\ a-z.^@_:-]{0,120}") {
        let _ = gqa_rdf::ntriples::parse(&input);
    }
}
