//! Property-based equivalence of the delta-overlay store against a
//! from-scratch rebuild.
//!
//! The multi-tenant upsert path serves answers straight off
//! `base + overlay` ([`Store::apply_delta`]) without ever rebuilding the
//! CSR, so the merged view must be observably identical to a compacted
//! store on every access path — same triples, same iteration order —
//! across all 8 triple-pattern shapes. Any divergence would make answers
//! depend on *when* compaction happened, which the engine promises they
//! never do.

use gqa_rdf::overlay::Delta;
use gqa_rdf::store::StoreBuilder;
use gqa_rdf::triple::TriplePattern;
use gqa_rdf::{Store, Term, TermId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One randomized mutation: even first byte = upsert, odd = delete.
/// Terms come from a small id space so deletes frequently hit existing
/// triples and upserts frequently collide with base triples (no-ops) —
/// the interesting overlay states.
type Op = (u8, u8, u8, u8);

fn arb_base() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..4, 0u8..12), 0..50)
}

fn arb_ops() -> impl Strategy<Value = Vec<Vec<Op>>> {
    // A few batches of ops: each batch is one `apply_delta` call, so the
    // overlay is itself layered on earlier overlay state.
    prop::collection::vec(prop::collection::vec((0u8..2, 0u8..12, 0u8..4, 0u8..14), 1..20), 1..4)
}

/// The same mixed term shapes the CSR equivalence test uses: mostly IRIs,
/// some literals (plain and typed), so the overlay's extra-terms path is
/// exercised alongside base-term reuse.
fn term_s(s: u8) -> Term {
    Term::iri(format!("v{s}"))
}

fn term_p(p: u8) -> Term {
    Term::iri(format!("p{p}"))
}

fn term_o(o: u8) -> Term {
    match o % 5 {
        4 => Term::lit(format!("lit{o}")),
        3 => Term::int_lit(o as i64),
        _ => Term::iri(format!("v{o}")),
    }
}

fn build_base(edges: &[(u8, u8, u8)]) -> Store {
    let mut b = StoreBuilder::new();
    for &(s, p, o) in edges {
        b.add(term_s(s), term_p(p), term_o(o));
    }
    b.build()
}

fn delta_of(ops: &[Op]) -> Delta {
    let mut d = Delta::new();
    for &(flag, s, p, o) in ops {
        if flag % 2 == 0 {
            d.upsert(term_s(s), term_p(p), term_o(o));
        } else {
            d.delete(term_s(s), term_p(p), term_o(o));
        }
    }
    d
}

/// The textual (id-independent) form of a triple, for comparing stores
/// that may assign different term ids.
fn text_triples(store: &Store) -> BTreeSet<(String, String, String)> {
    store
        .triples()
        .map(|t| {
            (store.term(t.s).to_string(), store.term(t.p).to_string(), store.term(t.o).to_string())
        })
        .collect()
}

/// Every term id either store knows, plus foreign ids past both
/// dictionaries (all scan paths must return empty, not panic).
fn probe_ids(a: &Store, b: &Store) -> Vec<TermId> {
    let n = a.term_count().max(b.term_count()) as u32 + 2;
    (0..n).map(TermId).collect()
}

/// Assert bit-identical scans across all 8 pattern shapes (s/p/o each
/// bound or free) for every probe id combination that shapes the scan.
fn assert_scans_identical(live: &Store, folded: &Store) {
    let ids = probe_ids(live, folded);
    let collect = |store: &Store, pat: TriplePattern| -> Vec<_> { store.matching(pat).collect() };
    // (None, None, None) — the full scan — once, not per id.
    assert_eq!(
        collect(live, TriplePattern { s: None, p: None, o: None }),
        collect(folded, TriplePattern { s: None, p: None, o: None }),
        "full scan diverged"
    );
    for &x in &ids {
        for shape in [
            TriplePattern { s: Some(x), p: None, o: None },
            TriplePattern { s: None, p: Some(x), o: None },
            TriplePattern { s: None, p: None, o: Some(x) },
        ] {
            assert_eq!(collect(live, shape), collect(folded, shape), "{shape:?} diverged");
        }
        for &y in &ids {
            for shape in [
                TriplePattern { s: Some(x), p: Some(y), o: None },
                TriplePattern { s: Some(x), p: None, o: Some(y) },
                TriplePattern { s: None, p: Some(x), o: Some(y) },
            ] {
                assert_eq!(collect(live, shape), collect(folded, shape), "{shape:?} diverged");
            }
        }
    }
    // Fully bound: contains() over the cross-product is the same check
    // with a cheaper shape (matching() delegates to contains()).
    for &s in &ids {
        for &p in &ids {
            for &o in &ids {
                let t = gqa_rdf::Triple::new(s, p, o);
                assert_eq!(live.contains(t), folded.contains(t), "contains({t:?}) diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `base + overlay` is observably identical to the folded CSR on all
    /// 8 pattern shapes, for every id — including ids with no edges and
    /// ids outside the dictionary — and the fold preserves term ids
    /// bit-for-bit.
    #[test]
    fn overlay_scans_equal_compacted_store(base in arb_base(), batches in arb_ops()) {
        let mut live = build_base(&base);
        for ops in &batches {
            let (next, _stats) = live.apply_delta(delta_of(ops));
            live = next;
        }
        let folded = live.compact();
        prop_assert!(!folded.has_overlay());
        // Term ids survive the fold (the engine's "answers cannot change"
        // invariant depends on this). `term_count` spans base dictionary
        // plus overlay extras on the live side.
        prop_assert_eq!(live.term_count(), folded.term_count());
        for (id, term) in live.terms() {
            prop_assert_eq!(term, folded.term(id));
        }
        assert_scans_identical(&live, &folded);
    }

    /// The overlay's *content* agrees with a naive model: a from-scratch
    /// store built from (base ∪ upserts) ∖ deletes, replayed in order.
    /// Term ids may differ (the rebuild interns in first-seen order), so
    /// the comparison is textual.
    #[test]
    fn overlay_content_equals_naive_replay(base in arb_base(), batches in arb_ops()) {
        let mut live = build_base(&base);
        let mut model: BTreeSet<(String, String, String)> = text_triples(&live);
        for ops in &batches {
            for &(flag, s, p, o) in ops {
                let key = (
                    term_s(s).to_string(),
                    term_p(p).to_string(),
                    term_o(o).to_string(),
                );
                if flag % 2 == 0 {
                    model.insert(key);
                } else {
                    model.remove(&key);
                }
            }
            let (next, _stats) = live.apply_delta(delta_of(ops));
            live = next;
        }
        prop_assert_eq!(text_triples(&live), model);
    }
}
