//! Property-based equivalence of the CSR store layout against the old
//! permutation-array layout, plus snapshot round-trip and corruption
//! hardening.
//!
//! The CSR indexes must be observably identical to the reference layout on
//! every `Store` access path — same triples, same iteration order — because
//! downstream code (dataset generators, BFS, TA probes) takes prefixes of
//! these scans and any reordering would change answers.

use gqa_rdf::csr::reference::RefIndexes;
use gqa_rdf::store::StoreBuilder;
use gqa_rdf::triple::TriplePattern;
use gqa_rdf::{read_snapshot, write_snapshot, Store, Term, TermId, Triple};
use proptest::prelude::*;

/// Random edges over a small id space, plus literal/typed/blank objects so
/// the dictionary exercises every term tag.
fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..4, 0u8..10), 0..60)
}

fn build(edges: &[(u8, u8, u8)]) -> Store {
    let mut b = StoreBuilder::new();
    for &(s, p, o) in edges {
        match o % 5 {
            // Mostly IRI objects (graph edges), some literals of each kind.
            4 => b.add_obj(&format!("v{s}"), &format!("p{p}"), Term::lit(format!("lit{o}"))),
            3 if s % 3 == 0 => {
                b.add_obj(&format!("v{s}"), &format!("p{p}"), Term::int_lit(o as i64))
            }
            2 if s % 4 == 0 => b.add(
                Term::Blank(format!("b{s}").into()),
                Term::iri(format!("p{p}")),
                Term::iri(format!("v{o}")),
            ),
            _ => b.add_iri(&format!("v{s}"), &format!("p{p}"), &format!("v{o}")),
        };
    }
    b.build()
}

/// Every term id in the store, plus a couple of foreign ids past the
/// dictionary (all paths must return empty, not panic).
fn probe_ids(store: &Store) -> Vec<TermId> {
    (0..store.dict().len() as u32 + 2).map(TermId).collect()
}

fn stores_equal(a: &Store, b: &Store) -> bool {
    a.triples().eq(b.triples())
        && a.dict().len() == b.dict().len()
        && a.dict().iter().zip(b.dict().iter()).all(|((_, x), (_, y))| x == y)
}

proptest! {
    /// Every access path over the CSR layout returns exactly what the old
    /// permutation layout did, in the same order, for every id (including
    /// ids with no edges and ids outside the dictionary).
    #[test]
    fn csr_equals_reference_on_every_access_path(edges in arb_edges()) {
        let store = build(&edges);
        let ts: Vec<Triple> = store.triples().collect();
        let rf = RefIndexes::build(&ts);
        let ids = probe_ids(&store);

        for &v in &ids {
            let got: Vec<Triple> = store.out_edges(v).collect();
            prop_assert_eq!(got, rf.out_edges(&ts, v), "out_edges({})", v);
            let got: Vec<Triple> = store.in_edges(v).collect();
            prop_assert_eq!(got, rf.in_edges(&ts, v), "in_edges({})", v);
            let got: Vec<Triple> = store.with_predicate(v).collect();
            prop_assert_eq!(got, rf.with_predicate(&ts, v), "with_predicate({})", v);
            for &w in &ids {
                let got: Vec<Triple> = store.out_edges_with(v, w).collect();
                prop_assert_eq!(
                    got,
                    rf.out_edges_with(&ts, v, w),
                    "out_edges_with({}, {})", v, w
                );
                let got: Vec<Triple> = store.in_edges_with(v, w).collect();
                prop_assert_eq!(
                    got,
                    rf.in_edges_with(&ts, v, w),
                    "in_edges_with({}, {})", v, w
                );
                let got: Vec<Triple> = store.with_predicate_object(v, w).collect();
                prop_assert_eq!(
                    got,
                    rf.with_predicate_object(&ts, v, w),
                    "with_predicate_object({}, {})", v, w
                );
            }
        }
        prop_assert_eq!(store.predicates(), rf.predicates(&ts), "predicates()");
    }

    /// `contains` and every `matching` pattern shape agree with the
    /// reference layout (and with each other on fully bound patterns).
    #[test]
    fn csr_matching_and_contains_equal_reference(
        edges in arb_edges(),
        s in 0u32..14,
        p in 0u32..14,
        o in 0u32..14,
    ) {
        let store = build(&edges);
        let ts: Vec<Triple> = store.triples().collect();
        let rf = RefIndexes::build(&ts);
        let (s, p, o) = (TermId(s), TermId(p), TermId(o));

        prop_assert_eq!(
            store.contains(Triple::new(s, p, o)),
            rf.contains(&ts, Triple::new(s, p, o))
        );
        // Each of the 8 pattern shapes, checked against a linear scan of the
        // reference-sorted triples with the reference's ordering semantics.
        for pat in [
            TriplePattern { s: Some(s), p: Some(p), o: Some(o) },
            TriplePattern { s: Some(s), p: Some(p), o: None },
            TriplePattern { s: Some(s), p: None, o: Some(o) },
            TriplePattern { s: Some(s), p: None, o: None },
            TriplePattern { s: None, p: Some(p), o: Some(o) },
            TriplePattern { s: None, p: Some(p), o: None },
            TriplePattern { s: None, p: None, o: Some(o) },
            TriplePattern { s: None, p: None, o: None },
        ] {
            let got: Vec<Triple> = store.matching(pat).collect();
            let want: Vec<Triple> = match (pat.s, pat.p, pat.o) {
                (Some(s), Some(p), Some(o)) => {
                    let t = Triple::new(s, p, o);
                    if rf.contains(&ts, t) { vec![t] } else { vec![] }
                }
                (Some(s), Some(p), None) => rf.out_edges_with(&ts, s, p).to_vec(),
                (Some(s), None, Some(o)) => {
                    rf.out_edges(&ts, s).iter().copied().filter(|t| t.o == o).collect()
                }
                (Some(s), None, None) => rf.out_edges(&ts, s).to_vec(),
                (None, Some(p), Some(o)) => rf.with_predicate_object(&ts, p, o),
                (None, Some(p), None) => rf.with_predicate(&ts, p),
                (None, None, Some(o)) => rf.in_edges(&ts, o),
                (None, None, None) => ts.clone(),
            };
            prop_assert_eq!(got, want, "matching({:?})", pat);
        }
    }

    /// A snapshot write→read round-trips to an equal store: same triples,
    /// same dictionary, and working access paths on the rebuilt indexes.
    #[test]
    fn snapshot_roundtrips_to_equal_store(edges in arb_edges()) {
        let store = build(&edges);
        let bytes = write_snapshot(&store);
        let loaded = read_snapshot(&bytes).expect("own snapshot must load");
        prop_assert!(stores_equal(&store, &loaded));
        for &v in &probe_ids(&store) {
            let a: Vec<Triple> = store.out_edges(v).collect();
            let b: Vec<Triple> = loaded.out_edges(v).collect();
            prop_assert_eq!(a, b);
            let a: Vec<Triple> = store.in_edges(v).collect();
            let b: Vec<Triple> = loaded.in_edges(v).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// Corrupting any single byte of a snapshot yields a clean error —
    /// never a panic, never a silently wrong store.
    #[test]
    fn corrupted_snapshot_fails_cleanly(edges in arb_edges(), at in 0usize..1_000_000, flip in 1u8..=255) {
        let store = build(&edges);
        let mut bytes = write_snapshot(&store);
        let i = at % bytes.len();
        bytes[i] ^= flip;
        prop_assert!(read_snapshot(&bytes).is_err(), "flip {:#04x} at byte {}", flip, i);
    }

    /// Truncating a snapshot at any length yields a clean error.
    #[test]
    fn truncated_snapshot_fails_cleanly(edges in arb_edges(), at in 0usize..1_000_000) {
        let store = build(&edges);
        let bytes = write_snapshot(&store);
        let len = at % bytes.len();
        prop_assert!(read_snapshot(&bytes[..len]).is_err(), "truncation at {}", len);
    }

    /// Arbitrary bytes never panic the loader (they may only error).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255u8, 0..200)) {
        let _ = read_snapshot(&bytes);
    }
}
