//! Property-based corruption tests for the write-ahead log.
//!
//! The contract under test: `wal::scan` (and therefore `Wal::open`)
//! never panics, whatever bytes are on disk — arbitrary garbage, a
//! valid log with random mutations, or a valid log cut at a random
//! point — and whenever it succeeds, the recovered records are a
//! faithful prefix of what was appended.

use gqa_rdf::wal::{scan, Wal};
use gqa_rdf::{Delta, DeltaOp, Term};
use proptest::prelude::*;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z:/]{0,12}".prop_map(Term::iri),
        "[a-zA-Z ]{0,12}".prop_map(Term::lit),
        ("[a-z]{0,8}", "[a-z:]{1,8}").prop_map(|(l, d)| Term::typed_lit(l, d)),
        "[a-z0-9]{1,8}".prop_map(|b: String| Term::Blank(b.into())),
    ]
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    prop::collection::vec((0u8..2, arb_term(), arb_term(), arb_term()), 0..6).prop_map(|ops| {
        let mut d = Delta::new();
        for (up, s, p, o) in ops {
            if up == 1 {
                d.upsert(s, p, o);
            } else {
                d.delete(s, p, o);
            }
        }
        d
    })
}

/// Build a real on-disk log from the batches and return its bytes.
fn log_bytes(batches: &[Delta], base_epoch: u64) -> Vec<u8> {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gqa-walprop-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal.log");
    let mut wal = Wal::create(&path, base_epoch, gqa_fault::FaultPlan::none()).unwrap();
    for (i, batch) in batches.iter().enumerate() {
        wal.append(base_epoch + 1 + i as u64, batch).unwrap();
    }
    drop(wal);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    bytes
}

fn ops_equal(a: &Delta, b: &Delta) -> bool {
    a.ops.len() == b.ops.len()
        && a.ops.iter().zip(&b.ops).all(|(x, y)| match (x, y) {
            (DeltaOp::Upsert(a1, a2, a3), DeltaOp::Upsert(b1, b2, b3))
            | (DeltaOp::Delete(a1, a2, a3), DeltaOp::Delete(b1, b2, b3)) => {
                a1 == b1 && a2 == b2 && a3 == b3
            }
            _ => false,
        })
}

proptest! {
    /// Arbitrary bytes — including ones that happen to start with the
    /// magic — never panic; they either fail cleanly or decode.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = scan(&bytes);
    }

    /// Arbitrary bytes appended after the valid magic prefix never
    /// panic either (exercises the header checksum and record scanner
    /// rather than the magic check).
    #[test]
    fn magic_prefixed_garbage_never_panics(tail in prop::collection::vec(0u8..=255, 0..256)) {
        let mut bytes = b"GQAWAL01".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = scan(&bytes);
    }

    /// A real log round-trips exactly: every appended batch comes back,
    /// in order, under its epoch.
    #[test]
    fn valid_logs_roundtrip(batches in prop::collection::vec(arb_delta(), 0..5), base in 0u64..1000) {
        let bytes = log_bytes(&batches, base);
        let s = scan(&bytes).unwrap();
        prop_assert_eq!(s.base_epoch, base);
        prop_assert_eq!(s.truncated_bytes, 0);
        prop_assert_eq!(s.records.len(), batches.len());
        for (i, (rec, want)) in s.records.iter().zip(&batches).enumerate() {
            prop_assert_eq!(rec.epoch, base + 1 + i as u64);
            prop_assert!(ops_equal(&rec.delta, want));
        }
    }

    /// Cutting a valid log anywhere recovers a clean record prefix (or
    /// hard-fails inside the atomically-written header) — never panics,
    /// never yields an altered record.
    #[test]
    fn random_truncation_recovers_a_prefix(
        batches in prop::collection::vec(arb_delta(), 1..5),
        cut in 0usize..1_000_000,
    ) {
        let bytes = log_bytes(&batches, 1);
        let clean = scan(&bytes).unwrap();
        let len = cut % (bytes.len() + 1);
        if let Ok(s) = scan(&bytes[..len]) {
            prop_assert!(s.records.len() <= clean.records.len());
            for (got, want) in s.records.iter().zip(&clean.records) {
                prop_assert_eq!(got.epoch, want.epoch);
                prop_assert!(ops_equal(&got.delta, &want.delta));
            }
        }
    }

    /// Randomly corrupting one byte of a valid log is always contained:
    /// no panic, and any surviving records are an unaltered prefix.
    #[test]
    fn random_byte_corruption_is_contained(
        batches in prop::collection::vec(arb_delta(), 1..5),
        at in 0usize..1_000_000,
        xor in 1u8..=255,
    ) {
        let bytes = log_bytes(&batches, 1);
        let clean = scan(&bytes).unwrap();
        let mut bad = bytes.clone();
        let i = at % bad.len();
        bad[i] ^= xor;
        if let Ok(s) = scan(&bad) {
            prop_assert!(s.records.len() <= clean.records.len());
            for (got, want) in s.records.iter().zip(&clean.records) {
                prop_assert_eq!(got.epoch, want.epoch);
                prop_assert!(ops_equal(&got.delta, &want.delta));
            }
        }
    }
}
