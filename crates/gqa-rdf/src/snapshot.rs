//! Epoch-stamped snapshot handles for atomic store reloads.
//!
//! The serving layer wants to swap in a freshly loaded [`crate::Store`]
//! (on `POST /admin/reload` or SIGHUP) without pausing in-flight
//! requests, and it wants every derived artifact — most importantly
//! answer-cache entries — to carry a proof of *which* store it was
//! computed against. [`Snapshot`] provides both: readers [`Snapshot::load`]
//! an `Arc` to an immutable [`Stamped`] value and keep using it for as
//! long as they like (old epochs stay alive until their last reader
//! drops), while [`Snapshot::swap`] atomically publishes a replacement
//! under a fresh, strictly increasing epoch. A cache entry stamped with
//! epoch *e* is valid iff the current epoch is still *e*; the epoch
//! check is one relaxed-ish read, so invalidation is free at lookup time
//! and requires no sweep at reload time.

use parking_lot::RwLock;
use std::sync::Arc;

/// A value plus the epoch under which it was published.
///
/// Epochs start at 1 (so 0 can serve as an "unstamped" sentinel
/// elsewhere) and increase by exactly 1 per [`Snapshot::swap`].
#[derive(Debug)]
pub struct Stamped<T> {
    /// The publication epoch of `value`.
    pub epoch: u64,
    /// The published value.
    pub value: T,
}

/// An atomically swappable, epoch-stamped handle to a shared value.
///
/// `load` is wait-free in practice (an uncontended `RwLock` read guard
/// around an `Arc::clone`); `swap` takes the write lock only for the
/// pointer exchange, never while building the replacement value — the
/// caller constructs the new `T` first, so readers observe either the
/// old or the new snapshot, nothing in between.
#[derive(Debug)]
pub struct Snapshot<T> {
    inner: RwLock<Arc<Stamped<T>>>,
}

impl<T> Snapshot<T> {
    /// Publish `value` as epoch 1.
    pub fn new(value: T) -> Self {
        Snapshot { inner: RwLock::new(Arc::new(Stamped { epoch: 1, value })) }
    }

    /// The currently published snapshot. The returned `Arc` pins that
    /// epoch's value for the caller's lifetime; later swaps don't
    /// invalidate it, they only make it stale.
    pub fn load(&self) -> Arc<Stamped<T>> {
        Arc::clone(&self.inner.read())
    }

    /// The current epoch (equivalent to `load().epoch` without cloning).
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// Atomically replace the published value, bumping the epoch by one.
    /// Returns the new epoch. In-flight readers holding the previous
    /// `Arc` are unaffected; the old value is dropped when its last
    /// reader goes away.
    pub fn swap(&self, value: T) -> u64 {
        let mut guard = self.inner.write();
        let epoch = guard.epoch + 1;
        *guard = Arc::new(Stamped { epoch, value });
        epoch
    }

    /// Atomically replace the published value at `max(current + 1, at)`,
    /// returning the epoch used. This is the WAL-recovery publish: after
    /// replay the engine must resume at an epoch no lower than the last
    /// one it acked to clients, while epochs stay strictly increasing for
    /// in-process readers (caches key on them) even if the requested
    /// epoch lags the current one.
    pub fn swap_at_least(&self, value: T, at: u64) -> u64 {
        let mut guard = self.inner.write();
        let epoch = (guard.epoch + 1).max(at);
        *guard = Arc::new(Stamped { epoch, value });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_start_at_one_and_increase_per_swap() {
        let snap = Snapshot::new("a");
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.load().epoch, 1);
        assert_eq!(snap.load().value, "a");
        assert_eq!(snap.swap("b"), 2);
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.load().value, "b");
        assert_eq!(snap.swap("c"), 3);
        assert_eq!(snap.load().epoch, 3);
    }

    #[test]
    fn swap_at_least_restores_higher_epochs_but_never_regresses() {
        let snap = Snapshot::new("a");
        // Recovery can jump the epoch forward past acked history...
        assert_eq!(snap.swap_at_least("b", 17), 17);
        assert_eq!(snap.epoch(), 17);
        // ...but a stale request can never stall or rewind it.
        assert_eq!(snap.swap_at_least("c", 5), 18);
        assert_eq!(snap.swap_at_least("d", 0), 19);
        assert_eq!(snap.load().value, "d");
    }

    #[test]
    fn swap_does_not_disturb_pinned_readers() {
        let snap = Snapshot::new(vec![1, 2, 3]);
        let pinned = snap.load();
        snap.swap(vec![9]);
        // The in-flight reader still sees its own epoch's value...
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.value, vec![1, 2, 3]);
        // ...but can tell it has gone stale.
        assert_ne!(pinned.epoch, snap.epoch());
        assert_eq!(snap.load().value, vec![9]);
    }

    #[test]
    fn concurrent_loads_see_a_coherent_epoch_value_pair() {
        let snap = std::sync::Arc::new(Snapshot::new(1u64));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let snap = Arc::clone(&snap);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let s = snap.load();
                        // Invariant: value always equals its epoch (the
                        // writer publishes them together).
                        assert_eq!(s.value, s.epoch);
                    }
                });
            }
            for _ in 0..500 {
                let next = snap.epoch() + 1;
                assert_eq!(snap.swap(next), next);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(snap.epoch(), 501);
    }
}
