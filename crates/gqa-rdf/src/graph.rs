//! Direction-blind graph view over a [`Store`].
//!
//! The offline miner (paper §3) explores the RDF graph *ignoring edge
//! directions*: "we ignore edge directions (in RDF graph) in a BFS process".
//! This module provides the undirected neighbor iterator that both the path
//! enumerator and the subgraph matcher use, restricted to IRI↔IRI edges
//! (literals are leaves, never interior path vertices).

use crate::ids::TermId;
use crate::paths::Dir;
use crate::store::Store;

/// One undirected step: predicate label, the vertex on the other side, and
/// the direction the underlying triple points in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Neighbor {
    /// Predicate of the traversed triple.
    pub pred: TermId,
    /// The vertex reached.
    pub other: TermId,
    /// `Forward` if the triple is `(v, pred, other)`, `Backward` if it is
    /// `(other, pred, v)`.
    pub dir: Dir,
}

/// Iterate the undirected neighborhood of `v`, skipping literal objects.
pub fn neighbors<'a>(store: &'a Store, v: TermId) -> impl Iterator<Item = Neighbor> + 'a {
    let fwd = store.out_edges(v).filter(|t| store.term(t.o).is_iri()).map(|t| Neighbor {
        pred: t.p,
        other: t.o,
        dir: Dir::Forward,
    });
    let bwd = store.in_edges(v).map(|t| Neighbor { pred: t.p, other: t.s, dir: Dir::Backward });
    fwd.chain(bwd)
}

/// Undirected degree of `v` counting only IRI↔IRI edges.
pub fn iri_degree(store: &Store, v: TermId) -> usize {
    neighbors(store, v).count()
}

/// Is there an edge between `a` and `b` (either direction) with predicate
/// `p`? Returns the direction of the first such edge found.
pub fn edge_between(store: &Store, a: TermId, p: TermId, b: TermId) -> Option<Dir> {
    if store.contains(crate::triple::Triple::new(a, p, b)) {
        Some(Dir::Forward)
    } else if store.contains(crate::triple::Triple::new(b, p, a)) {
        Some(Dir::Backward)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use crate::term::Term;

    fn sample() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("a", "p", "b");
        b.add_iri("c", "q", "a");
        b.add_obj("a", "label", Term::lit("A"));
        b.build()
    }

    #[test]
    fn neighbors_combine_directions_and_skip_literals() {
        let s = sample();
        let a = s.expect_iri("a");
        let ns: Vec<_> = neighbors(&s, a).collect();
        assert_eq!(ns.len(), 2, "literal neighbor must be skipped");
        assert!(ns.contains(&Neighbor {
            pred: s.expect_iri("p"),
            other: s.expect_iri("b"),
            dir: Dir::Forward
        }));
        assert!(ns.contains(&Neighbor {
            pred: s.expect_iri("q"),
            other: s.expect_iri("c"),
            dir: Dir::Backward
        }));
    }

    #[test]
    fn iri_degree_counts_both_directions() {
        let s = sample();
        assert_eq!(iri_degree(&s, s.expect_iri("a")), 2);
        assert_eq!(iri_degree(&s, s.expect_iri("b")), 1);
    }

    #[test]
    fn edge_between_reports_direction() {
        let s = sample();
        let (a, b, c) = (s.expect_iri("a"), s.expect_iri("b"), s.expect_iri("c"));
        let p = s.expect_iri("p");
        let q = s.expect_iri("q");
        assert_eq!(edge_between(&s, a, p, b), Some(Dir::Forward));
        assert_eq!(edge_between(&s, b, p, a), Some(Dir::Backward));
        assert_eq!(edge_between(&s, a, q, c), Some(Dir::Backward));
        assert_eq!(edge_between(&s, a, q, b), None);
    }
}
