//! N-Triples parsing and serialization.
//!
//! The curated datasets ship as N-Triples-style text; CURIEs are accepted in
//! place of full IRIs (`<dbr:Berlin>`). Supported object forms: IRI, blank
//! node, plain literal, typed literal. Escapes: `\"`, `\\`, `\n`, `\t`.

use crate::store::{Store, StoreBuilder};
use crate::term::Term;
use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for NtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtError {}

/// Parse an N-Triples document into a fresh store.
pub fn parse(input: &str) -> Result<Store, NtError> {
    let mut b = StoreBuilder::new();
    parse_into(input, &mut b)?;
    Ok(b.build())
}

/// Parse an N-Triples document into an existing builder, aborting on the
/// first malformed line (strict mode).
pub fn parse_into(input: &str, builder: &mut StoreBuilder) -> Result<(), NtError> {
    // Tolerate a UTF-8 BOM (editors and exports commonly prepend one).
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    for (i, raw) in input.lines().enumerate() {
        parse_statement(raw, i + 1, builder)?;
    }
    Ok(())
}

/// Outcome of a lenient parse: how much loaded, how much was skipped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Statements successfully added to the builder.
    pub triples: usize,
    /// Malformed lines skipped.
    pub skipped: usize,
    /// The first few parse errors (bounded so a corrupt gigabyte dump
    /// cannot balloon memory), for logging.
    pub errors: Vec<NtError>,
}

/// How many individual [`NtError`]s a lenient parse keeps for logging.
pub const MAX_RECORDED_ERRORS: usize = 20;

/// Parse an N-Triples document into a fresh store, skipping (and counting)
/// malformed lines instead of aborting: the recovery mode used by the CLI
/// loader unless `--strict` is given.
pub fn parse_lenient(input: &str) -> (Store, ParseStats) {
    let mut b = StoreBuilder::new();
    let stats = parse_lenient_into(input, &mut b);
    (b.build(), stats)
}

/// Lenient parse into an existing builder; see [`parse_lenient`].
pub fn parse_lenient_into(input: &str, builder: &mut StoreBuilder) -> ParseStats {
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let mut stats = ParseStats::default();
    for (i, raw) in input.lines().enumerate() {
        match parse_statement(raw, i + 1, builder) {
            Ok(true) => stats.triples += 1,
            Ok(false) => {}
            Err(e) => {
                stats.skipped += 1;
                if stats.errors.len() < MAX_RECORDED_ERRORS {
                    stats.errors.push(e);
                }
            }
        }
    }
    stats
}

/// Parse one line; `Ok(true)` when a statement was added, `Ok(false)` for
/// blank/comment lines.
fn parse_statement(raw: &str, line_no: usize, builder: &mut StoreBuilder) -> Result<bool, NtError> {
    match parse_terms(raw, line_no)? {
        Some((s, p, o)) => {
            builder.add(s, p, o);
            Ok(true)
        }
        None => Ok(false),
    }
}

/// Parse one statement line into its three terms; `Ok(None)` for
/// blank/comment lines.
fn parse_terms(raw: &str, line_no: usize) -> Result<Option<(Term, Term, Term)>, NtError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut cur = Cursor { s: line, pos: 0, line: line_no };
    let s = cur.parse_term()?;
    cur.skip_ws();
    let p = cur.parse_term()?;
    cur.skip_ws();
    let o = cur.parse_term()?;
    cur.skip_ws();
    if !cur.eat('.') {
        return Err(cur.err("expected terminating '.'"));
    }
    cur.skip_ws();
    if !cur.at_end() {
        return Err(cur.err("trailing content after '.'"));
    }
    if !s.is_iri() && !matches!(s, Term::Blank(_)) {
        return Err(cur.err("subject must be an IRI or blank node"));
    }
    if !p.is_iri() {
        return Err(cur.err("predicate must be an IRI"));
    }
    Ok(Some((s, p, o)))
}

/// Parse a delta stream: N-Triples statements, each optionally prefixed
/// with `-` to request deletion instead of upsert.
///
/// ```text
/// <dbr:Berlin> <dbo:mayor> <dbr:Kai_Wegner> .
/// - <dbr:Berlin> <dbo:mayor> <dbr:Michael_Mueller> .
/// ```
///
/// Strict by design — the admin upsert endpoint applies a batch atomically,
/// so one malformed line rejects the whole request with its line number
/// rather than half-applying it.
pub fn parse_delta(input: &str) -> Result<crate::overlay::Delta, NtError> {
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let mut delta = crate::overlay::Delta::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim_start();
        let (delete, stmt) = match line.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        if let Some((s, p, o)) = parse_terms(stmt, i + 1)? {
            if delete {
                delta.delete(s, p, o);
            } else {
                delta.upsert(s, p, o);
            }
        } else if delete {
            return Err(NtError {
                line: i + 1,
                message: "'-' must be followed by a statement".to_owned(),
            });
        }
    }
    Ok(delta)
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: &str) -> NtError {
        NtError { line: self.line, message: format!("{msg} (column {})", self.pos + 1) }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.s.len()
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn parse_term(&mut self) -> Result<Term, NtError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('<') {
            let end = rest.find('>').ok_or_else(|| self.err("unterminated IRI"))?;
            let iri = &rest[1..end];
            if iri.is_empty() {
                return Err(self.err("empty IRI"));
            }
            self.pos += end + 1;
            Ok(Term::iri(iri))
        } else if let Some(after) = rest.strip_prefix("_:") {
            let len = after
                .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
                .unwrap_or(after.len());
            if len == 0 {
                return Err(self.err("empty blank node label"));
            }
            self.pos += 2 + len;
            Ok(Term::Blank(after[..len].into()))
        } else if rest.starts_with('"') {
            let (lexical, consumed) = self.parse_quoted()?;
            self.pos += consumed;
            // Optional datatype.
            if self.rest().starts_with("^^<") {
                let tail = &self.rest()[3..];
                let end = tail.find('>').ok_or_else(|| self.err("unterminated datatype IRI"))?;
                let dt = tail[..end].to_owned();
                self.pos += 3 + end + 1;
                Ok(Term::typed_lit(lexical, dt))
            } else if self.rest().starts_with('@') {
                // Language tags are accepted and discarded (the curated data
                // is monolingual).
                let tail = &self.rest()[1..];
                let len = tail
                    .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                    .unwrap_or(tail.len());
                self.pos += 1 + len;
                Ok(Term::lit(lexical))
            } else {
                Ok(Term::lit(lexical))
            }
        } else {
            Err(self.err("expected '<', '\"' or '_:'"))
        }
    }

    /// Parse a quoted literal starting at `self.rest()[0] == '"'`. Returns
    /// the unescaped text and bytes consumed (including both quotes).
    fn parse_quoted(&self) -> Result<(String, usize), NtError> {
        let rest = self.rest();
        debug_assert!(rest.starts_with('"'));
        let mut out = String::new();
        let mut chars = rest.char_indices().skip(1);
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((out, i + 1)),
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, other)) => {
                        return Err(self.err(&format!("unknown escape '\\{other}'")))
                    }
                    None => return Err(self.err("dangling escape")),
                },
                other => out.push(other),
            }
        }
        Err(self.err("unterminated literal"))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

fn write_term(out: &mut String, t: &Term) {
    match t {
        Term::Iri(s) => {
            out.push('<');
            out.push_str(s);
            out.push('>');
        }
        Term::Literal { lexical, datatype } => {
            out.push('"');
            out.push_str(&escape(lexical));
            out.push('"');
            if let Some(dt) = datatype {
                out.push_str("^^<");
                out.push_str(dt);
                out.push('>');
            }
        }
        Term::Blank(b) => {
            out.push_str("_:");
            out.push_str(b);
        }
    }
}

/// Serialize a store as N-Triples text (one triple per line, SPO order).
pub fn serialize(store: &Store) -> String {
    let mut out = String::with_capacity(store.len() * 64);
    for t in store.triples() {
        write_term(&mut out, store.term(t.s));
        out.push(' ');
        write_term(&mut out, store.term(t.p));
        out.push(' ');
        write_term(&mut out, store.term(t.o));
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_triples() {
        let s = parse(
            "<dbr:Berlin> <dbo:country> <dbr:Germany> .\n\
             # a comment\n\
             \n\
             <dbr:Berlin> <rdfs:label> \"Berlin\" .\n\
             <dbr:Berlin> <dbo:population> \"3500000\"^^<xsd:integer> .\n",
        )
        .unwrap();
        assert_eq!(s.len(), 3);
        let berlin = s.expect_iri("dbr:Berlin");
        assert_eq!(s.out_edges(berlin).count(), 3);
    }

    #[test]
    fn parse_blank_nodes_and_lang_tags() {
        let s = parse("_:b0 <rdfs:label> \"Haus\"@de .\n").unwrap();
        assert_eq!(s.len(), 1);
        let t = s.triples().next().unwrap();
        assert_eq!(s.term(t.s), &Term::Blank("b0".into()));
        assert_eq!(s.term(t.o), &Term::lit("Haus"));
    }

    #[test]
    fn parse_escapes() {
        let s = parse("<a> <b> \"line\\nbreak \\\"quoted\\\" back\\\\slash\" .\n").unwrap();
        let t = s.triples().next().unwrap();
        assert_eq!(s.term(t.o).as_literal(), Some("line\nbreak \"quoted\" back\\slash"));
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let err = parse("<a> <b> <c> .\nbroken line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn error_on_literal_subject() {
        let err = parse("\"lit\" <b> <c> .\n").unwrap_err();
        assert!(err.message.contains("subject"));
    }

    #[test]
    fn error_on_missing_dot() {
        assert!(parse("<a> <b> <c>\n").is_err());
        assert!(parse("<a> <b> <c> . extra\n").is_err());
    }

    #[test]
    fn error_on_unterminated_forms() {
        assert!(parse("<a <b> <c> .\n").is_err());
        assert!(parse("<a> <b> \"open .\n").is_err());
        assert!(parse("<a> <b> \"x\"^^<dt .\n").is_err());
    }

    #[test]
    fn tolerates_bom_and_crlf() {
        let s = parse("\u{feff}<a> <b> <c> .\r\n<d> <e> <f> .\r\n").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lenient_parse_skips_and_counts_bad_lines() {
        let src = "<a> <b> <c> .\n\
                   broken line\n\
                   # comment\n\
                   \"lit\" <b> <c> .\n\
                   <d> <e> \"ok\" .\n\
                   <f> <g> <h>\n";
        let (store, stats) = parse_lenient(src);
        assert_eq!(store.len(), 2);
        assert_eq!(stats.triples, 2);
        assert_eq!(stats.skipped, 3);
        assert_eq!(stats.errors.len(), 3);
        assert_eq!(stats.errors[0].line, 2);
        assert_eq!(stats.errors[1].line, 4);
        assert_eq!(stats.errors[2].line, 6);
        // Strict mode still aborts at the first of those lines.
        assert_eq!(parse(src).unwrap_err().line, 2);
    }

    #[test]
    fn lenient_parse_bounds_recorded_errors() {
        let mut src = String::new();
        for _ in 0..(MAX_RECORDED_ERRORS + 15) {
            src.push_str("garbage\n");
        }
        let (store, stats) = parse_lenient(&src);
        assert_eq!(store.len(), 0);
        assert_eq!(stats.skipped, MAX_RECORDED_ERRORS + 15);
        assert_eq!(stats.errors.len(), MAX_RECORDED_ERRORS);
    }

    #[test]
    fn lenient_parse_of_clean_input_matches_strict() {
        let src = "\u{feff}<a> <b> <c> .\r\n<d> <e> <f> .\r\n";
        let (store, stats) = parse_lenient(src);
        assert_eq!(stats, ParseStats { triples: 2, skipped: 0, errors: vec![] });
        assert_eq!(serialize(&store), serialize(&parse(src).unwrap()));
    }

    #[test]
    fn roundtrip() {
        let src = "<dbr:Berlin> <dbo:country> <dbr:Germany> .\n\
                   <dbr:Berlin> <dbo:population> \"3500000\"^^<xsd:integer> .\n\
                   <dbr:Berlin> <rdfs:label> \"Berlin \\\"City\\\"\" .\n";
        let store = parse(src).unwrap();
        let round = parse(&serialize(&store)).unwrap();
        assert_eq!(store.len(), round.len());
        // Same triple *contents* (ids may differ): compare serializations of
        // re-sorted stores.
        assert_eq!(serialize(&store), serialize(&round));
    }

    #[test]
    fn parse_delta_mixes_upserts_and_deletes() {
        let src = "# comment\n\
                   <dbr:Berlin> <dbo:mayor> <dbr:Kai_Wegner> .\n\
                   \n\
                   - <dbr:Berlin> <dbo:mayor> <dbr:Michael_Mueller> .\n\
                   -<dbr:Berlin> <dbo:oldFact> <dbr:Gone> .\n";
        let delta = parse_delta(src).unwrap();
        assert_eq!(delta.len(), 3);
        assert!(matches!(delta.ops[0], crate::overlay::DeltaOp::Upsert(..)));
        assert!(matches!(delta.ops[1], crate::overlay::DeltaOp::Delete(..)));
        assert!(matches!(delta.ops[2], crate::overlay::DeltaOp::Delete(..)));
    }

    #[test]
    fn parse_delta_rejects_malformed_lines_with_line_numbers() {
        let err = parse_delta("<a> <b> <c> .\nbroken\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_delta("- \n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("'-' must be followed"));
        // A delete of a literal subject is as malformed as an upsert of one.
        assert!(parse_delta("- \"lit\" <b> <c> .\n").is_err());
    }

    #[test]
    fn parse_delta_roundtrips_through_apply() {
        let store = parse("<a> <b> <c> .\n<a> <b> <d> .\n").unwrap();
        let delta = parse_delta("<a> <b> <e> .\n- <a> <b> <c> .\n").unwrap();
        let (next, stats) = store.apply_delta(delta);
        assert_eq!(stats.added, 1);
        assert_eq!(stats.deleted, 1);
        assert_eq!(next.len(), 2);
        assert_eq!(serialize(&next), "<a> <b> <d> .\n<a> <b> <e> .\n");
    }
}
