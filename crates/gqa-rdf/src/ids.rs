//! Interned identifiers for RDF terms.
//!
//! Every [`crate::term::Term`] in a store is assigned a dense `u32` id by the
//! dictionary. Dense ids keep triples at 12 bytes and let indexes be plain
//! sorted vectors of integers.

use std::fmt;

/// A dense identifier for an interned RDF term.
///
/// Ids are only meaningful relative to the [`crate::dict::Dict`] that issued
/// them; comparing ids from different stores is a logic error (but not UB —
/// everything here is safe code).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a vector index. Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        TermId(u32::try_from(i).expect("more than u32::MAX terms"))
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = TermId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, TermId(42));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TermId(1) < TermId(2));
        assert_eq!(TermId(7), TermId(7));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", TermId(5)), "t5");
        assert_eq!(format!("{}", TermId(5)), "t5");
    }

    #[test]
    #[should_panic(expected = "more than u32::MAX terms")]
    fn from_index_overflow_panics() {
        let _ = TermId::from_index(u32::MAX as usize + 1);
    }
}
