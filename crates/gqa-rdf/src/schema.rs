//! Entity-vs-class classification and type lookup.
//!
//! Paper §2.2: *"If a vertex has an incoming adjacent edge with predicate
//! ⟨rdf:type⟩ or ⟨rdf:subclass⟩, it is a class vertex; otherwise, it is an
//! entity vertex."* The subgraph matcher needs this to decide whether a
//! candidate vertex of `Q^S` maps to an entity directly (Def. 3 cond. 1) or
//! constrains the entity's type (Def. 3 cond. 2).

use crate::ids::TermId;
use crate::store::Store;
use crate::term::vocab;
use rustc_hash::{FxHashMap, FxHashSet};

/// Precomputed schema facts over one store.
#[derive(Debug, Clone)]
pub struct Schema {
    classes: FxHashSet<TermId>,
    /// entity → its classes, including superclasses (transitive closure over
    /// `rdfs:subClassOf`).
    types: FxHashMap<TermId, Vec<TermId>>,
    /// class → its direct and transitive instances.
    instances: FxHashMap<TermId, Vec<TermId>>,
    rdf_type: Option<TermId>,
}

impl Schema {
    /// Scan the store and precompute class membership.
    pub fn new(store: &Store) -> Self {
        let rdf_type = store.iri(vocab::RDF_TYPE);
        let subclass = store.iri(vocab::RDFS_SUBCLASS_OF);

        let mut classes: FxHashSet<TermId> = FxHashSet::default();
        let mut direct_super: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        if let Some(ty) = rdf_type {
            for t in store.with_predicate(ty) {
                classes.insert(t.o);
            }
        }
        if let Some(sc) = subclass {
            for t in store.with_predicate(sc) {
                classes.insert(t.s);
                classes.insert(t.o);
                direct_super.entry(t.s).or_default().push(t.o);
            }
        }

        // Transitive superclass closure per class (graphs are tiny; a
        // memoized DFS would be overkill here but classes are few anyway).
        let mut all_supers: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        for &c in &classes {
            let mut seen: FxHashSet<TermId> = FxHashSet::default();
            let mut stack = vec![c];
            while let Some(x) = stack.pop() {
                if let Some(sups) = direct_super.get(&x) {
                    for &sup in sups {
                        if seen.insert(sup) {
                            stack.push(sup);
                        }
                    }
                }
            }
            let mut v: Vec<TermId> = seen.into_iter().collect();
            v.sort_unstable();
            all_supers.insert(c, v);
        }

        let mut types: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        let mut instances: FxHashMap<TermId, Vec<TermId>> = FxHashMap::default();
        if let Some(ty) = rdf_type {
            for t in store.with_predicate(ty) {
                let entry = types.entry(t.s).or_default();
                entry.push(t.o);
                instances.entry(t.o).or_default().push(t.s);
                if let Some(sups) = all_supers.get(&t.o) {
                    for &sup in sups {
                        entry.push(sup);
                        instances.entry(sup).or_default().push(t.s);
                    }
                }
            }
        }
        for v in types.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for v in instances.values_mut() {
            v.sort_unstable();
            v.dedup();
        }

        Schema { classes, types, instances, rdf_type }
    }

    /// Is `id` a class vertex?
    #[inline]
    pub fn is_class(&self, id: TermId) -> bool {
        self.classes.contains(&id)
    }

    /// Is `id` an entity vertex (an IRI vertex that is not a class)?
    pub fn is_entity(&self, store: &Store, id: TermId) -> bool {
        store.term(id).is_iri() && !self.is_class(id)
    }

    /// The classes of an entity, superclasses included.
    pub fn types_of(&self, entity: TermId) -> &[TermId] {
        self.types.get(&entity).map_or(&[], Vec::as_slice)
    }

    /// Does `entity` have type `class` (directly or via subclassing)?
    pub fn has_type(&self, entity: TermId, class: TermId) -> bool {
        self.types_of(entity).binary_search(&class).is_ok()
    }

    /// All (transitive) instances of a class.
    pub fn instances_of(&self, class: TermId) -> &[TermId] {
        self.instances.get(&class).map_or(&[], Vec::as_slice)
    }

    /// All class ids.
    pub fn classes(&self) -> impl Iterator<Item = TermId> + '_ {
        self.classes.iter().copied()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The interned id of `rdf:type`, if the store has any typing triples.
    pub fn rdf_type(&self) -> Option<TermId> {
        self.rdf_type
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;

    fn sample() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_iri("dbo:Actor", "rdfs:subClassOf", "dbo:Person");
        b.add_iri("dbo:Person", "rdfs:subClassOf", "owl:Thing");
        b.add_iri("dbr:Berlin", "rdf:type", "dbo:City");
        b.add_iri("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas");
        b.build()
    }

    #[test]
    fn classes_detected_from_type_and_subclass() {
        let s = sample();
        let schema = Schema::new(&s);
        for c in ["dbo:Actor", "dbo:Person", "owl:Thing", "dbo:City"] {
            assert!(schema.is_class(s.expect_iri(c)), "{c} should be a class");
        }
        assert!(!schema.is_class(s.expect_iri("dbr:Antonio_Banderas")));
        assert!(!schema.is_class(s.expect_iri("dbr:Melanie_Griffith")));
        assert_eq!(schema.num_classes(), 4);
    }

    #[test]
    fn entity_detection() {
        let s = sample();
        let schema = Schema::new(&s);
        assert!(schema.is_entity(&s, s.expect_iri("dbr:Berlin")));
        assert!(!schema.is_entity(&s, s.expect_iri("dbo:Actor")));
    }

    #[test]
    fn types_include_superclasses() {
        let s = sample();
        let schema = Schema::new(&s);
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let tys = schema.types_of(ab);
        assert!(tys.contains(&s.expect_iri("dbo:Actor")));
        assert!(tys.contains(&s.expect_iri("dbo:Person")));
        assert!(tys.contains(&s.expect_iri("owl:Thing")));
        assert!(schema.has_type(ab, s.expect_iri("dbo:Person")));
        assert!(!schema.has_type(ab, s.expect_iri("dbo:City")));
    }

    #[test]
    fn instances_include_subclass_members() {
        let s = sample();
        let schema = Schema::new(&s);
        let person = s.expect_iri("dbo:Person");
        assert_eq!(schema.instances_of(person), &[s.expect_iri("dbr:Antonio_Banderas")]);
        assert!(schema
            .instances_of(s.expect_iri("dbo:City"))
            .contains(&s.expect_iri("dbr:Berlin")));
    }

    #[test]
    fn untyped_entity_has_no_types() {
        let s = sample();
        let schema = Schema::new(&s);
        assert!(schema.types_of(s.expect_iri("dbr:Melanie_Griffith")).is_empty());
    }

    #[test]
    fn schema_of_empty_store() {
        let s = StoreBuilder::new().build();
        let schema = Schema::new(&s);
        assert_eq!(schema.num_classes(), 0);
        assert!(schema.rdf_type().is_none());
    }
}
