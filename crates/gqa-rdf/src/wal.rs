//! Per-tenant write-ahead log: durable upserts for the delta overlay.
//!
//! An upsert acked with 200 must survive `kill -9`. The WAL provides
//! that: the serving engine appends the op batch (plus the epoch it is
//! about to publish) and `sync_data`s **before** swapping the snapshot
//! and acking — so by the time a client sees 200, the ops are on disk.
//! On restart the registry replays the log over the checkpointed base
//! and republishes at the recovered epoch.
//!
//! Layout (`wal.log`, version 1):
//!
//! ```text
//! bytes 0..8    magic  b"GQAWAL01"
//! u32 LE        format version (1)
//! u64 LE        base epoch: the epoch of the snapshot this log extends
//! u64 LE        FNV-1a 64 checksum of the 20 header bytes above
//! records       each: u32 LE payload length
//!                     u64 LE FNV-1a 64 checksum of the payload
//!                     payload: varint epoch, varint op count, then each
//!                       op as a tag byte (0 upsert | 1 delete) and three
//!                       terms (term tag byte + strings as varint length
//!                       + UTF-8, exactly the snapshot term encoding)
//! ```
//!
//! The header is only ever produced whole — creation and rotation go
//! through write-to-temp + fsync + atomic rename — so a short or
//! mismatched header is real corruption and a hard error. Records, by
//! contrast, are appended in place and *can* tear when the process dies
//! mid-write: [`Wal::open`] scans forward and, at the first incomplete
//! or checksum-failing record, truncates the file back to the last valid
//! boundary instead of failing. Sequential appends mean only unacked
//! bytes can ever live past that boundary. Within a live process, a
//! failed append triggers the same repair immediately (truncate back to
//! the known-good length); if even the repair fails, the log is
//! *poisoned* — every later append errors, upserts surface as 500s, and
//! the next restart re-runs torn-tail recovery from disk.
//!
//! The hardening discipline mirrors `snapfile.rs`: every read is
//! bounds-checked, every byte-flip and truncation is covered by
//! exhaustive tests, and arbitrary bytes never panic.

use crate::overlay::{Delta, DeltaOp};
use crate::snapfile::{
    fnv1a64, write_file_atomic, TAG_BLANK, TAG_IRI, TAG_LITERAL, TAG_TYPED_LITERAL,
};
use crate::term::Term;
use crate::varint;
use gqa_fault::FaultPlan;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Magic bytes opening every WAL file (`GQAWAL` + 2-digit format era).
pub const WAL_MAGIC: [u8; 8] = *b"GQAWAL01";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;
const RECORD_HEADER_LEN: usize = 4 + 8;
/// Smallest possible op encoding: op tag + three terms of (tag + empty
/// string). Used to reject implausible op counts before allocating.
const MIN_OP_LEN: u64 = 1 + 3 * 2;

/// Fault site armed before anything is written in [`Wal::append`]
/// (`error` kind: the append fails cleanly; `torn` kind: half the record
/// reaches disk and the log poisons itself, exercising restart
/// recovery).
pub const FAULT_SITE_WAL_APPEND: &str = "wal.append";

/// Fault site armed between the record write and its `sync_data`
/// (`error` kind: the unsynced record is truncated away and the append
/// fails cleanly; `torn` kind: the bytes stay but the log poisons
/// itself as if the machine died before the sync completed).
pub const FAULT_SITE_WAL_FSYNC: &str = "wal.fsync";

/// A WAL operation failed: I/O, corruption, or a poisoned log. The
/// message says which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalError(pub String);

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wal: {}", self.0)
    }
}

impl std::error::Error for WalError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WalError> {
    Err(WalError(msg.into()))
}

/// One replayable record: the op batch and the epoch it was acked under.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The epoch the engine published (or was about to publish) when the
    /// record was appended.
    pub epoch: u64,
    /// The op batch, in ack order.
    pub delta: Delta,
}

/// Everything [`Wal::open`] recovered from disk.
#[derive(Debug)]
pub struct WalScan {
    /// The base epoch from the header: the epoch of the snapshot this
    /// log extends.
    pub base_epoch: u64,
    /// Complete, checksum-valid records in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail dropped past the last valid record boundary
    /// (0 on a clean shutdown).
    pub truncated_bytes: u64,
    /// Byte length of the valid prefix (header + complete records).
    valid_len: usize,
}

impl WalScan {
    /// The highest epoch the log attests to: the last record's epoch, or
    /// the base epoch for an empty log. Recovery republishes at no lower
    /// than this, so acked epochs never regress across a restart.
    pub fn max_epoch(&self) -> u64 {
        self.records.last().map_or(self.base_epoch, |r| r.epoch.max(self.base_epoch))
    }
}

/// Decode and validate WAL bytes without touching the filesystem.
///
/// A corrupt *header* is a hard error (headers are written atomically, so
/// they cannot tear). A corrupt or incomplete *record* ends the scan at
/// the preceding record boundary — everything before it is returned,
/// everything from it on is counted in
/// [`truncated_bytes`](WalScan::truncated_bytes). Arbitrary input never
/// panics.
pub fn scan(bytes: &[u8]) -> Result<WalScan, WalError> {
    if bytes.len() < HEADER_LEN {
        return err(format!("file too short for a header ({} bytes)", bytes.len()));
    }
    if bytes[..8] != WAL_MAGIC {
        return err("bad magic (not a WAL file)");
    }
    let stored = u64::from_le_bytes(bytes[20..28].try_into().expect("8 checksum bytes"));
    let actual = fnv1a64(&bytes[..20]);
    if stored != actual {
        return err(format!(
            "header checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 version bytes"));
    if version != WAL_VERSION {
        return err(format!("unsupported version {version} (supported: {WAL_VERSION})"));
    }
    let base_epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("8 epoch bytes"));

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        if pos == bytes.len() {
            break; // clean end on a record boundary
        }
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN) else {
            break; // torn record header
        };
        let payload_len =
            u32::from_le_bytes(header[..4].try_into().expect("4 length bytes")) as usize;
        let checksum = u64::from_le_bytes(header[4..].try_into().expect("8 checksum bytes"));
        let body_start = pos + RECORD_HEADER_LEN;
        let Some(payload) = body_start
            .checked_add(payload_len)
            .and_then(|body_end| bytes.get(body_start..body_end))
        else {
            break; // torn payload
        };
        if fnv1a64(payload) != checksum {
            break; // corrupt record: stop at the last good boundary
        }
        let Some(record) = decode_payload(payload) else {
            // Checksummed-but-undecodable can only mean corruption that
            // also forged the checksum; treat it like any other bad tail.
            break;
        };
        records.push(record);
        pos = body_start + payload_len;
    }
    Ok(WalScan { base_epoch, records, truncated_bytes: (bytes.len() - pos) as u64, valid_len: pos })
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut pos = 0usize;
    let epoch = varint::read_u64(payload, &mut pos)?;
    let op_count = varint::read_u64(payload, &mut pos)?;
    if op_count > (payload.len() as u64).saturating_sub(pos as u64) / MIN_OP_LEN {
        return None;
    }
    let mut delta = Delta::new();
    for _ in 0..op_count {
        let tag = *payload.get(pos)?;
        pos += 1;
        let s = decode_term(payload, &mut pos)?;
        let p = decode_term(payload, &mut pos)?;
        let o = decode_term(payload, &mut pos)?;
        match tag {
            0 => delta.upsert(s, p, o),
            1 => delta.delete(s, p, o),
            _ => return None,
        }
    }
    if pos != payload.len() {
        return None; // trailing garbage inside a record
    }
    Some(WalRecord { epoch, delta })
}

fn decode_term(payload: &[u8], pos: &mut usize) -> Option<Term> {
    let tag = *payload.get(*pos)?;
    *pos += 1;
    let read_str = |pos: &mut usize| -> Option<Box<str>> {
        let len = varint::read_u64(payload, pos)?;
        let end = (*pos as u64).checked_add(len)?;
        if end > payload.len() as u64 {
            return None;
        }
        let s = std::str::from_utf8(&payload[*pos..end as usize]).ok()?;
        *pos = end as usize;
        Some(s.into())
    };
    match tag {
        TAG_IRI => Some(Term::Iri(read_str(pos)?)),
        TAG_LITERAL => Some(Term::Literal { lexical: read_str(pos)?, datatype: None }),
        TAG_TYPED_LITERAL => {
            let lexical = read_str(pos)?;
            let datatype = read_str(pos)?;
            Some(Term::Literal { lexical, datatype: Some(datatype) })
        }
        TAG_BLANK => Some(Term::Blank(read_str(pos)?)),
        _ => None,
    }
}

fn encode_term(out: &mut Vec<u8>, term: &Term) {
    let write_str = |out: &mut Vec<u8>, s: &str| {
        varint::write_u64(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    };
    match term {
        Term::Iri(s) => {
            out.push(TAG_IRI);
            write_str(out, s);
        }
        Term::Literal { lexical, datatype: None } => {
            out.push(TAG_LITERAL);
            write_str(out, lexical);
        }
        Term::Literal { lexical, datatype: Some(dt) } => {
            out.push(TAG_TYPED_LITERAL);
            write_str(out, lexical);
            write_str(out, dt);
        }
        Term::Blank(b) => {
            out.push(TAG_BLANK);
            write_str(out, b);
        }
    }
}

fn encode_payload(epoch: u64, delta: &Delta) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + delta.ops.len() * 48);
    varint::write_u64(&mut out, epoch);
    varint::write_u64(&mut out, delta.ops.len() as u64);
    for op in &delta.ops {
        let (tag, s, p, o) = match op {
            DeltaOp::Upsert(s, p, o) => (0u8, s, p, o),
            DeltaOp::Delete(s, p, o) => (1u8, s, p, o),
        };
        out.push(tag);
        encode_term(&mut out, s);
        encode_term(&mut out, p);
        encode_term(&mut out, o);
    }
    out
}

fn header_bytes(base_epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&base_epoch.to_le_bytes());
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// An open, appendable write-ahead log.
///
/// `known_good` tracks the byte length of validated, durable log; any
/// append failure truncates the file back to it so a later append can
/// never land after garbage. If the truncation itself fails the log is
/// poisoned: every later [`Wal::append`] errors until the process
/// restarts and re-runs recovery from disk.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    known_good: u64,
    records: u64,
    poisoned: bool,
    faults: FaultPlan,
}

impl Wal {
    /// Create a fresh, empty log at `path` whose header claims
    /// `base_epoch`, atomically replacing anything already there.
    pub fn create(path: &Path, base_epoch: u64, faults: FaultPlan) -> Result<Wal, WalError> {
        write_file_atomic(path, &header_bytes(base_epoch))
            .map_err(|e| WalError(format!("create {path:?}: {e}")))?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| WalError(format!("open {path:?}: {e}")))?;
        Ok(Wal {
            file,
            path: path.to_owned(),
            known_good: HEADER_LEN as u64,
            records: 0,
            poisoned: false,
            faults,
        })
    }

    /// Open an existing log, running torn-tail recovery: the returned
    /// [`WalScan`] carries every complete record, and any invalid tail
    /// has been truncated off the file (and fsynced) so appends resume
    /// on a clean boundary.
    pub fn open(path: &Path, faults: FaultPlan) -> Result<(Wal, WalScan), WalError> {
        let bytes = std::fs::read(path).map_err(|e| WalError(format!("read {path:?}: {e}")))?;
        let scan = scan(&bytes)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| WalError(format!("open {path:?}: {e}")))?;
        if scan.truncated_bytes > 0 {
            file.set_len(scan.valid_len as u64)
                .and_then(|()| file.sync_data())
                .map_err(|e| WalError(format!("truncate torn tail of {path:?}: {e}")))?;
        }
        let wal = Wal {
            file,
            path: path.to_owned(),
            known_good: scan.valid_len as u64,
            records: scan.records.len() as u64,
            poisoned: false,
            faults,
        };
        Ok((wal, scan))
    }

    /// Append one op batch under `epoch` and make it durable
    /// (`sync_data`) before returning. Only a returned `Ok` means the
    /// batch will survive a crash — callers must not ack before this
    /// returns.
    pub fn append(&mut self, epoch: u64, delta: &Delta) -> Result<(), WalError> {
        if self.poisoned {
            return err(format!(
                "log {:?} is poisoned by an earlier failed repair; restart to recover",
                self.path
            ));
        }
        let payload = encode_payload(epoch, delta);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        if let Err(f) = self.faults.fire(FAULT_SITE_WAL_APPEND) {
            if f.torn {
                // Simulate dying mid-write: half the record reaches the
                // file, and this handle is unusable until "restart"
                // (reopen), which must truncate the torn tail.
                let _ = self.file.write_all(&record[..record.len() / 2]);
                self.poisoned = true;
            }
            return err(format!("append to {:?}: {f}", self.path));
        }
        if let Err(e) = self.file.write_all(&record) {
            self.repair();
            return err(format!("append to {:?}: {e}", self.path));
        }
        if let Err(f) = self.faults.fire(FAULT_SITE_WAL_FSYNC) {
            if f.torn {
                // The record is written but the sync "never completed":
                // leave the bytes, poison the handle, let restart decide.
                self.poisoned = true;
            } else {
                self.repair();
            }
            return err(format!("sync {:?}: {f}", self.path));
        }
        if let Err(e) = self.file.sync_data() {
            self.repair();
            return err(format!("sync {:?}: {e}", self.path));
        }
        self.known_good += record.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Truncate back to the last known-good boundary after a failed
    /// append, so the next append cannot land after garbage. A failed
    /// repair poisons the log.
    fn repair(&mut self) {
        let ok = self.file.set_len(self.known_good).and_then(|()| self.file.sync_data());
        if ok.is_err() {
            self.poisoned = true;
        }
    }

    /// Start a fresh log generation after a checkpoint: atomically
    /// replace the file with an empty log whose header claims
    /// `base_epoch` (the epoch of the snapshot just checkpointed).
    /// Callers must have made the checkpoint durable *first* — the old
    /// records are unrecoverable once this returns.
    pub fn rotate(&mut self, base_epoch: u64) -> Result<(), WalError> {
        write_file_atomic(&self.path, &header_bytes(base_epoch))
            .map_err(|e| WalError(format!("rotate {:?}: {e}", self.path)))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| WalError(format!("reopen {:?}: {e}", self.path)))?;
        self.known_good = HEADER_LEN as u64;
        self.records = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Bytes of validated log on disk (header + complete records).
    pub fn bytes(&self) -> u64 {
        self.known_good
    }

    /// Complete records appended or recovered into this generation.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// `true` once a failed repair has made this handle unusable.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault plan this log fires its chaos sites against.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

/// Point-in-time group-commit counters (see [`GroupWal`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// `sync_data` calls performed by commit leaders. Under concurrent
    /// load this is strictly below [`GroupCommitStats::commits`] — one
    /// sync covers a whole batch of enqueued records.
    pub syncs: u64,
    /// Records acked durable through [`GroupWal::commit`].
    pub commits: u64,
    /// The largest number of records a single sync covered.
    pub max_batch: u64,
}

/// Shared WAL state behind the [`GroupWal`] mutex.
///
/// `written` tracks the end offset of the last *fully enqueued* record —
/// bytes that are in the file but not yet covered by a `sync_data`. The
/// invariant `wal.known_good <= written <= file length` holds whenever
/// the mutex is free; only the range `(known_good, written]` is ever at
/// risk from a failed sync.
///
/// Waiters are identified by *tickets* (`next_seq`), never by byte
/// offsets: after a failed batch is truncated away, new records re-fill
/// the same offsets, so an offset comparison could ack a record that is
/// no longer on disk. Each pending ticket is resolved explicitly by the
/// leader that synced (or failed) it, into `outcomes`, and claimed by
/// its owner.
#[derive(Debug)]
struct GroupShared {
    wal: Wal,
    /// End offset of the last fully enqueued record.
    written: u64,
    /// Records enqueued into this generation (synced or not).
    written_records: u64,
    /// Next enqueue ticket; strictly increasing, never reused.
    next_seq: u64,
    /// Enqueued-but-unresolved records, in append order:
    /// `(ticket, end offset)`.
    pending: std::collections::VecDeque<(u64, u64)>,
    /// Resolved-but-unclaimed tickets (bounded by concurrent callers).
    outcomes: std::collections::HashMap<u64, Result<(), WalError>>,
    /// A commit leader is running `sync_data` with the mutex released.
    syncing: bool,
}

/// A [`Wal`] shared by concurrent appenders with ARIES-style group
/// commit.
///
/// [`GroupWal::enqueue`] writes the record bytes under the mutex (cheap)
/// and returns a ticket. [`GroupWal::commit`] then makes it durable: if
/// no sync is in flight the caller becomes the *leader*, releases the
/// mutex, and runs one `sync_data` covering every record enqueued so
/// far; otherwise it is a *follower* and blocks until a leader resolves
/// its ticket (the batch synced, or it failed). Under N
/// concurrent writers one fsync therefore acks up to N records — fsync
/// count « ack count — while the durability contract is unchanged: only
/// a returned `Ok` from `commit` means the record survives `kill -9`.
///
/// Failure semantics: an `error`-kind sync failure truncates the whole
/// unsynced suffix back to the known-good boundary and fails every
/// waiter in the batch (their records are *absent* after recovery, as an
/// un-acked write must be). A `torn`-kind failure emulates the machine
/// dying mid-sync: only a fragment of the batch's first record is left
/// on disk and the log poisons itself, so reopen runs torn-tail recovery
/// and again none of the failed batch survives.
#[derive(Debug)]
pub struct GroupWal {
    shared: Mutex<GroupShared>,
    /// Signals followers when a sync completes (or fails) and the next
    /// leader when the syncing slot frees up.
    synced: Condvar,
    syncs: AtomicU64,
    commits: AtomicU64,
    max_batch: AtomicU64,
}

impl GroupWal {
    /// Wrap an open [`Wal`] for shared, group-committed appends.
    pub fn new(wal: Wal) -> GroupWal {
        let written = wal.known_good;
        let written_records = wal.records;
        GroupWal {
            shared: Mutex::new(GroupShared {
                wal,
                written,
                written_records,
                next_seq: 0,
                pending: std::collections::VecDeque::new(),
                outcomes: std::collections::HashMap::new(),
                syncing: false,
            }),
            synced: Condvar::new(),
            syncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GroupShared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write one record's bytes into the log *without* syncing and return
    /// its ticket. The record is not durable — and must not be acked —
    /// until [`GroupWal::commit`] returns `Ok` for that ticket.
    ///
    /// Callers that need record order to match an external order (the
    /// engine's epoch order) should serialize their `enqueue` calls; the
    /// expensive part — the fsync — still overlaps across callers.
    pub fn enqueue(&self, epoch: u64, delta: &Delta) -> Result<u64, WalError> {
        let mut g = self.lock();
        if g.wal.poisoned {
            return err(format!(
                "log {:?} is poisoned by an earlier failed repair; restart to recover",
                g.wal.path
            ));
        }
        let payload = encode_payload(epoch, delta);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        if let Err(f) = g.wal.faults.fire(FAULT_SITE_WAL_APPEND) {
            if f.torn {
                let _ = g.wal.file.write_all(&record[..record.len() / 2]);
                g.wal.poisoned = true;
            }
            return err(format!("append to {:?}: {f}", g.wal.path));
        }
        if let Err(e) = g.wal.file.write_all(&record) {
            // Part of the record may be on disk past `written`; truncate
            // back so a later enqueue cannot land after garbage. Safe
            // against a concurrent leader sync: its capture target is
            // always <= `written`, so no claimed bytes are removed.
            let repaired = g.wal.file.set_len(g.written).and_then(|()| g.wal.file.sync_data());
            if repaired.is_err() {
                g.wal.poisoned = true;
            }
            return err(format!("append to {:?}: {e}", g.wal.path));
        }
        g.written += record.len() as u64;
        g.written_records += 1;
        let seq = g.next_seq;
        g.next_seq += 1;
        let end = g.written;
        g.pending.push_back((seq, end));
        Ok(seq)
    }

    /// Block until the record behind `ticket` is durable (leader/follower
    /// group commit) and return whether it survived. See the type docs
    /// for the batching protocol and failure semantics.
    pub fn commit(&self, ticket: u64) -> Result<(), WalError> {
        let mut g = self.lock();
        loop {
            if let Some(v) = g.outcomes.remove(&ticket) {
                // A leader (ours or another's) already resolved us.
                if v.is_ok() {
                    self.commits.fetch_add(1, Ordering::Relaxed);
                }
                return v;
            }
            if !g.syncing {
                break; // no leader in flight: become it
            }
            g = self.synced.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        // Leader: capture the batch, release the mutex, sync once for
        // everything enqueued so far.
        g.syncing = true;
        let target = g.written;
        let target_records = g.written_records;
        let batch = target_records - g.wal.records;
        let path = g.wal.path.clone();
        let faults = g.wal.faults.clone();
        let file = g.wal.file.try_clone();
        drop(g);

        let outcome: Result<(), (WalError, bool)> = (|| {
            if let Err(f) = faults.fire(FAULT_SITE_WAL_FSYNC) {
                return Err((WalError(format!("sync {path:?}: {f}")), f.torn));
            }
            match &file {
                Ok(f) => {
                    f.sync_data().map_err(|e| (WalError(format!("sync {path:?}: {e}")), false))
                }
                Err(e) => Err((WalError(format!("clone handle to sync {path:?}: {e}")), false)),
            }
        })();

        let mut g = self.lock();
        g.syncing = false;
        match outcome {
            Ok(()) => {
                g.wal.known_good = target;
                g.wal.records = target_records;
                self.syncs.fetch_add(1, Ordering::Relaxed);
                self.max_batch.fetch_max(batch, Ordering::Relaxed);
                // Resolve every record the sync covered; later enqueues
                // stay pending for the next leader.
                while let Some(&(seq, end)) = g.pending.front() {
                    if end > target {
                        break;
                    }
                    g.pending.pop_front();
                    g.outcomes.insert(seq, Ok(()));
                }
            }
            Err((ref e, torn)) => {
                if torn {
                    // The machine "died" mid-sync: an arbitrary fragment
                    // of the batch reached disk. Emulate the worst case —
                    // tear the first unsynced record — and poison the
                    // handle, so reopen runs torn-tail recovery and none
                    // of the failed batch resurrects.
                    let frag = (g.written - g.wal.known_good).min(RECORD_HEADER_LEN as u64 / 2);
                    let _ = g.wal.file.set_len(g.wal.known_good + frag);
                    g.written = g.wal.known_good + frag;
                    g.written_records = g.wal.records;
                    g.wal.poisoned = true;
                } else {
                    // Fail the whole unsynced suffix cleanly: truncate to
                    // the known-good boundary so the next enqueue cannot
                    // land after doomed bytes.
                    let repaired =
                        g.wal.file.set_len(g.wal.known_good).and_then(|()| g.wal.file.sync_data());
                    if repaired.is_err() {
                        g.wal.poisoned = true;
                    }
                    g.written = g.wal.known_good;
                    g.written_records = g.wal.records;
                }
                // Everything unsynced is gone — records enqueued after
                // the capture included. None of them was ever acked.
                let failed: Vec<u64> = g.pending.drain(..).map(|(seq, _)| seq).collect();
                for seq in failed {
                    g.outcomes.insert(seq, Err(e.clone()));
                }
            }
        }
        let mine = g
            .outcomes
            .remove(&ticket)
            .unwrap_or_else(|| err("leader ticket left unresolved (bug)"));
        drop(g);
        self.synced.notify_all();
        if mine.is_ok() {
            self.commits.fetch_add(1, Ordering::Relaxed);
        }
        mine
    }

    /// [`GroupWal::enqueue`] + [`GroupWal::commit`] in one call, for
    /// callers that do not need to overlap the enqueue with other work.
    pub fn append(&self, epoch: u64, delta: &Delta) -> Result<(), WalError> {
        let lsn = self.enqueue(epoch, delta)?;
        self.commit(lsn)
    }

    /// Start a fresh generation after a checkpoint (see [`Wal::rotate`]).
    /// Refuses to rotate while appends are in flight — callers must
    /// quiesce writers first, since unsynced (and therefore un-acked)
    /// records would be silently discarded.
    pub fn rotate(&self, base_epoch: u64) -> Result<(), WalError> {
        let mut g = self.lock();
        if g.syncing || !g.pending.is_empty() {
            return err(format!("rotate {:?} with appends in flight", g.wal.path));
        }
        g.wal.rotate(base_epoch)?;
        g.written = g.wal.known_good;
        g.written_records = 0;
        Ok(())
    }

    /// Bytes of durable (synced) log on disk.
    pub fn bytes(&self) -> u64 {
        self.lock().wal.known_good
    }

    /// Durable records in the current generation.
    pub fn records(&self) -> u64 {
        self.lock().wal.records
    }

    /// `true` once a failed repair (or simulated torn sync) has made this
    /// log unusable until restart.
    pub fn poisoned(&self) -> bool {
        self.lock().wal.poisoned
    }

    /// The log's path on disk.
    pub fn path(&self) -> PathBuf {
        self.lock().wal.path.clone()
    }

    /// The fault plan this log fires its chaos sites against.
    pub fn faults(&self) -> FaultPlan {
        self.lock().wal.faults.clone()
    }

    /// Cumulative group-commit counters for this handle's lifetime.
    pub fn group_stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            syncs: self.syncs.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gqa-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_delta(round: u64) -> Delta {
        let mut d = Delta::new();
        d.upsert(
            Term::iri(format!("up:s{round}")),
            Term::iri("up:grew"),
            Term::iri(format!("up:o{round}")),
        );
        d.upsert(Term::iri(format!("up:s{round}")), Term::iri("rdfs:label"), Term::lit("x"));
        d.delete(Term::iri("up:gone"), Term::iri("up:was"), Term::int_lit(round as i64));
        d
    }

    fn ops_equal(a: &Delta, b: &Delta) -> bool {
        a.ops.len() == b.ops.len()
            && a.ops.iter().zip(&b.ops).all(|(x, y)| match (x, y) {
                (DeltaOp::Upsert(a1, a2, a3), DeltaOp::Upsert(b1, b2, b3))
                | (DeltaOp::Delete(a1, a2, a3), DeltaOp::Delete(b1, b2, b3)) => {
                    a1 == b1 && a2 == b2 && a3 == b3
                }
                _ => false,
            })
    }

    #[test]
    fn append_reopen_replays_every_batch_in_order() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 3, FaultPlan::none()).unwrap();
        for round in 0..5u64 {
            wal.append(4 + round, &sample_delta(round)).unwrap();
        }
        assert_eq!(wal.records(), 5);
        let on_disk = wal.bytes();
        drop(wal);
        let (wal, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.base_epoch, 3);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.max_epoch(), 8);
        assert_eq!(wal.bytes(), on_disk);
        for (round, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.epoch, 4 + round as u64);
            assert!(ops_equal(&rec.delta, &sample_delta(round as u64)));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_log_scans_to_base_epoch() {
        let dir = tmpdir("empty");
        let path = dir.join("wal.log");
        drop(Wal::create(&path, 42, FaultPlan::none()).unwrap());
        let (_, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.base_epoch, 42);
        assert!(scan.records.is_empty());
        assert_eq!(scan.max_epoch(), 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The snapfile discipline: every prefix of a valid log either errs
    /// (header cut) or recovers a clean record prefix, and never panics.
    #[test]
    fn every_truncation_recovers_a_record_prefix() {
        let dir = tmpdir("trunc");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1, FaultPlan::none()).unwrap();
        let mut boundaries = vec![HEADER_LEN as u64];
        for round in 0..3u64 {
            wal.append(2 + round, &sample_delta(round)).unwrap();
            boundaries.push(wal.bytes());
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());
        for len in 0..bytes.len() {
            match scan(&bytes[..len]) {
                Err(_) => assert!(len < HEADER_LEN, "only header cuts may hard-fail (len {len})"),
                Ok(s) => {
                    // The recovered records are exactly those whose end
                    // boundary fits inside the truncated prefix.
                    let want =
                        boundaries.iter().filter(|&&b| b <= len as u64).count().saturating_sub(1);
                    assert_eq!(s.records.len(), want, "truncation at {len}");
                    let good = boundaries[want] as usize;
                    assert_eq!(s.truncated_bytes as usize, len - good, "truncation at {len}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every single-byte corruption either hard-fails (header) or drops
    /// a suffix of records — and never panics or invents data.
    #[test]
    fn every_single_byte_flip_is_contained() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1, FaultPlan::none()).unwrap();
        for round in 0..3u64 {
            wal.append(2 + round, &sample_delta(round)).unwrap();
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let clean = scan(&bytes).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match scan(&bad) {
                Err(_) => assert!(i < HEADER_LEN, "flip at {i} hard-failed outside the header"),
                Ok(s) => {
                    assert!(i >= HEADER_LEN, "header flip at {i} must hard-fail");
                    assert!(s.records.len() < clean.records.len(), "flip at {i} undetected");
                    for (got, want) in s.records.iter().zip(&clean.records) {
                        assert_eq!(got.epoch, want.epoch);
                        assert!(ops_equal(&got.delta, &want.delta), "flip at {i} altered a record");
                    }
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open_and_appends_resume() {
        let dir = tmpdir("torntail");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1, FaultPlan::none()).unwrap();
        wal.append(2, &sample_delta(0)).unwrap();
        let good = wal.bytes();
        wal.append(3, &sample_delta(1)).unwrap();
        drop(wal);
        // Crash mid-append: cut the second record in half.
        let bytes = std::fs::read(&path).unwrap();
        let cut = (good as usize + bytes.len()) / 2;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (mut wal, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.truncated_bytes, (cut as u64) - good);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good, "tail physically truncated");
        // Appends continue on the clean boundary and survive reopen.
        wal.append(3, &sample_delta(2)).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.max_epoch(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_starts_an_empty_generation_at_the_new_base() {
        let dir = tmpdir("rotate");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1, FaultPlan::none()).unwrap();
        wal.append(2, &sample_delta(0)).unwrap();
        wal.rotate(7).unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), HEADER_LEN as u64);
        wal.append(8, &sample_delta(1)).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.base_epoch, 7);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.max_epoch(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fsync_error_truncates_the_unsynced_record() {
        let dir = tmpdir("fsyncfault");
        let path = dir.join("wal.log");
        let faults = FaultPlan::parse("wal.fsync:error:1.0", 0).unwrap();
        let mut wal = Wal::create(&path, 1, faults).unwrap();
        let e = wal.append(2, &sample_delta(0)).unwrap_err();
        assert!(e.to_string().contains("injected"), "{e}");
        assert!(!wal.poisoned(), "error-kind fsync fault repairs, not poisons");
        // The failed record was truncated away: nothing to replay.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN as u64);
        drop(wal);
        let (_, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_poisons_until_reopen_recovers() {
        let dir = tmpdir("tornfault");
        let path = dir.join("wal.log");
        // One clean record first, then reopen with torn appends armed.
        let mut clean = Wal::create(&path, 1, FaultPlan::none()).unwrap();
        clean.append(2, &sample_delta(0)).unwrap();
        drop(clean);
        let faults = FaultPlan::parse("wal.append:torn:1.0", 0).unwrap();
        let (mut wal, _) = Wal::open(&path, faults).unwrap();
        let good = wal.bytes();
        let e = wal.append(3, &sample_delta(1)).unwrap_err();
        assert!(e.to_string().contains("torn"), "{e}");
        assert!(wal.poisoned());
        // Poisoned: later appends fail fast without touching the file.
        assert!(wal.append(4, &sample_delta(2)).is_err());
        // Half a record really is on disk past the good boundary...
        assert!(std::fs::metadata(&path).unwrap().len() > good);
        drop(wal);
        // ...and "restart" (reopen) truncates it and recovers the rest.
        let (_, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn not_a_wal_and_wrong_version_err_cleanly() {
        assert!(scan(b"").is_err());
        assert!(scan(b"GQAWAL0").is_err());
        assert!(scan(&[0u8; 64]).is_err());
        let mut wrong_version = header_bytes(1);
        wrong_version[8] = 9; // version low byte
        assert!(scan(&wrong_version).unwrap_err().to_string().contains("checksum"));
        // A well-formed header of a future version names the version.
        let mut future = Vec::new();
        future.extend_from_slice(&WAL_MAGIC);
        future.extend_from_slice(&2u32.to_le_bytes());
        future.extend_from_slice(&1u64.to_le_bytes());
        let sum = fnv1a64(&future);
        future.extend_from_slice(&sum.to_le_bytes());
        assert!(scan(&future).unwrap_err().to_string().contains("version"));
    }

    fn tagged_delta(tag: &str) -> Delta {
        let mut d = Delta::new();
        d.upsert(Term::iri(format!("up:{tag}")), Term::iri("up:grew"), Term::iri("up:o"));
        d
    }

    fn replayed_tags(path: &Path) -> std::collections::HashSet<String> {
        let (_, scan) = Wal::open(path, FaultPlan::none()).unwrap();
        scan.records
            .iter()
            .flat_map(|r| r.delta.ops.iter())
            .filter_map(|op| match op {
                DeltaOp::Upsert(Term::Iri(s), _, _) => s.strip_prefix("up:").map(|t| t.to_owned()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn group_commit_acks_every_concurrent_append_and_replays_them() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let wal =
            std::sync::Arc::new(GroupWal::new(Wal::create(&path, 1, FaultPlan::none()).unwrap()));
        let threads = 4;
        let per_thread = 25u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per_thread {
                        wal.append(2, &tagged_delta(&format!("t{t}x{i}"))).unwrap();
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        assert_eq!(wal.records(), total);
        let stats = wal.group_stats();
        assert_eq!(stats.commits, total);
        assert!(stats.syncs >= 1 && stats.syncs <= total, "{stats:?}");
        drop(wal);
        let tags = replayed_tags(&path);
        for t in 0..threads {
            for i in 0..per_thread {
                assert!(tags.contains(&format!("t{t}x{i}")), "acked t{t}x{i} lost");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Property: under seeded `wal.fsync` chaos (both `error` and `torn`
    /// kinds) with N concurrent appenders, every acked record replays
    /// after reopen and every failed one is absent — at 1 and 4 threads,
    /// across several seeds.
    #[test]
    fn group_commit_chaos_acked_replays_failed_absent() {
        for &threads in &[1usize, 4] {
            for kind in ["error", "torn"] {
                for seed in 0..4u64 {
                    let dir = tmpdir(&format!("groupchaos-{threads}-{kind}-{seed}"));
                    let path = dir.join("wal.log");
                    let prob = if kind == "torn" { 0.15 } else { 0.4 };
                    let plan = FaultPlan::parse(&format!("wal.fsync:{kind}:{prob}"), seed).unwrap();
                    let wal =
                        std::sync::Arc::new(GroupWal::new(Wal::create(&path, 1, plan).unwrap()));
                    let acked = Mutex::new(Vec::new());
                    let failed = Mutex::new(Vec::new());
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let wal = std::sync::Arc::clone(&wal);
                            let (acked, failed) = (&acked, &failed);
                            s.spawn(move || {
                                for i in 0..12u64 {
                                    let tag = format!("t{t}x{i}");
                                    match wal.append(2, &tagged_delta(&tag)) {
                                        Ok(()) => acked.lock().unwrap().push(tag),
                                        Err(_) => failed.lock().unwrap().push(tag),
                                    }
                                }
                            });
                        }
                    });
                    let acked = acked.into_inner().unwrap();
                    let failed = failed.into_inner().unwrap();
                    assert_eq!(acked.len() + failed.len(), threads * 12);
                    drop(wal);
                    let tags = replayed_tags(&path);
                    for tag in &acked {
                        assert!(
                            tags.contains(tag),
                            "acked {tag} lost ({threads} threads, {kind}, seed {seed})"
                        );
                    }
                    for tag in &failed {
                        assert!(
                            !tags.contains(tag),
                            "failed {tag} resurrected ({threads} threads, {kind}, seed {seed})"
                        );
                    }
                    std::fs::remove_dir_all(&dir).unwrap();
                }
            }
        }
    }

    #[test]
    fn group_rotate_refuses_in_flight_appends_and_resets_cleanly() {
        let dir = tmpdir("grouprotate");
        let path = dir.join("wal.log");
        let wal = GroupWal::new(Wal::create(&path, 1, FaultPlan::none()).unwrap());
        wal.append(2, &sample_delta(0)).unwrap();
        wal.rotate(2).unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), HEADER_LEN as u64);
        // An enqueued-but-uncommitted record blocks rotation.
        let lsn = wal.enqueue(3, &sample_delta(1)).unwrap();
        assert!(wal.rotate(3).unwrap_err().to_string().contains("in flight"));
        wal.commit(lsn).unwrap();
        wal.rotate(3).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, FaultPlan::none()).unwrap();
        assert_eq!(scan.base_epoch, 3);
        assert!(scan.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
