//! # gqa-rdf — in-memory RDF substrate
//!
//! The storage layer every other crate builds on. An RDF dataset is a set of
//! `⟨subject, predicate, object⟩` triples; we view it as a directed,
//! edge-labelled graph whose vertices are subjects/objects and whose edge
//! labels are predicates (§1 of the paper).
//!
//! Provided here:
//!
//! * [`term::Term`] / [`ids::TermId`] — RDF terms and interned ids,
//! * [`dict::Dict`] — the string dictionary (term ↔ id),
//! * [`store::Store`] / [`store::StoreBuilder`] — an immutable triple store
//!   with SPO/POS/OSP sorted indexes and CSR adjacency for graph traversal,
//! * [`ntriples`] — N-Triples parsing and serialization,
//! * [`schema`] — entity-vs-class classification per the paper's rule
//!   (a vertex with an incoming `rdf:type`/`rdfs:subClassOf` edge is a class),
//! * [`paths`] — direction-blind simple-path enumeration between two
//!   vertices with a length bound θ (the offline miner's workhorse, §3),
//! * [`cache`] — a thread-safe, bounded memo cache over that enumeration
//!   (pair results + per-source BFS frontiers) for the offline miner,
//! * [`snapshot`] — epoch-stamped, atomically swappable handles so the
//!   serving layer can reload a store without pausing in-flight readers,
//! * [`stats`] — dataset statistics as reported in the paper's Table 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dict;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod ntriples;
pub mod paths;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;

pub use cache::{PathCache, PathCacheConfig, PathCacheStats};
pub use dict::Dict;
pub use ids::TermId;
pub use metrics::{StoreMetrics, StoreMetricsSnapshot};
pub use paths::{Dir, PathPattern, PathStep};
pub use snapshot::{Snapshot, Stamped};
pub use store::{Store, StoreBuilder, UnknownIri};
pub use term::Term;
pub use triple::Triple;
