//! # gqa-rdf — in-memory RDF substrate
//!
//! The storage layer every other crate builds on. An RDF dataset is a set of
//! `⟨subject, predicate, object⟩` triples; we view it as a directed,
//! edge-labelled graph whose vertices are subjects/objects and whose edge
//! labels are predicates (§1 of the paper).
//!
//! Provided here:
//!
//! * [`term::Term`] / [`ids::TermId`] — RDF terms and interned ids,
//! * [`dict::Dict`] — the string dictionary (term ↔ id),
//! * [`store::Store`] / [`store::StoreBuilder`] — an immutable triple store
//!   over an (s, p, o)-sorted vector plus the compact [`csr`] adjacency
//!   indexes (subject offsets, delta-varint in-edge and predicate postings),
//! * [`overlay`] — delta overlays: incremental triple upserts/deletes
//!   merged into every scan without rebuilding the base indexes,
//! * [`ntriples`] — N-Triples parsing and serialization,
//! * [`schema`] — entity-vs-class classification per the paper's rule
//!   (a vertex with an incoming `rdf:type`/`rdfs:subClassOf` edge is a class),
//! * [`paths`] — direction-blind simple-path enumeration between two
//!   vertices with a length bound θ (the offline miner's workhorse, §3),
//! * [`cache`] — a thread-safe, bounded memo cache over that enumeration
//!   (pair results + per-source BFS frontiers) for the offline miner,
//! * [`snapshot`] — epoch-stamped, atomically swappable handles so the
//!   serving layer can reload a store without pausing in-flight readers,
//! * [`snapfile`] — versioned, checksummed binary snapshots (dictionary +
//!   triples) that load in one pass, feeding fast boot and `/admin/reload`,
//! * [`wal`] — a per-tenant write-ahead log (checksummed, torn-tail
//!   tolerant) making overlay upserts durable across `kill -9`,
//! * [`stats`] — dataset statistics as reported in the paper's Table 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod csr;
pub mod dict;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod ntriples;
pub mod overlay;
pub mod paths;
pub mod schema;
pub mod snapfile;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;
pub mod varint;
pub mod wal;

pub use cache::{PathCache, PathCacheConfig, PathCacheStats};
pub use csr::{CsrBytes, CsrIndexes};
pub use dict::Dict;
pub use ids::TermId;
pub use metrics::{StoreMetrics, StoreMetricsSnapshot};
pub use overlay::{Delta, DeltaOp, DeltaStats, OverlayStats};
pub use paths::{Dir, PathPattern, PathStep};
pub use snapfile::{
    is_snapshot, read_snapshot, write_file_atomic, write_snapshot, write_snapshot_file,
    SnapshotError,
};
pub use snapshot::{Snapshot, Stamped};
pub use store::{Store, StoreBuilder, StoreSectionBytes, UnknownIri};
pub use term::Term;
pub use triple::Triple;
pub use wal::{GroupCommitStats, GroupWal, Wal, WalError, WalRecord, WalScan};
