//! Simple-path enumeration between two vertices, ignoring edge direction.
//!
//! This is the workhorse of the offline paraphrase miner (paper §3): for each
//! supporting entity pair `(v, v′)` of a relation phrase, find **all simple
//! paths** between `v` and `v′` no longer than a threshold θ, keeping the
//! predicate labels and the direction of every traversed triple. The paper
//! uses a bidirectional BFS; we implement that, plus a plain DFS used as a
//! reference implementation in the property tests.
//!
//! A path's *pattern* — the sequence of `(predicate, direction)` steps with
//! the intermediate vertices erased — is what tf-idf is computed over
//! (Definition 4): e.g. "uncle of" ↦ `←hasChild · →hasChild · →hasChild`.

use crate::graph::neighbors;
use crate::ids::TermId;
use crate::store::Store;
use gqa_fault::Exec;
use rustc_hash::FxHashMap;
use std::fmt;

/// Fault-injection site name for the BFS/path-enumeration entry points.
/// A `latency` rule here slows exploration down mid-stage; an `error` rule
/// makes the enumerator return what it has found so far (possibly nothing).
pub const FAULT_SITE_BFS: &str = "rdf.bfs";

/// Traversal direction of one step relative to the underlying triple.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dir {
    /// The step follows a triple `(here, pred, there)`.
    Forward,
    /// The step follows a triple `(there, pred, here)` against its direction.
    Backward,
}

impl Dir {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Dir {
        match self {
            Dir::Forward => Dir::Backward,
            Dir::Backward => Dir::Forward,
        }
    }
}

/// One labelled, directed step of a path pattern.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathStep {
    /// Predicate label.
    pub pred: TermId,
    /// Orientation of the underlying triple relative to travel direction.
    pub dir: Dir,
}

/// A predicate path pattern: the label sequence of a simple path, read from
/// its first endpoint to its last. A single predicate is the length-1 case.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathPattern(pub Box<[PathStep]>);

impl PathPattern {
    /// A length-1 pattern: one forward predicate edge.
    pub fn single(pred: TermId) -> Self {
        PathPattern(Box::new([PathStep { pred, dir: Dir::Forward }]))
    }

    /// Number of edges in the pattern.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the (unused) empty pattern.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The same pattern read from the other endpoint.
    pub fn reversed(&self) -> PathPattern {
        PathPattern(
            self.0.iter().rev().map(|s| PathStep { pred: s.pred, dir: s.dir.flip() }).collect(),
        )
    }

    /// If the pattern is a single forward predicate, return it.
    pub fn as_single_predicate(&self) -> Option<TermId> {
        match &*self.0 {
            [PathStep { pred, dir: Dir::Forward }] => Some(*pred),
            _ => None,
        }
    }

    /// Render with the store's dictionary, e.g. `→dbo:starring` or
    /// `←dbo:hasChild·→dbo:hasChild·→dbo:hasChild`.
    pub fn display<'a>(&'a self, store: &'a Store) -> impl fmt::Display + 'a {
        struct D<'a>(&'a PathPattern, &'a Store);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, s) in self.0 .0.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    let arrow = match s.dir {
                        Dir::Forward => "→",
                        Dir::Backward => "←",
                    };
                    let label = self.1.dict().get(s.pred).and_then(|t| t.as_iri()).unwrap_or("?");
                    write!(f, "{arrow}{label}")?;
                }
                Ok(())
            }
        }
        D(self, store)
    }
}

/// A concrete simple path: `vertices.len() == steps.len() + 1`, starting at
/// `vertices[0]` and ending at `vertices.last()`, visiting no vertex twice.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimplePath {
    /// Visited vertices, endpoints included.
    pub vertices: Vec<TermId>,
    /// Labelled steps between consecutive vertices.
    pub steps: Vec<PathStep>,
}

impl SimplePath {
    /// The path's label pattern.
    pub fn pattern(&self) -> PathPattern {
        PathPattern(self.steps.iter().copied().collect())
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True only for the degenerate single-vertex path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Limits for path enumeration. Defaults match the paper: θ = 4.
#[derive(Clone, Debug)]
pub struct PathConfig {
    /// Maximum number of edges per path (paper's θ; default 4).
    pub max_len: usize,
    /// Stop after this many paths have been found (safety valve on hubs).
    pub max_paths: usize,
    /// Cap on partial paths held per BFS side (safety valve on hubs).
    pub max_partials: usize,
    /// Predicates never traversed (schema edges like `rdf:type` — a path
    /// through a class vertex carries no relation semantics and such hubs
    /// connect almost everything to almost everything).
    pub skip_predicates: Vec<TermId>,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            max_len: 4,
            max_paths: 100_000,
            max_partials: 500_000,
            skip_predicates: Vec::new(),
        }
    }
}

impl PathConfig {
    /// A config with the given θ and default safety limits.
    pub fn with_max_len(max_len: usize) -> Self {
        PathConfig { max_len, ..Default::default() }
    }

    /// Block the store's schema predicates (`rdf:type`, `rdfs:subClassOf`,
    /// `rdfs:label`) from traversal.
    pub fn skip_schema_predicates(mut self, store: &Store) -> Self {
        for iri in [
            crate::term::vocab::RDF_TYPE,
            crate::term::vocab::RDFS_SUBCLASS_OF,
            crate::term::vocab::RDFS_LABEL,
        ] {
            if let Some(id) = store.iri(iri) {
                self.skip_predicates.push(id);
            }
        }
        self
    }

    fn allows(&self, pred: TermId) -> bool {
        !self.skip_predicates.contains(&pred)
    }
}

/// Enumerate all simple paths between `a` and `b` (direction-blind) with at
/// most `cfg.max_len` edges, via **bidirectional BFS** (the paper's method):
/// partial simple paths are grown from both endpoints to half depth and
/// joined on their meeting vertex.
///
/// ```
/// use gqa_rdf::paths::{simple_paths, PathConfig};
/// use gqa_rdf::StoreBuilder;
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("grandpa", "hasChild", "uncle");
/// b.add_iri("grandpa", "hasChild", "parent");
/// b.add_iri("parent", "hasChild", "nephew");
/// let store = b.build();
///
/// let paths = simple_paths(
///     &store,
///     store.expect_iri("uncle"),
///     store.expect_iri("nephew"),
///     &PathConfig::with_max_len(3),
/// );
/// assert_eq!(paths.len(), 1); // ←hasChild · →hasChild · →hasChild
/// assert_eq!(paths[0].len(), 3);
/// ```
pub fn simple_paths(store: &Store, a: TermId, b: TermId, cfg: &PathConfig) -> Vec<SimplePath> {
    simple_paths_with(store, a, b, cfg, &Exec::none())
}

/// [`simple_paths`] under an execution context: budget/deadline exhaustion
/// truncates the enumeration (partial results, no unwinding), and the
/// [`FAULT_SITE_BFS`] injection site fires once per BFS side.
pub fn simple_paths_with(
    store: &Store,
    a: TermId,
    b: TermId,
    cfg: &PathConfig,
    exec: &Exec,
) -> Vec<SimplePath> {
    if a == b || cfg.max_len == 0 {
        return Vec::new();
    }
    let half_a = cfg.max_len.div_ceil(2);
    let half_b = cfg.max_len / 2;

    let from_a = grow_partials(store, a, half_a, cfg, exec);
    let from_b = grow_partials(store, b, half_b, cfg, exec);
    join_partials(&from_a, &from_b, cfg)
}

/// The join half of the bidirectional BFS: combine partial simple paths
/// grown from the two endpoints (`from_b` runs *from* `b`, so its steps are
/// reversed during assembly). Shared by [`simple_paths`] and the
/// [`crate::cache::PathCache`] so cached and uncached enumeration produce
/// byte-identical results.
pub(crate) fn join_partials(
    from_a: &[SimplePath],
    from_b: &[SimplePath],
    cfg: &PathConfig,
) -> Vec<SimplePath> {
    // Group the b-side partials by their end vertex for the join.
    let mut by_end: FxHashMap<TermId, Vec<&SimplePath>> = FxHashMap::default();
    for p in from_b {
        by_end.entry(*p.vertices.last().expect("nonempty")).or_default().push(p);
    }

    let mut out = Vec::new();
    'outer: for pa in from_a {
        let m = *pa.vertices.last().expect("nonempty");
        let Some(pbs) = by_end.get(&m) else { continue };
        for pb in pbs {
            let total = pa.len() + pb.len();
            if total == 0 || total > cfg.max_len {
                continue;
            }
            // Simplicity across the join: vertex sets intersect only at m.
            if !disjoint_except_meeting(pa, pb, m) {
                continue;
            }
            // Assemble a → … → m → … → b.
            let mut vertices = pa.vertices.clone();
            let mut steps = pa.steps.clone();
            for (i, step) in pb.steps.iter().enumerate().rev() {
                // pb runs b → … → m; reverse it to run m → … → b.
                steps.push(PathStep { pred: step.pred, dir: step.dir.flip() });
                vertices.push(pb.vertices[i]);
            }
            debug_assert_eq!(vertices.len(), steps.len() + 1);
            out.push(SimplePath { vertices, steps });
            if out.len() >= cfg.max_paths {
                break 'outer;
            }
        }
    }
    // Deterministic output order regardless of hash-map iteration.
    out.sort_unstable_by(|x, y| x.vertices.cmp(&y.vertices).then_with(|| x.steps.cmp(&y.steps)));
    out.dedup();
    out
}

/// Reference implementation: exhaustive DFS. Exponential; used by tests to
/// validate the bidirectional join and by callers that want certainty on
/// tiny graphs.
pub fn simple_paths_dfs(store: &Store, a: TermId, b: TermId, cfg: &PathConfig) -> Vec<SimplePath> {
    let mut out = Vec::new();
    if a == b || cfg.max_len == 0 {
        return out;
    }
    let mut vertices = vec![a];
    let mut steps = Vec::new();
    dfs(store, a, b, cfg, &mut vertices, &mut steps, &mut out);
    out.sort_unstable_by(|x, y| x.vertices.cmp(&y.vertices).then_with(|| x.steps.cmp(&y.steps)));
    out
}

fn dfs(
    store: &Store,
    here: TermId,
    target: TermId,
    cfg: &PathConfig,
    vertices: &mut Vec<TermId>,
    steps: &mut Vec<PathStep>,
    out: &mut Vec<SimplePath>,
) {
    if out.len() >= cfg.max_paths || steps.len() >= cfg.max_len {
        return;
    }
    store.metrics().bfs_expansion();
    for n in neighbors(store, here) {
        if !cfg.allows(n.pred) {
            continue;
        }
        if n.other == target {
            steps.push(PathStep { pred: n.pred, dir: n.dir });
            let mut vs = vertices.clone();
            vs.push(target);
            out.push(SimplePath { vertices: vs, steps: steps.clone() });
            steps.pop();
            continue;
        }
        if vertices.contains(&n.other) {
            continue;
        }
        vertices.push(n.other);
        steps.push(PathStep { pred: n.pred, dir: n.dir });
        dfs(store, n.other, target, cfg, vertices, steps, out);
        steps.pop();
        vertices.pop();
    }
}

/// All simple partial paths from `start` with at most `depth` edges
/// (including the empty path). `pub(crate)` so the frontier cache in
/// [`crate::cache`] can grow (and memoize) exactly the same partials.
pub(crate) fn grow_partials(
    store: &Store,
    start: TermId,
    depth: usize,
    cfg: &PathConfig,
    exec: &Exec,
) -> Vec<SimplePath> {
    let max_partials = cfg.max_partials;
    let mut all = vec![SimplePath { vertices: vec![start], steps: Vec::new() }];
    if exec.fire(FAULT_SITE_BFS).is_err() {
        return all;
    }
    let mut frontier = 0usize;
    for _ in 0..depth {
        let end = all.len();
        for i in frontier..end {
            // Cooperative budget/deadline check: one frontier node per
            // expansion; on exhaustion hand back the partials found so far.
            if !exec.charge_frontier(1) {
                return all;
            }
            store.metrics().bfs_expansion();
            let here = *all[i].vertices.last().expect("nonempty");
            // Clone the prefix lazily per neighbor.
            let base_v = all[i].vertices.clone();
            let base_s = all[i].steps.clone();
            for n in neighbors(store, here) {
                if base_v.contains(&n.other) || !cfg.allows(n.pred) {
                    continue;
                }
                let mut vertices = base_v.clone();
                vertices.push(n.other);
                let mut steps = base_s.clone();
                steps.push(PathStep { pred: n.pred, dir: n.dir });
                all.push(SimplePath { vertices, steps });
                if all.len() >= max_partials {
                    return all;
                }
            }
        }
        frontier = end;
    }
    all
}

fn disjoint_except_meeting(pa: &SimplePath, pb: &SimplePath, m: TermId) -> bool {
    // Both vertex lists are short (≤ θ/2 + 1); quadratic scan beats hashing.
    for &v in &pa.vertices {
        if v == m {
            continue;
        }
        if pb.vertices.contains(&v) {
            return false;
        }
    }
    true
}

/// Instantiate a pattern starting at `start`: every simple path realizing
/// `pattern` in the store. Used by the subgraph matcher for predicate-path
/// edges.
pub fn instantiate_from(
    store: &Store,
    start: TermId,
    pattern: &PathPattern,
    max_results: usize,
) -> Vec<SimplePath> {
    instantiate_from_with(store, start, pattern, max_results, &Exec::none())
}

/// [`instantiate_from`] under an execution context: this is the online
/// matcher's path-walking hot loop, so the frontier budget and deadline are
/// checked at every recursion step and [`FAULT_SITE_BFS`] fires at entry.
pub fn instantiate_from_with(
    store: &Store,
    start: TermId,
    pattern: &PathPattern,
    max_results: usize,
    exec: &Exec,
) -> Vec<SimplePath> {
    let mut out = Vec::new();
    if exec.fire(FAULT_SITE_BFS).is_err() {
        return out;
    }
    let mut vertices = vec![start];
    instantiate_rec(store, pattern, 0, &mut vertices, &mut Vec::new(), max_results, exec, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn instantiate_rec(
    store: &Store,
    pattern: &PathPattern,
    depth: usize,
    vertices: &mut Vec<TermId>,
    steps: &mut Vec<PathStep>,
    max_results: usize,
    exec: &Exec,
    out: &mut Vec<SimplePath>,
) {
    if out.len() >= max_results || !exec.charge_frontier(1) {
        return;
    }
    if depth == pattern.len() {
        out.push(SimplePath { vertices: vertices.clone(), steps: steps.clone() });
        return;
    }
    store.metrics().bfs_expansion();
    let want = pattern.0[depth];
    let here = *vertices.last().expect("nonempty");
    // Follow only edges matching the wanted (pred, dir).
    match want.dir {
        Dir::Forward => {
            for t in store.out_edges_with(here, want.pred) {
                if !store.term(t.o).is_iri() || vertices.contains(&t.o) {
                    continue;
                }
                vertices.push(t.o);
                steps.push(want);
                instantiate_rec(store, pattern, depth + 1, vertices, steps, max_results, exec, out);
                steps.pop();
                vertices.pop();
            }
        }
        Dir::Backward => {
            let incoming: Vec<_> = store.in_edges_with(here, want.pred).collect();
            for t in incoming {
                if vertices.contains(&t.s) {
                    continue;
                }
                vertices.push(t.s);
                steps.push(want);
                instantiate_rec(store, pattern, depth + 1, vertices, steps, max_results, exec, out);
                steps.pop();
                vertices.pop();
            }
        }
    }
}

/// Does `pattern` connect `a` to `b` via some simple path? Returns the first
/// witness found.
pub fn connects(store: &Store, a: TermId, b: TermId, pattern: &PathPattern) -> Option<SimplePath> {
    connects_with(store, a, b, pattern, &Exec::none())
}

/// [`connects`] under an execution context (see [`instantiate_from_with`]).
pub fn connects_with(
    store: &Store,
    a: TermId,
    b: TermId,
    pattern: &PathPattern,
    exec: &Exec,
) -> Option<SimplePath> {
    instantiate_from_with(store, a, pattern, 10_000, exec)
        .into_iter()
        .find(|p| *p.vertices.last().expect("nonempty") == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;

    /// The "uncle of" example of Figure 4: Ted —hasChild→? No: the paper's
    /// path is Ted ←hasChild— JosephSr —hasChild→ JFK —hasChild→ JFKjr,
    /// i.e. pattern ←hasChild·→hasChild·→hasChild from Ted to JFKjr.
    fn kennedy() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("Joseph_Sr", "hasChild", "Ted");
        b.add_iri("Joseph_Sr", "hasChild", "JFK");
        b.add_iri("JFK", "hasChild", "JFK_jr");
        b.add_iri("Ted", "hasGender", "male");
        b.add_iri("JFK_jr", "hasGender", "male");
        b.build()
    }

    #[test]
    fn uncle_path_found() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        let paths = simple_paths(&s, ted, jr, &PathConfig::with_max_len(4));
        assert!(!paths.is_empty());
        let child = s.expect_iri("hasChild");
        let uncle = PathPattern(Box::new([
            PathStep { pred: child, dir: Dir::Backward },
            PathStep { pred: child, dir: Dir::Forward },
            PathStep { pred: child, dir: Dir::Forward },
        ]));
        assert!(
            paths.iter().any(|p| p.pattern() == uncle),
            "expected the uncle path, got {paths:?}"
        );
        // The hasGender/hasGender noise path also exists (Ted→male←JFK_jr).
        let gender = s.expect_iri("hasGender");
        let noise = PathPattern(Box::new([
            PathStep { pred: gender, dir: Dir::Forward },
            PathStep { pred: gender, dir: Dir::Backward },
        ]));
        assert!(paths.iter().any(|p| p.pattern() == noise));
    }

    #[test]
    fn dfs_and_bidirectional_agree() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        for theta in 1..=4 {
            let cfg = PathConfig::with_max_len(theta);
            let a = simple_paths(&s, ted, jr, &cfg);
            let b = simple_paths_dfs(&s, ted, jr, &cfg);
            assert_eq!(a, b, "θ = {theta}");
        }
    }

    #[test]
    fn length_bound_is_respected() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        let paths = simple_paths(&s, ted, jr, &PathConfig::with_max_len(2));
        assert!(paths.iter().all(|p| p.len() <= 2));
        assert!(!paths.is_empty(), "the gender-gender path has length 2");
        let none = simple_paths(&s, ted, jr, &PathConfig::with_max_len(1));
        assert!(none.is_empty(), "Ted and JFK_jr are not adjacent");
    }

    #[test]
    fn same_vertex_yields_no_paths() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        assert!(simple_paths(&s, ted, ted, &PathConfig::default()).is_empty());
    }

    #[test]
    fn paths_are_simple() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        for p in simple_paths(&s, ted, jr, &PathConfig::with_max_len(4)) {
            let mut vs = p.vertices.clone();
            vs.sort_unstable();
            vs.dedup();
            assert_eq!(vs.len(), p.vertices.len(), "repeated vertex in {p:?}");
            assert_eq!(p.vertices.len(), p.steps.len() + 1);
            assert_eq!(p.vertices[0], ted);
            assert_eq!(*p.vertices.last().unwrap(), jr);
        }
    }

    #[test]
    fn pattern_reversal_is_involutive() {
        let s = kennedy();
        let child = s.expect_iri("hasChild");
        let gender = s.expect_iri("hasGender");
        let pat = PathPattern(Box::new([
            PathStep { pred: child, dir: Dir::Backward },
            PathStep { pred: gender, dir: Dir::Forward },
        ]));
        assert_eq!(pat.reversed().reversed(), pat);
        assert_ne!(pat.reversed(), pat);
        // A same-predicate ⟨←p, →p⟩ pattern is a palindrome under reversal.
        let palindrome = PathPattern(Box::new([
            PathStep { pred: child, dir: Dir::Backward },
            PathStep { pred: child, dir: Dir::Forward },
        ]));
        assert_eq!(palindrome.reversed(), palindrome);
    }

    #[test]
    fn single_predicate_accessors() {
        let pat = PathPattern::single(TermId(7));
        assert_eq!(pat.as_single_predicate(), Some(TermId(7)));
        assert_eq!(pat.len(), 1);
        assert_eq!(pat.reversed().as_single_predicate(), None);
    }

    #[test]
    fn instantiate_and_connects() {
        let s = kennedy();
        let child = s.expect_iri("hasChild");
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        let uncle = PathPattern(Box::new([
            PathStep { pred: child, dir: Dir::Backward },
            PathStep { pred: child, dir: Dir::Forward },
            PathStep { pred: child, dir: Dir::Forward },
        ]));
        let inst = instantiate_from(&s, ted, &uncle, 100);
        assert_eq!(inst.len(), 1);
        assert_eq!(*inst[0].vertices.last().unwrap(), jr);
        assert!(connects(&s, ted, jr, &uncle).is_some());
        assert!(connects(&s, jr, ted, &uncle).is_none(), "pattern is directional");
        assert!(connects(&s, jr, ted, &uncle.reversed()).is_some());
    }

    #[test]
    fn max_paths_limit() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        let cfg = PathConfig { max_len: 4, max_paths: 1, ..Default::default() };
        assert_eq!(simple_paths(&s, ted, jr, &cfg).len(), 1);
    }

    #[test]
    fn display_pattern() {
        let s = kennedy();
        let child = s.expect_iri("hasChild");
        let pat = PathPattern(Box::new([
            PathStep { pred: child, dir: Dir::Backward },
            PathStep { pred: child, dir: Dir::Forward },
        ]));
        assert_eq!(pat.display(&s).to_string(), "←hasChild·→hasChild");
    }
}
