//! Dataset statistics, mirroring the paper's Table 4
//! (number of entities / triples / predicates / size).

use crate::schema::Schema;
use crate::store::Store;
use std::fmt;
use std::mem;

/// Summary statistics of one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// IRI vertices that are not classes ("Number of Entities").
    pub entities: usize,
    /// Class vertices.
    pub classes: usize,
    /// Distinct triples ("Number of Triples").
    pub triples: usize,
    /// Distinct predicates ("Number of Predicates").
    pub predicates: usize,
    /// Literal vertices.
    pub literals: usize,
    /// Estimated resident size in bytes (dictionary strings + triples +
    /// index permutations).
    pub bytes: usize,
}

impl StoreStats {
    /// Compute statistics for `store`.
    pub fn collect(store: &Store) -> Self {
        let schema = Schema::new(store);
        let mut entities = 0usize;
        let mut classes = 0usize;
        let mut literals = 0usize;
        for v in store.vertices() {
            let t = store.term(v);
            if t.is_literal() {
                literals += 1;
            } else if schema.is_class(v) {
                classes += 1;
            } else {
                entities += 1;
            }
        }
        let dict_bytes: usize = store
            .dict()
            .iter()
            .map(|(_, t)| match t {
                crate::term::Term::Iri(s) => s.len(),
                crate::term::Term::Literal { lexical, datatype } => {
                    lexical.len() + datatype.as_ref().map_or(0, |d| d.len())
                }
                crate::term::Term::Blank(b) => b.len(),
            })
            .sum();
        let bytes = dict_bytes
            + store.len() * mem::size_of::<crate::triple::Triple>()
            + store.len() * 2 * mem::size_of::<u32>();
        StoreStats {
            entities,
            classes,
            triples: store.len(),
            predicates: store.predicates().len(),
            literals,
            bytes,
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Number of Entities    {}", self.entities)?;
        writeln!(f, "Number of Classes     {}", self.classes)?;
        writeln!(f, "Number of Triples     {}", self.triples)?;
        writeln!(f, "Number of Predicates  {}", self.predicates)?;
        write!(f, "Size of RDF Graph     {:.2} MB", self.bytes as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use crate::term::Term;

    #[test]
    fn counts_are_consistent() {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:A", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:B", "dbo:spouse", "dbr:A");
        b.add_obj("dbr:A", "rdfs:label", Term::lit("A"));
        let s = b.build();
        let st = StoreStats::collect(&s);
        assert_eq!(st.triples, 3);
        assert_eq!(st.entities, 2); // A and B
        assert_eq!(st.classes, 1); // Actor
        assert_eq!(st.literals, 1);
        assert_eq!(st.predicates, 3);
        assert!(st.bytes > 0);
    }

    #[test]
    fn display_mentions_every_row() {
        let s = StoreBuilder::new().build();
        let text = StoreStats::collect(&s).to_string();
        for key in ["Entities", "Triples", "Predicates", "Size"] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
