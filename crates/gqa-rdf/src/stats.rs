//! Dataset statistics, mirroring the paper's Table 4
//! (number of entities / triples / predicates / size).

use crate::schema::Schema;
use crate::store::{Store, StoreSectionBytes};
use std::fmt;

/// Summary statistics of one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// IRI vertices that are not classes ("Number of Entities").
    pub entities: usize,
    /// Class vertices.
    pub classes: usize,
    /// Distinct triples ("Number of Triples").
    pub triples: usize,
    /// Distinct predicates ("Number of Predicates").
    pub predicates: usize,
    /// Literal vertices.
    pub literals: usize,
    /// Estimated resident size in bytes (sum of `sections`).
    pub bytes: usize,
    /// Per-section resident bytes: dictionary, triple vector, CSR indexes.
    pub sections: StoreSectionBytes,
}

impl StoreStats {
    /// Compute statistics for `store`.
    pub fn collect(store: &Store) -> Self {
        let schema = Schema::new(store);
        let mut entities = 0usize;
        let mut classes = 0usize;
        let mut literals = 0usize;
        for v in store.vertices() {
            let t = store.term(v);
            if t.is_literal() {
                literals += 1;
            } else if schema.is_class(v) {
                classes += 1;
            } else {
                entities += 1;
            }
        }
        let sections = store.section_bytes();
        StoreStats {
            entities,
            classes,
            triples: store.len(),
            predicates: store.predicates().len(),
            literals,
            bytes: sections.total(),
            sections,
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Number of Entities    {}", self.entities)?;
        writeln!(f, "Number of Classes     {}", self.classes)?;
        writeln!(f, "Number of Triples     {}", self.triples)?;
        writeln!(f, "Number of Predicates  {}", self.predicates)?;
        writeln!(
            f,
            "Resident Bytes        dict={} triples={} indexes={}",
            self.sections.dict,
            self.sections.triples,
            self.sections.indexes.total()
        )?;
        write!(f, "Size of RDF Graph     {:.2} MB", self.bytes as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;
    use crate::term::Term;

    #[test]
    fn counts_are_consistent() {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:A", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:B", "dbo:spouse", "dbr:A");
        b.add_obj("dbr:A", "rdfs:label", Term::lit("A"));
        let s = b.build();
        let st = StoreStats::collect(&s);
        assert_eq!(st.triples, 3);
        assert_eq!(st.entities, 2); // A and B
        assert_eq!(st.classes, 1); // Actor
        assert_eq!(st.literals, 1);
        assert_eq!(st.predicates, 3);
        assert!(st.bytes > 0);
    }

    #[test]
    fn display_mentions_every_row() {
        let s = StoreBuilder::new().build();
        let text = StoreStats::collect(&s).to_string();
        for key in ["Entities", "Triples", "Predicates", "Size"] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
