//! The triple type and triple patterns.

use crate::ids::TermId;

/// A dictionary-encoded RDF triple.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Triple {
    /// Subject id (always an IRI or blank node).
    pub s: TermId,
    /// Predicate id (always an IRI).
    pub p: TermId,
    /// Object id (IRI, blank node or literal).
    pub o: TermId,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }
}

/// A triple pattern: each position either bound to a term or a wildcard.
///
/// Used by the store's `matching` scan and by the SPARQL evaluator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// A pattern matching every triple.
    pub fn any() -> Self {
        Self::default()
    }

    /// Does `t` satisfy every bound position?
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (0–3); used to pick the best index.
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_some())
            + usize::from(self.p.is_some())
            + usize::from(self.o.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn pattern_any_matches_everything() {
        assert!(TriplePattern::any().matches(&t(1, 2, 3)));
        assert_eq!(TriplePattern::any().bound_count(), 0);
    }

    #[test]
    fn pattern_bound_positions() {
        let p = TriplePattern { s: Some(TermId(1)), p: None, o: Some(TermId(3)) };
        assert!(p.matches(&t(1, 9, 3)));
        assert!(!p.matches(&t(1, 9, 4)));
        assert!(!p.matches(&t(2, 9, 3)));
        assert_eq!(p.bound_count(), 2);
    }

    #[test]
    fn triple_ordering_is_spo_lexicographic() {
        let mut v = vec![t(2, 1, 1), t(1, 2, 1), t(1, 1, 2), t(1, 1, 1)];
        v.sort();
        assert_eq!(v, vec![t(1, 1, 1), t(1, 1, 2), t(1, 2, 1), t(2, 1, 1)]);
    }
}
