//! Compact CSR-style adjacency indexes over the sorted triple vector.
//!
//! The triple vector stays sorted by (s, p, o); everything else is derived:
//!
//! * **subject offsets** — one `u32` per term id, so `out_edges` is an O(1)
//!   slice instead of two binary searches over 12-byte triples;
//! * **in-edge postings** — per object id, the ascending triple indexes of
//!   its incoming edges, delta-varint encoded. For a fixed object, triple
//!   indexes ascend exactly in (s, p) order, so decoding reproduces the old
//!   OSP permutation order bit for bit;
//! * **predicate postings** — per predicate, its (o, s) pairs in (o, s)
//!   order (the old POS permutation order), delta-varint encoded in blocks
//!   of [`BLOCK`] entries. Each block starts with absolute values and the
//!   per-block first-object directory supports seeking for
//!   `with_predicate_object` without decoding the whole posting.
//!
//! Every iterator here yields triples in exactly the order the permutation
//! arrays used to, so callers (BFS, path mining, SPARQL evaluation, dataset
//! generators that `.take(n)` from a scan) see identical sequences.
//!
//! The [`mod@reference`] submodule keeps the old permutation layout as a test
//! oracle and a bytes/triple baseline for the scale benchmark.

use crate::ids::TermId;
use crate::triple::Triple;
use crate::varint;

/// Entries per predicate-posting block. Each block begins with absolute
/// (object, subject) values, so a seek costs at most one block of decoding.
pub const BLOCK: usize = 64;

/// Byte sizes of the CSR sections, for resident-memory accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrBytes {
    /// The subject offset array (`term_count + 1` u32s).
    pub spo_offsets: usize,
    /// In-edge postings: offset array plus delta-varint data.
    pub in_index: usize,
    /// Predicate postings: ids, block directory and delta-varint data.
    pub pred_index: usize,
}

impl CsrBytes {
    /// Total bytes across all CSR sections.
    pub fn total(&self) -> usize {
        self.spo_offsets + self.in_index + self.pred_index
    }
}

/// The compact adjacency indexes. Built once by [`CsrIndexes::build`],
/// immutable afterwards. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct CsrIndexes {
    /// `spo_offsets[v]..spo_offsets[v+1]` is the range of triples with
    /// subject `v` in the (s, p, o)-sorted triple vector. Length
    /// `term_count + 1`.
    spo_offsets: Box<[u32]>,
    /// Byte ranges into `in_data` per object id. Length `term_count + 1`.
    in_offsets: Box<[u32]>,
    /// Delta-varint ascending triple indexes, grouped by object.
    in_data: Box<[u8]>,
    /// Distinct predicate ids, ascending.
    pred_ids: Box<[TermId]>,
    /// `pred_blocks[i]..pred_blocks[i+1]` is the block range of predicate
    /// `pred_ids[i]`. Length `pred_ids.len() + 1`.
    pred_blocks: Box<[u32]>,
    /// First object id of each block (seek directory). Length `n_blocks`.
    block_first_o: Box<[u32]>,
    /// Byte offset of each block in `pred_data`. Length `n_blocks + 1`.
    block_bytes: Box<[u32]>,
    /// Block-coded (object, subject) postings per predicate.
    pred_data: Box<[u8]>,
}

/// Borrowed view of every CSR section, for snapshot serialization.
pub(crate) struct CsrSectionsRef<'a> {
    pub spo_offsets: &'a [u32],
    pub in_offsets: &'a [u32],
    pub in_data: &'a [u8],
    pub pred_ids: &'a [TermId],
    pub pred_blocks: &'a [u32],
    pub block_first_o: &'a [u32],
    pub block_bytes: &'a [u32],
    pub pred_data: &'a [u8],
}

/// Owned CSR sections as decoded from a snapshot, before validation.
pub(crate) struct CsrSections {
    pub spo_offsets: Box<[u32]>,
    pub in_offsets: Box<[u32]>,
    pub in_data: Box<[u8]>,
    pub pred_ids: Box<[TermId]>,
    pub pred_blocks: Box<[u32]>,
    pub block_first_o: Box<[u32]>,
    pub block_bytes: Box<[u32]>,
    pub pred_data: Box<[u8]>,
}

impl CsrIndexes {
    /// Borrow every section for serialization.
    pub(crate) fn sections(&self) -> CsrSectionsRef<'_> {
        CsrSectionsRef {
            spo_offsets: &self.spo_offsets,
            in_offsets: &self.in_offsets,
            in_data: &self.in_data,
            pred_ids: &self.pred_ids,
            pred_blocks: &self.pred_blocks,
            block_first_o: &self.block_first_o,
            block_bytes: &self.block_bytes,
            pred_data: &self.pred_data,
        }
    }

    /// Adopt snapshot-decoded sections after structural validation.
    ///
    /// Validation guarantees every access path is memory-safe and
    /// terminating on these indexes: offset arrays are monotonic and
    /// in-bounds, both varint posting streams decode exactly (no truncated
    /// varint, strict ascent, ids and triple indexes in range, entry counts
    /// equal to `triple_count`). It does NOT re-derive the postings from
    /// the triples — matching the triple vector byte-for-byte is the
    /// checksum's job, not this function's.
    pub(crate) fn from_sections(
        term_count: usize,
        triple_count: usize,
        s: CsrSections,
    ) -> Result<CsrIndexes, String> {
        let offsets_ok = |name: &str, v: &[u32], last: usize| -> Result<(), String> {
            if v.len() != term_count + 1 {
                return Err(format!("{name}: {} entries for {term_count} terms", v.len()));
            }
            if v[0] != 0 || v.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{name} not monotonic from zero"));
            }
            if v[term_count] as usize != last {
                return Err(format!("{name} end {} != section size {last}", v[term_count]));
            }
            Ok(())
        };
        offsets_ok("subject offsets", &s.spo_offsets, triple_count)?;
        offsets_ok("in-edge offsets", &s.in_offsets, s.in_data.len())?;

        // Decode-validate the in-edge postings: every object group must
        // consume its byte range exactly and yield strictly ascending
        // triple indexes below `triple_count`.
        let mut total = 0usize;
        for o in 0..term_count {
            let bytes = &s.in_data[s.in_offsets[o] as usize..s.in_offsets[o + 1] as usize];
            let mut pos = 0usize;
            let mut prev = 0u32;
            let mut first = true;
            while pos < bytes.len() {
                let delta = varint::read_u32(bytes, &mut pos)
                    .ok_or_else(|| format!("truncated in-edge posting for object {o}"))?;
                if !first && delta == 0 {
                    return Err(format!("non-ascending in-edge posting for object {o}"));
                }
                prev = if first { delta } else { prev.checked_add(delta).ok_or("idx overflow")? };
                first = false;
                if prev as usize >= triple_count {
                    return Err(format!("in-edge posting for object {o} outside triple vector"));
                }
                total += 1;
            }
        }
        if total != triple_count {
            return Err(format!("{total} in-edge postings for {triple_count} triples"));
        }

        // Predicate directory arrays.
        if s.pred_ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err("predicate ids not strictly ascending".into());
        }
        if s.pred_ids.last().is_some_and(|p| p.index() >= term_count) {
            return Err("predicate id outside dictionary".into());
        }
        if s.pred_blocks.len() != s.pred_ids.len() + 1
            || s.pred_blocks[0] != 0
            || s.pred_blocks.windows(2).any(|w| w[0] >= w[1])
            || *s.pred_blocks.last().expect("nonempty") as usize != s.block_first_o.len()
        {
            return Err("predicate block directory malformed".into());
        }
        if s.block_bytes.len() != s.block_first_o.len() + 1
            || s.block_bytes[0] != 0
            || s.block_bytes.windows(2).any(|w| w[0] >= w[1])
            || *s.block_bytes.last().expect("nonempty") as usize != s.pred_data.len()
        {
            return Err("block byte directory malformed".into());
        }

        // Decode-validate the predicate postings block by block: exact byte
        // consumption, block heads matching the seek directory, strictly
        // ascending (o, s) within each predicate, ids in range, at most
        // BLOCK entries per block.
        let mut total = 0usize;
        for pi in 0..s.pred_ids.len() {
            let mut prev: Option<(u32, u32)> = None;
            for b in s.pred_blocks[pi] as usize..s.pred_blocks[pi + 1] as usize {
                let bytes = &s.pred_data[s.block_bytes[b] as usize..s.block_bytes[b + 1] as usize];
                let mut pos = 0usize;
                let mut entries = 0usize;
                while pos < bytes.len() {
                    let bad = || format!("truncated predicate posting in block {b}");
                    let a = varint::read_u32(bytes, &mut pos).ok_or_else(bad)?;
                    let second = varint::read_u32(bytes, &mut pos).ok_or_else(bad)?;
                    let (o, sub) = match prev {
                        None | Some(_) if entries == 0 => {
                            if a != s.block_first_o[b] {
                                return Err(format!("block {b} head disagrees with directory"));
                            }
                            (a, second)
                        }
                        Some((po, ps)) => {
                            if a == 0 {
                                (po, ps.checked_add(second).ok_or("id overflow")?)
                            } else {
                                (po.checked_add(a).ok_or("id overflow")?, second)
                            }
                        }
                        None => unreachable!("entries > 0 implies prev set"),
                    };
                    if o as usize >= term_count || sub as usize >= term_count {
                        return Err(format!(
                            "predicate posting id outside dictionary in block {b}"
                        ));
                    }
                    if let Some(p) = prev {
                        if (o, sub) <= p {
                            return Err(format!("non-ascending predicate posting in block {b}"));
                        }
                    }
                    prev = Some((o, sub));
                    entries += 1;
                    total += 1;
                }
                if entries == 0 || entries > BLOCK {
                    return Err(format!("block {b} holds {entries} entries (1..={BLOCK})"));
                }
            }
        }
        if total != triple_count {
            return Err(format!("{total} predicate postings for {triple_count} triples"));
        }

        Ok(CsrIndexes {
            spo_offsets: s.spo_offsets,
            in_offsets: s.in_offsets,
            in_data: s.in_data,
            pred_ids: s.pred_ids,
            pred_blocks: s.pred_blocks,
            block_first_o: s.block_first_o,
            block_bytes: s.block_bytes,
            pred_data: s.pred_data,
        })
    }

    /// Build all indexes in O(triples + terms) using counting sorts.
    ///
    /// `triples` must be sorted by (s, p, o) and deduplicated, with every id
    /// below `term_count` (the [`crate::store::StoreBuilder`] and the
    /// snapshot loader both guarantee this).
    pub fn build(term_count: usize, triples: &[Triple]) -> CsrIndexes {
        let n = triples.len();
        assert!(n <= u32::MAX as usize, "more than u32::MAX triples");

        // Subject offsets: one counting pass + prefix sum.
        let mut spo_offsets = vec![0u32; term_count + 1];
        for t in triples {
            spo_offsets[t.s.index() + 1] += 1;
        }
        for i in 1..spo_offsets.len() {
            spo_offsets[i] += spo_offsets[i - 1];
        }

        // Counting-sort triple indexes by object. Iterating the (s, p, o)-
        // sorted vector and placing stably means each object group holds
        // ascending triple indexes — which, for a fixed o, is exactly
        // (s, p) order: the old OSP permutation.
        let mut in_group = vec![0u32; term_count + 1];
        for t in triples {
            in_group[t.o.index() + 1] += 1;
        }
        for i in 1..in_group.len() {
            in_group[i] += in_group[i - 1];
        }
        let mut osp = vec![0u32; n];
        let mut cursor = in_group.clone();
        for (i, t) in triples.iter().enumerate() {
            let c = &mut cursor[t.o.index()];
            osp[*c as usize] = i as u32;
            *c += 1;
        }
        drop(cursor);

        // Encode in-edge postings as first-absolute + gap varints.
        let mut in_offsets = vec![0u32; term_count + 1];
        let mut in_data = Vec::new();
        for o in 0..term_count {
            in_offsets[o] = csr_u32(in_data.len(), "in-edge postings");
            let group = &osp[in_group[o] as usize..in_group[o + 1] as usize];
            let mut prev = 0u32;
            for (k, &ti) in group.iter().enumerate() {
                let delta = if k == 0 { ti } else { ti - prev };
                varint::write_u32(&mut in_data, delta);
                prev = ti;
            }
        }
        in_offsets[term_count] = csr_u32(in_data.len(), "in-edge postings");
        drop(in_group);

        // Stable counting-sort the OSP order by predicate: within each
        // predicate the (o, s) order is preserved — the old POS permutation.
        let mut pred_group = vec![0u32; term_count + 1];
        for t in triples {
            pred_group[t.p.index() + 1] += 1;
        }
        for i in 1..pred_group.len() {
            pred_group[i] += pred_group[i - 1];
        }
        let mut pos = vec![0u32; n];
        let mut cursor = pred_group.clone();
        for &ti in &osp {
            let c = &mut cursor[triples[ti as usize].p.index()];
            pos[*c as usize] = ti;
            *c += 1;
        }
        drop(cursor);
        drop(osp);

        // Block-encode predicate postings.
        let mut pred_ids = Vec::new();
        let mut pred_blocks = Vec::new();
        let mut block_first_o = Vec::new();
        let mut block_bytes = Vec::new();
        let mut pred_data = Vec::new();
        for p in 0..term_count {
            let group = &pos[pred_group[p] as usize..pred_group[p + 1] as usize];
            if group.is_empty() {
                continue;
            }
            pred_ids.push(TermId::from_index(p));
            pred_blocks.push(csr_u32(block_first_o.len(), "predicate blocks"));
            for chunk in group.chunks(BLOCK) {
                let first = triples[chunk[0] as usize];
                block_first_o.push(first.o.0);
                block_bytes.push(csr_u32(pred_data.len(), "predicate postings"));
                varint::write_u32(&mut pred_data, first.o.0);
                varint::write_u32(&mut pred_data, first.s.0);
                let mut prev = first;
                for &ti in &chunk[1..] {
                    let t = triples[ti as usize];
                    let delta_o = t.o.0 - prev.o.0;
                    varint::write_u32(&mut pred_data, delta_o);
                    if delta_o == 0 {
                        // Same object: subjects ascend strictly within it.
                        varint::write_u32(&mut pred_data, t.s.0 - prev.s.0);
                    } else {
                        varint::write_u32(&mut pred_data, t.s.0);
                    }
                    prev = t;
                }
            }
        }
        pred_blocks.push(csr_u32(block_first_o.len(), "predicate blocks"));
        block_bytes.push(csr_u32(pred_data.len(), "predicate postings"));

        CsrIndexes {
            spo_offsets: spo_offsets.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_data: in_data.into_boxed_slice(),
            pred_ids: pred_ids.into_boxed_slice(),
            pred_blocks: pred_blocks.into_boxed_slice(),
            block_first_o: block_first_o.into_boxed_slice(),
            block_bytes: block_bytes.into_boxed_slice(),
            pred_data: pred_data.into_boxed_slice(),
        }
    }

    /// The range of triples with subject `s` in the sorted triple vector.
    /// Empty for ids outside the dictionary.
    #[inline]
    pub fn out_range(&self, s: TermId) -> std::ops::Range<usize> {
        let i = s.index();
        if i + 1 >= self.spo_offsets.len() {
            return 0..0;
        }
        self.spo_offsets[i] as usize..self.spo_offsets[i + 1] as usize
    }

    /// Ascending triple indexes of the edges into `o` (old OSP order).
    /// Empty for ids outside the dictionary.
    pub fn in_triples(&self, o: TermId) -> InEdgeIter<'_> {
        let i = o.index();
        let bytes = if i + 1 >= self.in_offsets.len() {
            &[][..]
        } else {
            &self.in_data[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
        };
        InEdgeIter { bytes, pos: 0, prev: 0, first: true }
    }

    /// Distinct predicate ids, ascending.
    #[inline]
    pub fn predicate_ids(&self) -> &[TermId] {
        &self.pred_ids
    }

    /// (object, subject) pairs of predicate `p` in (o, s) order (old POS
    /// order). Empty if `p` never occurs as a predicate.
    pub fn predicate_postings(&self, p: TermId) -> PostingIter<'_> {
        match self.pred_ids.binary_search(&p) {
            Ok(i) => self.postings_from_block(
                self.pred_blocks[i] as usize,
                self.pred_blocks[i + 1] as usize,
            ),
            Err(_) => self.postings_from_block(0, 0),
        }
    }

    /// (object, subject) pairs of predicate `p` restricted to object `o`,
    /// in ascending subject order. Seeks via the block directory, so the
    /// cost is one block of decoding plus the matching entries.
    pub fn predicate_object_postings(
        &self,
        p: TermId,
        o: TermId,
    ) -> impl Iterator<Item = u32> + '_ {
        let (b0, b1) = match self.pred_ids.binary_search(&p) {
            Ok(i) => (self.pred_blocks[i] as usize, self.pred_blocks[i + 1] as usize),
            Err(_) => (0, 0),
        };
        // Last block whose first object precedes `o` — the o-group may begin
        // mid-block, so starting at the first block with first_o >= o could
        // skip its head.
        let dir = &self.block_first_o[b0..b1];
        let start = b0 + dir.partition_point(|&first| first < o.0);
        let seek = if start > b0 { start - 1 } else { b0 };
        self.postings_from_block(seek, b1)
            .skip_while(move |&(po, _)| po < o.0)
            .take_while(move |&(po, _)| po == o.0)
            .map(|(_, s)| s)
    }

    fn postings_from_block(&self, block: usize, block_end: usize) -> PostingIter<'_> {
        let (pos, end) = if block >= block_end {
            (0, 0)
        } else {
            (self.block_bytes[block] as usize, self.block_bytes[block_end] as usize)
        };
        PostingIter {
            data: &self.pred_data,
            block_bytes: &self.block_bytes,
            next_block: block,
            block_end,
            pos,
            end,
            prev_o: 0,
            prev_s: 0,
        }
    }

    /// Byte sizes per section, for [`crate::stats::StoreStats`] and the
    /// scale benchmark.
    pub fn bytes(&self) -> CsrBytes {
        let u32s = |n: usize| n * std::mem::size_of::<u32>();
        CsrBytes {
            spo_offsets: u32s(self.spo_offsets.len()),
            in_index: u32s(self.in_offsets.len()) + self.in_data.len(),
            pred_index: u32s(self.pred_ids.len())
                + u32s(self.pred_blocks.len())
                + u32s(self.block_first_o.len())
                + u32s(self.block_bytes.len())
                + self.pred_data.len(),
        }
    }
}

fn csr_u32(v: usize, what: &str) -> u32 {
    u32::try_from(v).unwrap_or_else(|_| panic!("{what} exceed 4 GiB; store too large for CSR"))
}

/// Decoder over one object's in-edge posting: yields ascending triple
/// indexes into the (s, p, o)-sorted triple vector.
#[derive(Debug, Clone)]
pub struct InEdgeIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev: u32,
    first: bool,
}

impl Iterator for InEdgeIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let delta = varint::read_u32(self.bytes, &mut self.pos)
            .expect("corrupt in-edge posting: CSR build wrote truncated varint");
        self.prev = if self.first { delta } else { self.prev + delta };
        self.first = false;
        Some(self.prev)
    }
}

/// Decoder over a predicate posting: yields `(object, subject)` raw id
/// pairs in (o, s) order, resetting to absolute values at block heads.
#[derive(Debug, Clone)]
pub struct PostingIter<'a> {
    data: &'a [u8],
    block_bytes: &'a [u32],
    next_block: usize,
    block_end: usize,
    pos: usize,
    end: usize,
    prev_o: u32,
    prev_s: u32,
}

impl Iterator for PostingIter<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        if self.pos >= self.end {
            return None;
        }
        let corrupt =
            || -> ! { panic!("corrupt predicate posting: CSR build wrote truncated varint") };
        if self.next_block < self.block_end
            && self.pos == self.block_bytes[self.next_block] as usize
        {
            // Block head: absolute (o, s).
            self.next_block += 1;
            self.prev_o = varint::read_u32(self.data, &mut self.pos).unwrap_or_else(|| corrupt());
            self.prev_s = varint::read_u32(self.data, &mut self.pos).unwrap_or_else(|| corrupt());
        } else {
            let delta_o = varint::read_u32(self.data, &mut self.pos).unwrap_or_else(|| corrupt());
            let second = varint::read_u32(self.data, &mut self.pos).unwrap_or_else(|| corrupt());
            if delta_o == 0 {
                self.prev_s += second;
            } else {
                self.prev_o += delta_o;
                self.prev_s = second;
            }
        }
        Some((self.prev_o, self.prev_s))
    }
}

/// The pre-CSR permutation layout, kept as a proptest oracle and a
/// bytes/triple baseline for the scale benchmark. Semantics match the
/// original `Store` access paths exactly.
pub mod reference {
    use crate::ids::TermId;
    use crate::triple::Triple;

    /// POS and OSP permutation arrays over an (s, p, o)-sorted triple slice
    /// — the layout `Store` used before the CSR indexes.
    #[derive(Debug, Clone)]
    pub struct RefIndexes {
        /// Permutation sorted by (p, o, s).
        pos: Vec<u32>,
        /// Permutation sorted by (o, s, p).
        osp: Vec<u32>,
    }

    impl RefIndexes {
        /// Build both permutations by comparison sort, as the old
        /// `StoreBuilder::build` did.
        pub fn build(triples: &[Triple]) -> RefIndexes {
            let n = triples.len();
            let mut pos: Vec<u32> = (0..n as u32).collect();
            pos.sort_unstable_by_key(|&i| {
                let t = triples[i as usize];
                (t.p, t.o, t.s)
            });
            let mut osp: Vec<u32> = (0..n as u32).collect();
            osp.sort_unstable_by_key(|&i| {
                let t = triples[i as usize];
                (t.o, t.s, t.p)
            });
            RefIndexes { pos, osp }
        }

        /// Index bytes of this layout: two u32 permutations.
        pub fn bytes(&self) -> usize {
            (self.pos.len() + self.osp.len()) * std::mem::size_of::<u32>()
        }

        /// All triples with subject `s` (binary search over the triples).
        pub fn out_edges<'a>(&self, triples: &'a [Triple], s: TermId) -> &'a [Triple] {
            let lo = triples.partition_point(|t| t.s < s);
            let hi = triples.partition_point(|t| t.s <= s);
            &triples[lo..hi]
        }

        /// All triples with subject `s` and predicate `p`.
        pub fn out_edges_with<'a>(
            &self,
            triples: &'a [Triple],
            s: TermId,
            p: TermId,
        ) -> &'a [Triple] {
            let lo = triples.partition_point(|t| (t.s, t.p) < (s, p));
            let hi = triples.partition_point(|t| (t.s, t.p) <= (s, p));
            &triples[lo..hi]
        }

        /// Exact-triple membership via binary search.
        pub fn contains(&self, triples: &[Triple], t: Triple) -> bool {
            triples.binary_search(&t).is_ok()
        }

        /// All triples with object `o`, in OSP order.
        pub fn in_edges(&self, triples: &[Triple], o: TermId) -> Vec<Triple> {
            let lo = self.osp.partition_point(|&i| triples[i as usize].o < o);
            let hi = self.osp.partition_point(|&i| triples[i as usize].o <= o);
            self.osp[lo..hi].iter().map(|&i| triples[i as usize]).collect()
        }

        /// All triples with object `o` and predicate `p` (OSP scan + filter,
        /// as the old `in_edges_with` did).
        pub fn in_edges_with(&self, triples: &[Triple], o: TermId, p: TermId) -> Vec<Triple> {
            self.in_edges(triples, o).into_iter().filter(|t| t.p == p).collect()
        }

        /// All triples with predicate `p`, in POS order.
        pub fn with_predicate(&self, triples: &[Triple], p: TermId) -> Vec<Triple> {
            let lo = self.pos.partition_point(|&i| triples[i as usize].p < p);
            let hi = self.pos.partition_point(|&i| triples[i as usize].p <= p);
            self.pos[lo..hi].iter().map(|&i| triples[i as usize]).collect()
        }

        /// All triples with predicate `p` and object `o`.
        pub fn with_predicate_object(
            &self,
            triples: &[Triple],
            p: TermId,
            o: TermId,
        ) -> Vec<Triple> {
            let key = (p, o);
            let lo = self.pos.partition_point(|&i| {
                let t = triples[i as usize];
                (t.p, t.o) < key
            });
            let hi = self.pos.partition_point(|&i| {
                let t = triples[i as usize];
                (t.p, t.o) <= key
            });
            self.pos[lo..hi].iter().map(|&i| triples[i as usize]).collect()
        }

        /// Distinct predicate ids in ascending order (POS walk).
        pub fn predicates(&self, triples: &[Triple]) -> Vec<TermId> {
            let mut out = Vec::new();
            let mut last = None;
            for &i in &self.pos {
                let p = triples[i as usize].p;
                if last != Some(p) {
                    out.push(p);
                    last = Some(p);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(edges: &[(u32, u32, u32)]) -> Vec<Triple> {
        let mut v: Vec<Triple> =
            edges.iter().map(|&(s, p, o)| Triple::new(TermId(s), TermId(p), TermId(o))).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn max_id(ts: &[Triple]) -> usize {
        ts.iter().map(|t| t.s.0.max(t.p.0).max(t.o.0) as usize + 1).max().unwrap_or(0)
    }

    #[test]
    fn matches_reference_on_a_small_graph() {
        let ts =
            triples(&[(0, 1, 2), (0, 1, 3), (0, 4, 2), (2, 1, 0), (3, 1, 2), (3, 4, 0), (5, 4, 5)]);
        let n = max_id(&ts);
        let csr = CsrIndexes::build(n, &ts);
        let rf = reference::RefIndexes::build(&ts);
        for id in 0..n as u32 + 2 {
            let v = TermId(id);
            assert_eq!(&ts[csr.out_range(v)], rf.out_edges(&ts, v), "out_edges({v})");
            let got: Vec<Triple> = csr.in_triples(v).map(|i| ts[i as usize]).collect();
            assert_eq!(got, rf.in_edges(&ts, v), "in_edges({v})");
            let got: Vec<Triple> = csr
                .predicate_postings(v)
                .map(|(o, s)| Triple::new(TermId(s), v, TermId(o)))
                .collect();
            assert_eq!(got, rf.with_predicate(&ts, v), "with_predicate({v})");
            for oid in 0..n as u32 + 2 {
                let o = TermId(oid);
                let got: Vec<Triple> = csr
                    .predicate_object_postings(v, o)
                    .map(|s| Triple::new(TermId(s), v, o))
                    .collect();
                assert_eq!(got, rf.with_predicate_object(&ts, v, o), "wpo({v},{o})");
            }
        }
        assert_eq!(csr.predicate_ids(), rf.predicates(&ts).as_slice(), "distinct predicates");
    }

    #[test]
    fn block_boundaries_seek_correctly() {
        // One predicate, > 2 blocks, with an object group straddling a
        // block boundary: entries (o=7) start in block 0 and continue into
        // block 1.
        let mut edges = Vec::new();
        for s in 0..60 {
            edges.push((s, 100, 7u32));
        }
        for s in 0..10 {
            edges.push((s, 100, 8u32));
        }
        for s in 0..100 {
            edges.push((s, 100, 9u32));
        }
        let ts = triples(&edges);
        let n = max_id(&ts);
        let csr = CsrIndexes::build(n, &ts);
        let rf = reference::RefIndexes::build(&ts);
        let p = TermId(100);
        for oid in [6u32, 7, 8, 9, 10] {
            let o = TermId(oid);
            let got: Vec<u32> = csr.predicate_object_postings(p, o).collect();
            let want: Vec<u32> =
                rf.with_predicate_object(&ts, p, o).iter().map(|t| t.s.0).collect();
            assert_eq!(got, want, "object {oid}");
        }
        let all: Vec<(u32, u32)> = csr.predicate_postings(p).collect();
        assert_eq!(all.len(), ts.len());
    }

    #[test]
    fn empty_graph() {
        let csr = CsrIndexes::build(0, &[]);
        assert_eq!(csr.out_range(TermId(0)), 0..0);
        assert_eq!(csr.in_triples(TermId(0)).count(), 0);
        assert_eq!(csr.predicate_postings(TermId(0)).count(), 0);
        assert_eq!(csr.predicate_object_postings(TermId(0), TermId(1)).count(), 0);
        assert!(csr.predicate_ids().is_empty());
        assert!(csr.bytes().total() > 0, "offset arrays still occupy bytes");
    }
}
