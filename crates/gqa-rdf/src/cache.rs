//! Concurrent, bounded memoization for simple-path enumeration.
//!
//! The offline miner (paper §3, Algorithm 1) calls
//! [`simple_paths`](crate::paths::simple_paths) once per supporting entity
//! pair of every relation phrase. Real phrase datasets repeat pairs across
//! phrases ("be married to" / "be the spouse of" share support), and
//! distinct pairs frequently share an endpoint (hub entities appear in many
//! pairs), so both the *pair → paths* result and the *per-source BFS
//! frontier* are highly reusable.
//!
//! [`PathCache`] memoizes both layers behind sharded LRU maps guarded by
//! `parking_lot::Mutex`, making it safe to share one cache across the
//! miner's worker threads:
//!
//! * the **pair cache** is keyed by `(a, b, θ)` and stores the full
//!   enumeration result;
//! * the **frontier cache** is keyed by `(start, depth)` and stores the
//!   partial simple paths grown from one endpoint, so even a *missed* pair
//!   reuses half of its BFS when either endpoint was seen before.
//!
//! Results are byte-identical to uncached enumeration: the cache reuses the
//! exact `grow_partials`/`join_partials` routines of
//! [`crate::paths::simple_paths`], and values are immutable `Arc`s.
//!
//! A cache instance is constructed over one fixed [`PathConfig`] (θ, path
//! caps, skipped predicates); keys do not encode the config beyond θ, so
//! never share one instance across differently-configured enumerations.

use crate::ids::TermId;
use crate::paths::{grow_partials, join_partials, PathConfig, SimplePath};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Capacity knobs for [`PathCache`]. Defaults suit the bundled phrase
/// datasets (thousands of pairs, hundreds of distinct endpoints).
#[derive(Clone, Copy, Debug)]
pub struct PathCacheConfig {
    /// Maximum cached `(a, b, θ)` enumeration results.
    pub pair_capacity: usize,
    /// Maximum cached `(start, depth)` BFS frontiers.
    pub frontier_capacity: usize,
    /// Lock shards per layer (bounded contention under the miner's
    /// thread fan-out).
    pub shards: usize,
}

impl Default for PathCacheConfig {
    fn default() -> Self {
        PathCacheConfig { pair_capacity: 8192, frontier_capacity: 4096, shards: 16 }
    }
}

/// Hit/miss counts of one [`PathCache`] (monotonic since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Pair-cache hits (whole enumeration skipped).
    pub hits: u64,
    /// Pair-cache misses (enumeration ran, possibly over cached frontiers).
    pub misses: u64,
    /// Frontier-cache hits (one BFS side skipped inside a pair miss).
    pub frontier_hits: u64,
    /// Frontier-cache misses.
    pub frontier_misses: u64,
}

impl PathCacheStats {
    /// Pair-level hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One LRU shard: an access-stamped map. Eviction scans for the oldest
/// stamp — shards stay small (capacity / shard count), so the scan is
/// cheaper than maintaining an intrusive list under a mutex.
struct LruShard<K> {
    map: FxHashMap<K, (u64, Arc<Vec<SimplePath>>)>,
    clock: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Copy> LruShard<K> {
    fn new(capacity: usize) -> Self {
        LruShard { map: FxHashMap::default(), clock: 0, capacity: capacity.max(1) }
    }

    fn get(&mut self, key: &K) -> Option<Arc<Vec<SimplePath>>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(stamp, v)| {
            *stamp = clock;
            v.clone()
        })
    }

    fn insert(&mut self, key: K, value: Arc<Vec<SimplePath>>) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| *k) {
                self.map.remove(&oldest);
            }
        }
        self.clock += 1;
        self.map.insert(key, (self.clock, value));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// One mutex-guarded [`LruShard`] per shard index.
type ShardedLru<K> = Box<[Mutex<LruShard<K>>]>;

/// A thread-safe, bounded memo cache for [`crate::paths::simple_paths`].
///
/// ```
/// use gqa_rdf::cache::PathCache;
/// use gqa_rdf::paths::{simple_paths, PathConfig};
/// use gqa_rdf::StoreBuilder;
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("grandpa", "hasChild", "uncle");
/// b.add_iri("grandpa", "hasChild", "parent");
/// b.add_iri("parent", "hasChild", "nephew");
/// let store = b.build();
/// let (u, n) = (store.expect_iri("uncle"), store.expect_iri("nephew"));
///
/// let cfg = PathConfig::with_max_len(3);
/// let cache = PathCache::new(cfg.clone());
/// let first = cache.simple_paths(&store, u, n);
/// assert_eq!(*first, simple_paths(&store, u, n, &cfg));
/// let again = cache.simple_paths(&store, u, n); // served from memory
/// assert_eq!(first, again);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct PathCache {
    path_cfg: PathConfig,
    pairs: ShardedLru<(TermId, TermId, usize)>,
    frontiers: ShardedLru<(TermId, usize)>,
    hits: AtomicU64,
    misses: AtomicU64,
    frontier_hits: AtomicU64,
    frontier_misses: AtomicU64,
}

impl PathCache {
    /// A cache over `path_cfg` with default capacities.
    pub fn new(path_cfg: PathConfig) -> Self {
        Self::with_capacity(path_cfg, PathCacheConfig::default())
    }

    /// A cache over `path_cfg` with explicit capacity knobs.
    pub fn with_capacity(path_cfg: PathConfig, cap: PathCacheConfig) -> Self {
        let shards = cap.shards.max(1);
        let per_pair_shard = cap.pair_capacity.div_ceil(shards);
        let per_frontier_shard = cap.frontier_capacity.div_ceil(shards);
        PathCache {
            path_cfg,
            pairs: (0..shards).map(|_| Mutex::new(LruShard::new(per_pair_shard))).collect(),
            frontiers: (0..shards).map(|_| Mutex::new(LruShard::new(per_frontier_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            frontier_hits: AtomicU64::new(0),
            frontier_misses: AtomicU64::new(0),
        }
    }

    /// The enumeration config this cache was built over.
    pub fn config(&self) -> &PathConfig {
        &self.path_cfg
    }

    /// [`crate::paths::simple_paths`] with memoization; results are
    /// identical to the uncached call with this cache's [`PathConfig`].
    pub fn simple_paths(&self, store: &crate::Store, a: TermId, b: TermId) -> Arc<Vec<SimplePath>> {
        let theta = self.path_cfg.max_len;
        if a == b || theta == 0 {
            return Arc::new(Vec::new());
        }
        let key = (a, b, theta);
        if let Some(hit) = self.pairs[shard_of(&key, self.pairs.len())].lock().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Relaxed);
        let from_a = self.frontier(store, a, theta.div_ceil(2));
        let from_b = self.frontier(store, b, theta / 2);
        let joined = Arc::new(join_partials(&from_a, &from_b, &self.path_cfg));
        self.pairs[shard_of(&key, self.pairs.len())].lock().insert(key, joined.clone());
        joined
    }

    /// The memoized BFS frontier from `start` (partial simple paths with at
    /// most `depth` edges).
    fn frontier(&self, store: &crate::Store, start: TermId, depth: usize) -> Arc<Vec<SimplePath>> {
        let key = (start, depth);
        if let Some(hit) = self.frontiers[shard_of(&key, self.frontiers.len())].lock().get(&key) {
            self.frontier_hits.fetch_add(1, Relaxed);
            return hit;
        }
        self.frontier_misses.fetch_add(1, Relaxed);
        let grown =
            Arc::new(grow_partials(store, start, depth, &self.path_cfg, &gqa_fault::Exec::none()));
        self.frontiers[shard_of(&key, self.frontiers.len())].lock().insert(key, grown.clone());
        grown
    }

    /// Hit/miss counts since construction.
    pub fn stats(&self) -> PathCacheStats {
        PathCacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            frontier_hits: self.frontier_hits.load(Relaxed),
            frontier_misses: self.frontier_misses.load(Relaxed),
        }
    }

    /// Total entries currently resident (pairs + frontiers).
    pub fn len(&self) -> usize {
        self.pairs.iter().map(|s| s.lock().len()).sum::<usize>()
            + self.frontiers.iter().map(|s| s.lock().len()).sum::<usize>()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn shard_of<K: Hash>(key: &K, shards: usize) -> usize {
    let mut h = rustc_hash::FxHasher::default();
    key.hash(&mut h);
    (h.finish() as usize) % shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::simple_paths;
    use crate::store::StoreBuilder;

    fn kennedy() -> crate::Store {
        let mut b = StoreBuilder::new();
        b.add_iri("Joseph_Sr", "hasChild", "Ted");
        b.add_iri("Joseph_Sr", "hasChild", "JFK");
        b.add_iri("JFK", "hasChild", "JFK_jr");
        b.add_iri("Ted", "hasGender", "male");
        b.add_iri("JFK_jr", "hasGender", "male");
        b.build()
    }

    #[test]
    fn cached_equals_uncached_and_counts_hits() {
        let s = kennedy();
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        for theta in 1..=4usize {
            let cfg = PathConfig::with_max_len(theta);
            let cache = PathCache::new(cfg.clone());
            let reference = simple_paths(&s, ted, jr, &cfg);
            assert_eq!(*cache.simple_paths(&s, ted, jr), reference, "θ = {theta}");
            assert_eq!(*cache.simple_paths(&s, ted, jr), reference, "θ = {theta} (cached)");
            let st = cache.stats();
            assert_eq!((st.hits, st.misses), (1, 1), "θ = {theta}: {st:?}");
        }
    }

    #[test]
    fn frontier_reuse_across_pairs_sharing_an_endpoint() {
        let s = kennedy();
        let cache = PathCache::new(PathConfig::with_max_len(4));
        let ted = s.expect_iri("Ted");
        // Two different pairs from the same source: the (Ted, 2) frontier
        // is grown once. With θ=4 both sides use depth 2, so the second
        // pair also reuses its own target frontier when it repeats.
        cache.simple_paths(&s, ted, s.expect_iri("JFK_jr"));
        cache.simple_paths(&s, ted, s.expect_iri("JFK"));
        let st = cache.stats();
        assert_eq!(st.misses, 2);
        assert!(st.frontier_hits >= 1, "{st:?}");
    }

    #[test]
    fn same_vertex_short_circuits_without_touching_the_cache() {
        let s = kennedy();
        let cache = PathCache::new(PathConfig::with_max_len(4));
        let ted = s.expect_iri("Ted");
        assert!(cache.simple_paths(&s, ted, ted).is_empty());
        assert_eq!(cache.stats(), PathCacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_bounded_with_lru_eviction() {
        let mut b = StoreBuilder::new();
        for i in 0..32 {
            b.add_iri(&format!("x{i}"), "p", "hub");
        }
        let s = b.build();
        let cache = PathCache::with_capacity(
            PathConfig::with_max_len(2),
            PathCacheConfig { pair_capacity: 4, frontier_capacity: 4, shards: 1 },
        );
        let hub = s.expect_iri("hub");
        for i in 0..32 {
            cache.simple_paths(&s, s.expect_iri(&format!("x{i}")), hub);
        }
        let pair_entries = cache.pairs.iter().map(|sh| sh.lock().len()).sum::<usize>();
        let frontier_entries = cache.frontiers.iter().map(|sh| sh.lock().len()).sum::<usize>();
        assert!(pair_entries <= 4, "pair shard overflowed: {pair_entries}");
        assert!(frontier_entries <= 4, "frontier shard overflowed: {frontier_entries}");
        // Eviction kept the most recent entry resident.
        cache.simple_paths(&s, s.expect_iri("x31"), hub);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let s = kennedy();
        let cache = PathCache::new(PathConfig::with_max_len(4));
        let ted = s.expect_iri("Ted");
        let jr = s.expect_iri("JFK_jr");
        let reference = simple_paths(&s, ted, jr, cache.config());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(*cache.simple_paths(&s, ted, jr), reference);
                    }
                });
            }
        });
        let st = cache.stats();
        assert_eq!(st.hits + st.misses, 32);
        assert!(st.misses >= 1);
    }
}
