//! Delta overlays: incremental triple upserts/deletes over an immutable
//! CSR base.
//!
//! A [`crate::Store`] is built once and indexed once; reloading it from
//! scratch is the only way the serving layer used to track a changing
//! graph. An [`Overlay`] is the incremental alternative: a small,
//! immutable set of **added** triples (kept sorted in all three
//! permutation orders) plus a sorted set of **deleted** base triples.
//! Every store access path merges the base index scan with the matching
//! add side and skips deleted base triples, so iteration order — the
//! load-bearing invariant callers' `.take(n)` prefixes depend on — is
//! bit-identical to a from-scratch rebuild of the merged triple set
//! (property-tested across all 8 triple-pattern shapes in
//! `tests/overlay_properties.rs`).
//!
//! New terms introduced by added triples live in the overlay's `extra`
//! vector with ids continuing past the base dictionary, so **every base
//! id stays valid across epochs** — linker indexes, paraphrase
//! dictionaries and cached bindings built against the base never dangle.
//! [`crate::Store::compact`] folds an overlay into a fresh CSR build with
//! the same id assignment, which is what makes the bit-identity testable
//! and lets a tenant compact in the background without invalidating
//! id-typed state.
//!
//! Applying a delta is O(overlay + delta log delta): the base is never
//! copied, re-sorted or re-indexed. The overlay grows with each
//! [`crate::Store::apply_delta`] until the owner folds it down (see
//! [`crate::Store::overlay_stats`] for the compaction signal).

use crate::ids::TermId;
use crate::term::Term;
use crate::triple::Triple;
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A batch of triple-level changes to apply on top of a store. Operations
/// are applied in order, so a delete followed by an add of the same triple
/// leaves it present.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// Changes in stream order.
    pub ops: Vec<DeltaOp>,
}

/// One upsert or delete.
#[derive(Clone, Debug)]
pub enum DeltaOp {
    /// Ensure the triple is present (a no-op if it already is).
    Upsert(Term, Term, Term),
    /// Ensure the triple is absent (a no-op if it never was).
    Delete(Term, Term, Term),
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Queue an upsert.
    pub fn upsert(&mut self, s: Term, p: Term, o: Term) {
        self.ops.push(DeltaOp::Upsert(s, p, o));
    }

    /// Queue a delete.
    pub fn delete(&mut self, s: Term, p: Term, o: Term) {
        self.ops.push(DeltaOp::Delete(s, p, o));
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What applying a delta actually changed (no-op upserts of already
/// present triples and deletes of absent triples are counted separately).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Triples that became present.
    pub added: usize,
    /// Triples that became absent.
    pub deleted: usize,
    /// Operations that changed nothing (upsert of a present triple,
    /// delete of an absent one).
    pub noops: usize,
    /// Terms newly interned into the overlay.
    pub new_terms: usize,
}

/// The immutable delta side of a store: added triples in all three
/// permutation orders, deleted base triples, and extra dictionary terms.
/// Shared by `Arc` between the epochs that include it.
#[derive(Debug)]
pub(crate) struct Overlay {
    /// Terms not in the base dictionary; `extra[i]` has id
    /// `base_terms + i`.
    pub(crate) extra: Vec<Term>,
    /// Reverse index over `extra` only (the base dictionary keeps its own).
    pub(crate) extra_index: FxHashMap<Term, TermId>,
    /// `base.dict.len()` at overlay creation — the id offset of `extra`.
    pub(crate) base_terms: usize,
    /// Added triples sorted by (s, p, o). Disjoint from the live base.
    pub(crate) adds_spo: Vec<Triple>,
    /// The same triples sorted by (o, s, p).
    pub(crate) adds_osp: Vec<Triple>,
    /// The same triples sorted by (p, o, s).
    pub(crate) adds_pos: Vec<Triple>,
    /// Deleted triples, all present in the base, sorted by (s, p, o).
    pub(crate) dels: Vec<Triple>,
}

/// Summary of an overlay's size, for admin display and as the compaction
/// signal (`adds + dels` vs. base triple count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Added triples carried by the overlay.
    pub adds: usize,
    /// Deleted base triples carried by the overlay.
    pub dels: usize,
    /// Extra dictionary terms carried by the overlay.
    pub extra_terms: usize,
}

impl Overlay {
    /// Estimated resident bytes (triples in three orders, dels, extra
    /// terms and their reverse index).
    pub(crate) fn bytes(&self) -> usize {
        let triple = std::mem::size_of::<Triple>();
        let strings: usize = self
            .extra
            .iter()
            .map(|t| match t {
                Term::Iri(s) => s.len(),
                Term::Literal { lexical, datatype } => {
                    lexical.len() + datatype.as_ref().map_or(0, |d| d.len())
                }
                Term::Blank(b) => b.len(),
            })
            .sum();
        (self.adds_spo.len() * 3 + self.dels.len()) * triple
            + strings
            + self.extra.len() * (std::mem::size_of::<Term>() * 2 + std::mem::size_of::<TermId>())
    }

    pub(crate) fn stats(&self) -> OverlayStats {
        OverlayStats {
            adds: self.adds_spo.len(),
            dels: self.dels.len(),
            extra_terms: self.extra.len(),
        }
    }
}

/// Permutation order of a merged scan. The key function must match the
/// order the base index yields triples in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Order {
    /// (s, p, o) — the triple vector / subject scans.
    Spo,
    /// (o, s, p) — in-edge scans.
    Osp,
    /// (p, o, s) — predicate scans.
    Pos,
}

impl Order {
    #[inline]
    fn key(self, t: Triple) -> (u32, u32, u32) {
        match self {
            Order::Spo => (t.s.0, t.p.0, t.o.0),
            Order::Osp => (t.o.0, t.s.0, t.p.0),
            Order::Pos => (t.p.0, t.o.0, t.s.0),
        }
    }
}

/// Merge a base index scan with an overlay add-slice in a shared
/// permutation order, skipping deleted base triples. The base and add
/// sides are disjoint by construction ([`crate::Store::apply_delta`]
/// drops upserts of live base triples), so ties cannot occur.
#[derive(Clone, Debug)]
pub(crate) struct MergeScan<'a, B: Iterator<Item = Triple>> {
    base: std::iter::Peekable<B>,
    adds: std::iter::Peekable<std::iter::Copied<std::slice::Iter<'a, Triple>>>,
    /// Deleted triples sorted by (s, p, o) — membership is order-agnostic.
    dels: &'a [Triple],
    order: Order,
}

impl<'a, B: Iterator<Item = Triple>> MergeScan<'a, B> {
    pub(crate) fn new(base: B, adds: &'a [Triple], dels: &'a [Triple], order: Order) -> Self {
        MergeScan { base: base.peekable(), adds: adds.iter().copied().peekable(), dels, order }
    }

    #[inline]
    fn deleted(&self, t: Triple) -> bool {
        !self.dels.is_empty() && self.dels.binary_search(&t).is_ok()
    }
}

impl<B: Iterator<Item = Triple>> Iterator for MergeScan<'_, B> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        loop {
            let take_base = match (self.base.peek(), self.adds.peek()) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(&b), Some(&a)) => self.order.key(b) < self.order.key(a),
            };
            if take_base {
                let t = self.base.next().expect("peeked");
                if !self.deleted(t) {
                    return Some(t);
                }
            } else {
                return self.adds.next();
            }
        }
    }
}

/// Sub-slice of `sorted` (in `order`) whose first key component equals
/// `k0`.
pub(crate) fn range1(sorted: &[Triple], order: Order, k0: u32) -> &[Triple] {
    let lo = sorted.partition_point(|t| order.key(*t).0 < k0);
    let hi = sorted.partition_point(|t| order.key(*t).0 <= k0);
    &sorted[lo..hi]
}

/// Sub-slice of `sorted` (in `order`) whose first two key components equal
/// `(k0, k1)`.
pub(crate) fn range2(sorted: &[Triple], order: Order, k0: u32, k1: u32) -> &[Triple] {
    let sub = range1(sorted, order, k0);
    let lo = sub.partition_point(|t| order.key(*t).1 < k1);
    let hi = sub.partition_point(|t| order.key(*t).1 <= k1);
    &sub[lo..hi]
}

/// Outcome of resolving one delta term against base + overlay state.
enum Resolved {
    /// The term already has an id.
    Known(TermId),
    /// The term is nowhere; a delete of it cannot match anything.
    Absent,
}

/// Mutable working state while applying one delta; frozen into an
/// [`Overlay`] at the end.
pub(crate) struct DeltaApply<'s> {
    base_dict: &'s crate::dict::Dict,
    base_contains: Box<dyn Fn(Triple) -> bool + 's>,
    extra: Vec<Term>,
    extra_index: FxHashMap<Term, TermId>,
    adds: BTreeSet<Triple>,
    dels: BTreeSet<Triple>,
    stats: DeltaStats,
}

impl<'s> DeltaApply<'s> {
    /// Start from the current overlay contents (cloned — overlays are
    /// small) on top of `base_dict` / `base_contains`.
    pub(crate) fn new(
        base_dict: &'s crate::dict::Dict,
        base_contains: Box<dyn Fn(Triple) -> bool + 's>,
        current: Option<&Arc<Overlay>>,
    ) -> Self {
        let (extra, extra_index, adds, dels) = match current {
            Some(ov) => (
                ov.extra.clone(),
                ov.extra_index.clone(),
                ov.adds_spo.iter().copied().collect(),
                ov.dels.iter().copied().collect(),
            ),
            None => (Vec::new(), FxHashMap::default(), BTreeSet::new(), BTreeSet::new()),
        };
        DeltaApply {
            base_dict,
            base_contains,
            extra,
            extra_index,
            adds,
            dels,
            stats: DeltaStats::default(),
        }
    }

    /// Id of `term` if it exists anywhere (base dictionary or overlay
    /// extras), without interning.
    fn lookup(&self, term: &Term) -> Resolved {
        if let Some(id) = self.base_dict.lookup(term) {
            return Resolved::Known(id);
        }
        match self.extra_index.get(term) {
            Some(&id) => Resolved::Known(id),
            None => Resolved::Absent,
        }
    }

    /// Id of `term`, interning into the overlay extras when new.
    fn intern(&mut self, term: Term) -> TermId {
        match self.lookup(&term) {
            Resolved::Known(id) => id,
            Resolved::Absent => {
                let id = TermId::from_index(self.base_dict.len() + self.extra.len());
                self.extra.push(term.clone());
                self.extra_index.insert(term, id);
                self.stats.new_terms += 1;
                id
            }
        }
    }

    /// Apply one operation, in stream order.
    pub(crate) fn apply(&mut self, op: DeltaOp) {
        match op {
            DeltaOp::Upsert(s, p, o) => {
                let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
                if self.dels.remove(&t) {
                    // Un-delete: the base copy is live again.
                    self.stats.added += 1;
                } else if (self.base_contains)(t) || !self.adds.insert(t) {
                    self.stats.noops += 1;
                } else {
                    self.stats.added += 1;
                }
            }
            DeltaOp::Delete(s, p, o) => {
                // A delete never interns: unknown terms mean the triple
                // cannot exist.
                let (s, p, o) = match (self.lookup(&s), self.lookup(&p), self.lookup(&o)) {
                    (Resolved::Known(s), Resolved::Known(p), Resolved::Known(o)) => (s, p, o),
                    _ => {
                        self.stats.noops += 1;
                        return;
                    }
                };
                let t = Triple::new(s, p, o);
                if self.adds.remove(&t) || ((self.base_contains)(t) && self.dels.insert(t)) {
                    self.stats.deleted += 1;
                } else {
                    self.stats.noops += 1;
                }
            }
        }
    }

    /// Freeze into an immutable overlay (or `None` when nothing differs
    /// from the base anymore).
    pub(crate) fn finish(self) -> (Option<Overlay>, DeltaStats) {
        let stats = self.stats;
        if self.adds.is_empty() && self.dels.is_empty() && self.extra.is_empty() {
            return (None, stats);
        }
        let adds_spo: Vec<Triple> = self.adds.into_iter().collect();
        let mut adds_osp = adds_spo.clone();
        adds_osp.sort_unstable_by_key(|t| Order::Osp.key(*t));
        let mut adds_pos = adds_spo.clone();
        adds_pos.sort_unstable_by_key(|t| Order::Pos.key(*t));
        let overlay = Overlay {
            extra: self.extra,
            extra_index: self.extra_index,
            base_terms: self.base_dict.len(),
            adds_spo,
            adds_osp,
            adds_pos,
            dels: self.dels.into_iter().collect(),
        };
        (Some(overlay), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn merge_scan_interleaves_and_skips_deleted() {
        let base = vec![t(1, 1, 1), t(1, 2, 1), t(3, 1, 1)];
        let adds = vec![t(1, 1, 2), t(2, 1, 1)];
        let dels = vec![t(1, 2, 1)];
        let merged: Vec<Triple> =
            MergeScan::new(base.into_iter(), &adds, &dels, Order::Spo).collect();
        assert_eq!(merged, vec![t(1, 1, 1), t(1, 1, 2), t(2, 1, 1), t(3, 1, 1)]);
    }

    #[test]
    fn merge_scan_empty_sides() {
        let base = vec![t(1, 1, 1)];
        let merged: Vec<Triple> =
            MergeScan::new(base.clone().into_iter(), &[], &[], Order::Spo).collect();
        assert_eq!(merged, base);
        let merged: Vec<Triple> =
            MergeScan::new(std::iter::empty(), &base, &[], Order::Spo).collect();
        assert_eq!(merged, base);
        assert_eq!(MergeScan::new(std::iter::empty(), &[], &[], Order::Pos).count(), 0);
    }

    #[test]
    fn range_helpers_cut_by_leading_keys() {
        // Sorted in OSP order: key = (o, s, p).
        let mut v = vec![t(1, 1, 1), t(2, 1, 1), t(1, 2, 2), t(3, 9, 2), t(1, 1, 3)];
        v.sort_unstable_by_key(|t| Order::Osp.key(*t));
        assert_eq!(range1(&v, Order::Osp, 2), &[t(1, 2, 2), t(3, 9, 2)]);
        assert_eq!(range2(&v, Order::Osp, 2, 3), &[t(3, 9, 2)]);
        assert!(range1(&v, Order::Osp, 9).is_empty());
    }
}
