//! Versioned, checksummed binary snapshots of a [`Store`].
//!
//! A snapshot carries every section of a store — the dictionary (terms and
//! its reverse hash index), the (s, p, o)-sorted triple vector, and all CSR
//! adjacency sections — so loading is one pass of bounds-checked memcpy-style
//! decodes with **no re-hashing and no index rebuild**. Layout of version 1:
//!
//! ```text
//! bytes 0..8    magic  b"GQASNP01"
//! u32 LE        format version (1)
//! u64 LE        term count
//! u64 LE        triple count
//! terms         tag u8 (0 iri | 1 literal | 2 typed literal | 3 blank),
//!               then each string as varint length + UTF-8 bytes
//! triples       delta stream (see below), ascending (s, p, o)
//! dict index    u64 slot count, then slot hashes (u64 LE each), then
//!               slot ids (u32 LE each; 0xffff_ffff marks an empty slot)
//! csr           subject offsets ((terms+1) × u32 LE)
//!               in-edge offsets ((terms+1) × u32 LE)
//!               in-edge postings (u64 byte count + delta-varint bytes)
//!               predicate ids (u64 count + count × u32 LE)
//!               predicate block directory ((count+1) × u32 LE)
//!               block head objects (u64 count + count × u32 LE)
//!               block byte offsets ((count+1) × u32 LE)
//!               predicate postings (u64 byte count + delta-varint bytes)
//! u64 LE        FNV-1a 64 checksum of every preceding byte, folded in
//!               8-byte little-endian words (trailing bytes one at a time)
//! ```
//!
//! Triple deltas relative to the previous triple (`(0, 0, 0)` before the
//! first): `Δs` varint; if `Δs > 0` then absolute `p` and `o`; else `Δp`
//! varint; if `Δp > 0` then absolute `o`; else `Δo` varint. Sorted order
//! makes every delta non-negative and small.
//!
//! Reading is hardened: the checksum is verified before parsing, every read
//! is bounds-checked, decoded ids must be in-dictionary and triples strictly
//! ascending, and the dictionary index and CSR sections are structurally
//! validated (offset monotonicity, posting-stream decode, probe-table
//! invariants) before a single access path may touch them. Corrupted or
//! truncated bytes yield [`SnapshotError`], never a panic.

use crate::csr::{CsrIndexes, CsrSections};
use crate::dict::Dict;
use crate::ids::TermId;
use crate::store::Store;
use crate::term::Term;
use crate::triple::Triple;
use crate::varint;

/// Magic bytes opening every snapshot file (`GQASNP` + 2-digit format era).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GQASNP01";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;
const CHECKSUM_LEN: usize = 8;

pub(crate) const TAG_IRI: u8 = 0;
pub(crate) const TAG_LITERAL: u8 = 1;
pub(crate) const TAG_TYPED_LITERAL: u8 = 2;
pub(crate) const TAG_BLANK: u8 = 3;

/// A snapshot failed to load: wrong magic, version, checksum, or malformed
/// content. The message says which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError(msg.into()))
}

/// Does `bytes` begin with the snapshot magic? Used by loaders to pick
/// between the binary and N-Triples paths.
pub fn is_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= SNAPSHOT_MAGIC.len() && bytes[..SNAPSHOT_MAGIC.len()] == SNAPSHOT_MAGIC
}

/// Serialize `store` into snapshot bytes (version [`SNAPSHOT_VERSION`]).
pub fn write_snapshot(store: &Store) -> Vec<u8> {
    // A delta overlay has no serialized form: fold it into a fresh base
    // first so the snapshot round-trips to an identical store.
    if store.has_overlay() {
        return write_snapshot(&store.compact());
    }
    let dict = store.dict();
    let triples = store.base_triples();
    // Rough pre-size: tags + short strings, deltas, and the index sections
    // (two offset arrays plus both posting streams dominate).
    let mut out = Vec::with_capacity(HEADER_LEN + dict.len() * 32 + triples.len() * 16);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
    out.extend_from_slice(&(triples.len() as u64).to_le_bytes());

    let write_str = |out: &mut Vec<u8>, s: &str| {
        varint::write_u64(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    };
    for (_, term) in dict.iter() {
        match term {
            Term::Iri(s) => {
                out.push(TAG_IRI);
                write_str(&mut out, s);
            }
            Term::Literal { lexical, datatype: None } => {
                out.push(TAG_LITERAL);
                write_str(&mut out, lexical);
            }
            Term::Literal { lexical, datatype: Some(dt) } => {
                out.push(TAG_TYPED_LITERAL);
                write_str(&mut out, lexical);
                write_str(&mut out, dt);
            }
            Term::Blank(b) => {
                out.push(TAG_BLANK);
                write_str(&mut out, b);
            }
        }
    }

    let mut prev = Triple::new(TermId(0), TermId(0), TermId(0));
    for &t in triples {
        let ds = t.s.0 - prev.s.0;
        varint::write_u32(&mut out, ds);
        if ds > 0 {
            varint::write_u32(&mut out, t.p.0);
            varint::write_u32(&mut out, t.o.0);
        } else {
            let dp = t.p.0 - prev.p.0;
            varint::write_u32(&mut out, dp);
            if dp > 0 {
                varint::write_u32(&mut out, t.o.0);
            } else {
                varint::write_u32(&mut out, t.o.0 - prev.o.0);
            }
        }
        prev = t;
    }

    let write_u32s = |out: &mut Vec<u8>, v: &[u32]| {
        for &x in v {
            out.extend_from_slice(&x.to_le_bytes());
        }
    };
    let (hashes, ids) = dict.index_parts();
    out.extend_from_slice(&(hashes.len() as u64).to_le_bytes());
    for &h in hashes {
        out.extend_from_slice(&h.to_le_bytes());
    }
    write_u32s(&mut out, ids);

    let csr = store.csr().sections();
    write_u32s(&mut out, csr.spo_offsets);
    write_u32s(&mut out, csr.in_offsets);
    out.extend_from_slice(&(csr.in_data.len() as u64).to_le_bytes());
    out.extend_from_slice(csr.in_data);
    out.extend_from_slice(&(csr.pred_ids.len() as u64).to_le_bytes());
    for &p in csr.pred_ids {
        out.extend_from_slice(&p.0.to_le_bytes());
    }
    write_u32s(&mut out, csr.pred_blocks);
    out.extend_from_slice(&(csr.block_first_o.len() as u64).to_le_bytes());
    write_u32s(&mut out, csr.block_first_o);
    write_u32s(&mut out, csr.block_bytes);
    out.extend_from_slice(&(csr.pred_data.len() as u64).to_le_bytes());
    out.extend_from_slice(csr.pred_data);

    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Write `store` as a snapshot file at `path`, crash-safely: the bytes go
/// to a temporary sibling in the same directory, are fsynced, and are then
/// atomically renamed over `path` (the directory is fsynced too, so the
/// rename itself is durable). A crash at any point leaves either the old
/// file or the new one — never a truncated hybrid.
pub fn write_snapshot_file(store: &Store, path: &std::path::Path) -> std::io::Result<()> {
    write_file_atomic(path, &write_snapshot(store))
}

/// Atomically replace `path` with `bytes` via tmp + fsync + rename +
/// directory fsync. Shared by snapshot writing, WAL rotation, and any
/// other small durable file that must never be observed half-written
/// (e.g. the registry manifest).
pub fn write_file_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp.{}", std::process::id())),
        None => std::path::PathBuf::from(format!(".{file_name}.tmp.{}", std::process::id())),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable: fsync the containing directory.
        // Directories cannot be opened for write, so a read open suffices
        // for fsync on unix; on platforms where this fails the rename is
        // still atomic, just not yet journaled — ignore those errors.
        if let Some(d) = dir {
            if let Ok(dh) = std::fs::File::open(d) {
                let _ = dh.sync_all();
            }
        } else if let Ok(dh) = std::fs::File::open(".") {
            let _ = dh.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Parse snapshot bytes back into a [`Store`] in one pass — the dictionary
/// index and CSR sections are adopted from the file, not rebuilt.
///
/// Validates magic, version, checksum, UTF-8, id ranges, strict (s, p, o)
/// ascent, and the structural invariants of every index section. Any
/// corruption is an `Err`, never a panic.
pub fn read_snapshot(bytes: &[u8]) -> Result<Store, SnapshotError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return err(format!("file too short ({} bytes)", bytes.len()));
    }
    if !is_snapshot(bytes) {
        return err("bad magic (not a snapshot file)");
    }
    let body_len = bytes.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 checksum bytes"));
    let actual = fnv1a64(&bytes[..body_len]);
    if stored != actual {
        return err(format!("checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"));
    }

    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 version bytes"));
    if version != SNAPSHOT_VERSION {
        return err(format!("unsupported version {version} (supported: {SNAPSHOT_VERSION})"));
    }
    let term_count = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let triple_count = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    // Every term costs at least 2 bytes, every triple at least 3: reject
    // counts the remaining bytes cannot possibly hold before allocating.
    let body = &bytes[..body_len];
    let remaining = (body_len - HEADER_LEN) as u64;
    if term_count > remaining / 2 || triple_count > remaining.min(u32::MAX as u64) {
        return err(format!("implausible counts: {term_count} terms, {triple_count} triples"));
    }
    if term_count > u32::MAX as u64 {
        return err("more than u32::MAX terms");
    }

    let mut pos = HEADER_LEN;
    let read_str = |pos: &mut usize| -> Result<Box<str>, SnapshotError> {
        let len = match varint::read_u64(body, pos) {
            Some(l) => l,
            None => return err("truncated string length"),
        };
        let end = match (*pos as u64).checked_add(len) {
            Some(e) if e <= body.len() as u64 => e as usize,
            _ => return err("string runs past end of file"),
        };
        let s = match std::str::from_utf8(&body[*pos..end]) {
            Ok(s) => s,
            Err(_) => return err("invalid UTF-8 in term"),
        };
        *pos = end;
        Ok(s.into())
    };
    let mut terms = Vec::with_capacity(term_count as usize);
    for i in 0..term_count {
        let tag = match body.get(pos) {
            Some(&t) => t,
            None => return err(format!("truncated at term {i} of {term_count}")),
        };
        pos += 1;
        let term = match tag {
            TAG_IRI => Term::Iri(read_str(&mut pos)?),
            TAG_LITERAL => Term::Literal { lexical: read_str(&mut pos)?, datatype: None },
            TAG_TYPED_LITERAL => {
                let lexical = read_str(&mut pos)?;
                let datatype = read_str(&mut pos)?;
                Term::Literal { lexical, datatype: Some(datatype) }
            }
            TAG_BLANK => Term::Blank(read_str(&mut pos)?),
            other => return err(format!("unknown term tag {other} at term {i}")),
        };
        terms.push(term);
    }

    let mut triples = Vec::with_capacity(triple_count as usize);
    let mut prev = Triple::new(TermId(0), TermId(0), TermId(0));
    for i in 0..triple_count {
        let mut next = |what: &str| match varint::read_u32(body, &mut pos) {
            Some(v) => Ok(v),
            None => err(format!("truncated {what} at triple {i} of {triple_count}")),
        };
        let ds = next("subject delta")?;
        let overflow = || SnapshotError(format!("id overflow at triple {i}"));
        let (s, p, o) = if ds > 0 {
            let s = prev.s.0.checked_add(ds).ok_or_else(overflow)?;
            (s, next("predicate")?, next("object")?)
        } else {
            let dp = next("predicate delta")?;
            if dp > 0 {
                let p = prev.p.0.checked_add(dp).ok_or_else(overflow)?;
                (prev.s.0, p, next("object")?)
            } else {
                let dobj = next("object delta")?;
                let o = prev.o.0.checked_add(dobj).ok_or_else(overflow)?;
                (prev.s.0, prev.p.0, o)
            }
        };
        let t = Triple::new(TermId(s), TermId(p), TermId(o));
        if i > 0 && t <= prev {
            return err(format!("triples not strictly ascending at triple {i}"));
        }
        let limit = term_count as u32;
        if s >= limit || p >= limit || o >= limit {
            return err(format!("triple {i} references id outside dictionary of {term_count}"));
        }
        triples.push(t);
        prev = t;
    }

    // Fixed-width index sections. Every read helper bounds-checks against
    // the body before allocating, so a lying length field errs cleanly.
    let read_u64_le = |pos: &mut usize, what: &str| -> Result<u64, SnapshotError> {
        match body.get(*pos..*pos + 8) {
            Some(b) => {
                *pos += 8;
                Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
            None => err(format!("truncated {what}")),
        }
    };
    let read_u64s = |pos: &mut usize, n: u64, what: &str| -> Result<Vec<u64>, SnapshotError> {
        match n.checked_mul(8).and_then(|l| (*pos as u64).checked_add(l)) {
            Some(end) if end <= body.len() as u64 => {
                let v = body[*pos..end as usize]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect();
                *pos = end as usize;
                Ok(v)
            }
            _ => err(format!("truncated {what}")),
        }
    };
    let read_u32s = |pos: &mut usize, n: u64, what: &str| -> Result<Vec<u32>, SnapshotError> {
        match n.checked_mul(4).and_then(|l| (*pos as u64).checked_add(l)) {
            Some(end) if end <= body.len() as u64 => {
                let v = body[*pos..end as usize]
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect();
                *pos = end as usize;
                Ok(v)
            }
            _ => err(format!("truncated {what}")),
        }
    };
    let read_bytes = |pos: &mut usize, n: u64, what: &str| -> Result<Box<[u8]>, SnapshotError> {
        match (*pos as u64).checked_add(n) {
            Some(end) if end <= body.len() as u64 => {
                let v: Box<[u8]> = body[*pos..end as usize].into();
                *pos = end as usize;
                Ok(v)
            }
            _ => err(format!("truncated {what}")),
        }
    };

    let slot_count = read_u64_le(&mut pos, "dictionary index size")?;
    let hashes = read_u64s(&mut pos, slot_count, "dictionary hash slots")?;
    let ids = read_u32s(&mut pos, slot_count, "dictionary id slots")?;

    let spo_offsets = read_u32s(&mut pos, term_count + 1, "subject offsets")?.into_boxed_slice();
    let in_offsets = read_u32s(&mut pos, term_count + 1, "in-edge offsets")?.into_boxed_slice();
    let in_len = read_u64_le(&mut pos, "in-edge posting size")?;
    let in_data = read_bytes(&mut pos, in_len, "in-edge postings")?;
    let pred_count = read_u64_le(&mut pos, "predicate count")?;
    let pred_ids: Box<[TermId]> =
        read_u32s(&mut pos, pred_count, "predicate ids")?.into_iter().map(TermId).collect();
    let pred_blocks = read_u32s(&mut pos, pred_count + 1, "predicate blocks")?.into_boxed_slice();
    let n_blocks = read_u64_le(&mut pos, "posting block count")?;
    let block_first_o = read_u32s(&mut pos, n_blocks, "block head objects")?.into_boxed_slice();
    let block_bytes = read_u32s(&mut pos, n_blocks + 1, "block byte offsets")?.into_boxed_slice();
    let pred_len = read_u64_le(&mut pos, "predicate posting size")?;
    let pred_data = read_bytes(&mut pos, pred_len, "predicate postings")?;

    if pos != body.len() {
        return err(format!("{} trailing bytes after index sections", body.len() - pos));
    }

    let dict = Dict::from_indexed_parts(terms, hashes, ids)
        .map_err(|m| SnapshotError(format!("dictionary index: {m}")))?;
    let sections = CsrSections {
        spo_offsets,
        in_offsets,
        in_data,
        pred_ids,
        pred_blocks,
        block_first_o,
        block_bytes,
        pred_data,
    };
    let csr = CsrIndexes::from_sections(term_count as usize, triple_count as usize, sections)
        .map_err(|m| SnapshotError(format!("csr index: {m}")))?;
    Ok(Store::from_snapshot_parts(dict, triples, csr))
}

/// FNV-1a 64-bit folded over 8-byte little-endian words (trailing bytes one
/// at a time) — ~8x the throughput of the byte-at-a-time loop, which matters
/// now that snapshots carry every index section. Each step xors then
/// multiplies by an odd constant, both injective on u64, so any single
/// flipped bit still changes the digest. Detects the corruption and
/// truncation a snapshot can realistically suffer; this is not a
/// cryptographic signature.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte word"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;

    fn sample() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Berlin", "dbo:country", "dbr:Germany");
        b.add_iri("dbr:Berlin", "rdf:type", "dbo:City");
        b.add_obj("dbr:Berlin", "rdfs:label", Term::lit("Berlin"));
        b.add_obj("dbr:Berlin", "dbo:population", Term::int_lit(3_500_000));
        b.add(Term::Blank("b0".into()), Term::iri("ex:p"), Term::lit("x"));
        b.build()
    }

    fn stores_equal(a: &Store, b: &Store) -> bool {
        a.len() == b.len()
            && a.dict().len() == b.dict().len()
            && a.triples().eq(b.triples())
            && a.dict().iter().zip(b.dict().iter()).all(|((_, x), (_, y))| x == y)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        let bytes = write_snapshot(&s);
        assert!(is_snapshot(&bytes));
        let loaded = read_snapshot(&bytes).expect("roundtrip");
        assert!(stores_equal(&s, &loaded));
        // Access paths work on the rebuilt CSR.
        let berlin = loaded.expect_iri("dbr:Berlin");
        assert_eq!(loaded.out_edges(berlin).count(), 4);
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = StoreBuilder::new().build();
        let bytes = write_snapshot(&s);
        let loaded = read_snapshot(&bytes).expect("roundtrip");
        assert!(loaded.is_empty());
        assert_eq!(loaded.dict().len(), 0);
    }

    #[test]
    fn every_truncation_errs_cleanly() {
        let bytes = write_snapshot(&sample());
        for len in 0..bytes.len() {
            assert!(read_snapshot(&bytes[..len]).is_err(), "truncation at {len} must fail");
        }
    }

    #[test]
    fn every_single_byte_flip_errs() {
        let bytes = write_snapshot(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(read_snapshot(&bad).is_err(), "flip at byte {i} must fail");
        }
    }

    #[test]
    fn wrong_magic_and_version_named_in_error() {
        let bytes = write_snapshot(&sample());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(!is_snapshot(&wrong));
        // (checksum catches it first; a non-snapshot prefix of sufficient
        // length reports the magic)
        let garbage = vec![0u8; 64];
        let e = read_snapshot(&garbage).unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");
    }

    #[test]
    fn not_a_snapshot_for_ntriples_text() {
        let text = b"<a> <b> <c> .\n";
        assert!(!is_snapshot(text));
        assert!(read_snapshot(text).is_err());
    }

    #[test]
    fn write_snapshot_file_replaces_atomically_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("gqa-snapfile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.snap");
        // Pre-existing garbage at the target is replaced wholesale.
        std::fs::write(&path, b"junk that is not a snapshot").unwrap();
        let s = sample();
        write_snapshot_file(&s, &path).expect("atomic snapshot write");
        let loaded = read_snapshot(&std::fs::read(&path).unwrap()).expect("reload");
        assert!(stores_equal(&s, &loaded));
        // No temporary sibling survives a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
