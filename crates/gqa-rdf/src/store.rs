//! The triple store: an immutable, fully indexed base plus an optional
//! delta overlay.
//!
//! The **base** is built once via [`StoreBuilder`], then read
//! concurrently. The triple vector is sorted by **(s, p, o)**; every
//! other access path is served by the compact CSR indexes in
//! [`crate::csr`]:
//!
//! * subject scans are O(1) offset-array slices into the triple vector;
//! * object (incoming-edge) scans decode a delta-varint posting per object,
//!   reproducing the old **(o, s, p)** permutation order;
//! * predicate and predicate+object scans decode block-coded per-predicate
//!   postings in the old **(p, o, s)** order, with a block directory for
//!   seeking straight to one object's group.
//!
//! An optional **overlay** ([`crate::overlay`]) carries incrementally
//! upserted/deleted triples: every scan merges the base index with the
//! overlay's sorted add side and skips deleted base triples, so iteration
//! orders are identical to a from-scratch rebuild of the merged triple
//! set — callers that `.take(n)` from a scan see the same prefix either
//! way. [`Store::apply_delta`] publishes a new store value sharing the
//! base by `Arc` (no re-sort, no re-index); [`Store::compact`] folds the
//! overlay down into a fresh base with unchanged term ids.
//!
//! No hashing on the hot path.

use std::sync::Arc;

use crate::csr::{CsrBytes, CsrIndexes};
use crate::dict::Dict;
use crate::ids::TermId;
use crate::metrics::StoreMetrics;
use crate::overlay::{range1, range2, Delta, DeltaApply, DeltaStats, MergeScan, Order, Overlay};
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};

pub use crate::overlay::OverlayStats;

/// Accumulates terms and triples, then freezes into a [`Store`].
///
/// ```
/// use gqa_rdf::{StoreBuilder, Term};
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("dbr:Berlin", "dbo:country", "dbr:Germany");
/// b.add_obj("dbr:Berlin", "dbo:population", Term::int_lit(3_500_000));
/// let store = b.build();
///
/// let berlin = store.expect_iri("dbr:Berlin");
/// assert_eq!(store.out_edges(berlin).count(), 2);
/// ```
#[derive(Default, Debug)]
pub struct StoreBuilder {
    dict: Dict,
    triples: Vec<Triple>,
}

impl StoreBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the dictionary (for pre-interning).
    pub fn dict_mut(&mut self) -> &mut Dict {
        &mut self.dict
    }

    /// Intern three terms and record the triple.
    pub fn add(&mut self, s: Term, p: Term, o: Term) -> Triple {
        let t = Triple::new(self.dict.intern(s), self.dict.intern(p), self.dict.intern(o));
        self.triples.push(t);
        t
    }

    /// Record a triple of three IRIs given as text.
    pub fn add_iri(&mut self, s: &str, p: &str, o: &str) -> Triple {
        let t =
            Triple::new(self.dict.intern_iri(s), self.dict.intern_iri(p), self.dict.intern_iri(o));
        self.triples.push(t);
        t
    }

    /// Record a triple whose object is an arbitrary term (e.g. a literal).
    pub fn add_obj(&mut self, s: &str, p: &str, o: Term) -> Triple {
        let t = Triple::new(self.dict.intern_iri(s), self.dict.intern_iri(p), self.dict.intern(o));
        self.triples.push(t);
        t
    }

    /// Record an already-encoded triple (ids must come from this builder's
    /// dictionary).
    pub fn add_encoded(&mut self, t: Triple) {
        self.triples.push(t);
    }

    /// Pre-allocate capacity for `n` further triples (bulk generators).
    pub fn reserve(&mut self, n: usize) {
        self.triples.reserve(n);
    }

    /// Copy every triple of an existing store into this builder (terms are
    /// re-interned, so the source store may use a different dictionary).
    pub fn extend_from(&mut self, store: &Store) {
        for t in store.triples() {
            self.add(store.term(t.s).clone(), store.term(t.p).clone(), store.term(t.o).clone());
        }
    }

    /// Number of triples recorded so far (before dedup).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no triples were recorded.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Sort, deduplicate and index everything into an immutable [`Store`].
    pub fn build(self) -> Store {
        let StoreBuilder { dict, mut triples } = self;
        triples.sort_unstable();
        triples.dedup();
        Store::from_sorted_parts(dict, triples)
    }
}

/// The immutable, fully indexed base of a store — shared by `Arc` between
/// every epoch layered over it.
#[derive(Debug)]
struct Base {
    dict: Dict,
    /// Sorted by (s, p, o), deduplicated.
    triples: Vec<Triple>,
    /// Compact adjacency indexes (subject offsets, in-edge and predicate
    /// postings) over `triples`.
    csr: CsrIndexes,
}

impl Base {
    /// Does the **base** contain this exact triple (ignoring the overlay)?
    fn contains(&self, t: Triple) -> bool {
        self.triples[self.csr.out_range(t.s)].binary_search(&t).is_ok()
    }
}

/// An immutable, indexed triple store: a shared base plus an optional
/// delta overlay. Cloning is cheap (two `Arc` bumps). See the module docs.
#[derive(Debug, Clone)]
pub struct Store {
    base: Arc<Base>,
    overlay: Option<Arc<Overlay>>,
    /// Index-lookup counters, shared by all clones of this store.
    metrics: Arc<StoreMetrics>,
}

/// Estimated resident bytes of one store, broken down by section. Exposed
/// as `gqa_rdf_store_bytes{section=...}` gauges and in EXPLAIN output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSectionBytes {
    /// Dictionary: term strings (stored once, in the id→term vector) plus
    /// per-term struct overhead and the `(hash, id)` slots of the reverse
    /// index.
    pub dict: usize,
    /// The (s, p, o)-sorted triple vector (12 bytes per triple).
    pub triples: usize,
    /// The CSR adjacency indexes, by section.
    pub indexes: CsrBytes,
    /// The delta overlay (added triples in three orders, deletions, extra
    /// terms); 0 without an overlay.
    pub overlay: usize,
}

impl StoreSectionBytes {
    /// Total estimated resident bytes.
    pub fn total(&self) -> usize {
        self.dict + self.triples + self.indexes.total() + self.overlay
    }
}

const NO_TRIPLES: &[Triple] = &[];

impl Store {
    /// Index a sorted, deduplicated triple vector whose ids all come from
    /// `dict`. Callers (the builder and the snapshot loader) must uphold
    /// both invariants.
    pub(crate) fn from_sorted_parts(dict: Dict, triples: Vec<Triple>) -> Store {
        let csr = CsrIndexes::build(dict.len(), &triples);
        Store {
            base: Arc::new(Base { dict, triples, csr }),
            overlay: None,
            metrics: Arc::new(StoreMetrics::default()),
        }
    }

    /// Assemble a store from snapshot-loaded parts without rebuilding the
    /// CSR indexes. The snapshot loader has already validated `csr`
    /// structurally against `dict.len()` and `triples.len()`.
    pub(crate) fn from_snapshot_parts(dict: Dict, triples: Vec<Triple>, csr: CsrIndexes) -> Store {
        Store {
            base: Arc::new(Base { dict, triples, csr }),
            overlay: None,
            metrics: Arc::new(StoreMetrics::default()),
        }
    }

    /// The CSR adjacency indexes of the base (for snapshot serialization).
    pub(crate) fn csr(&self) -> &CsrIndexes {
        &self.base.csr
    }

    /// The base triple vector, sorted by (s, p, o), ignoring any overlay
    /// (for snapshot serialization, which compacts first).
    pub(crate) fn base_triples(&self) -> &[Triple] {
        &self.base.triples
    }

    /// The base term dictionary. Under an overlay this does **not** cover
    /// overlay-added terms — use [`Store::term`], [`Store::terms`],
    /// [`Store::lookup_term`] and [`Store::iri`] for the full id space.
    #[inline]
    pub fn dict(&self) -> &Dict {
        &self.base.dict
    }

    /// The overlay's added triples in the order matching `order`.
    #[inline]
    fn adds(&self, order: Order) -> &[Triple] {
        match &self.overlay {
            None => NO_TRIPLES,
            Some(ov) => match order {
                Order::Spo => &ov.adds_spo,
                Order::Osp => &ov.adds_osp,
                Order::Pos => &ov.adds_pos,
            },
        }
    }

    /// The overlay's deleted base triples, sorted by (s, p, o).
    #[inline]
    fn dels(&self) -> &[Triple] {
        self.overlay.as_ref().map_or(NO_TRIPLES, |ov| &ov.dels)
    }

    /// Whether this store carries a delta overlay over its base.
    pub fn has_overlay(&self) -> bool {
        self.overlay.is_some()
    }

    /// Size of the delta overlay, when one is present. The serving layer
    /// uses `adds + dels` relative to [`Store::len`] as its compaction
    /// signal.
    pub fn overlay_stats(&self) -> Option<OverlayStats> {
        self.overlay.as_ref().map(|ov| ov.stats())
    }

    /// Apply a batch of upserts/deletes, returning a new store that layers
    /// the merged overlay over the **same** base (shared by `Arc` — the
    /// base is never copied, re-sorted or re-indexed) plus what actually
    /// changed. The receiver is untouched; readers of it never observe the
    /// delta. Term ids are stable: every id valid in `self` resolves to
    /// the same term in the result.
    pub fn apply_delta(&self, delta: Delta) -> (Store, DeltaStats) {
        let base = &*self.base;
        let mut apply = DeltaApply::new(
            &base.dict,
            Box::new(move |t: Triple| base.contains(t)),
            self.overlay.as_ref(),
        );
        for op in delta.ops {
            apply.apply(op);
        }
        let (overlay, stats) = apply.finish();
        let store = Store {
            base: Arc::clone(&self.base),
            overlay: overlay.map(Arc::new),
            metrics: Arc::clone(&self.metrics),
        };
        (store, stats)
    }

    /// Fold the overlay into a fresh, fully indexed base (a no-op clone
    /// without one). Term ids are preserved: the new dictionary appends
    /// the overlay's extra terms in id order, so iteration of the result
    /// is bit-identical to iteration of `self`.
    pub fn compact(&self) -> Store {
        let Some(ov) = &self.overlay else { return self.clone() };
        let mut dict = self.base.dict.clone();
        for term in &ov.extra {
            dict.intern(term.clone());
        }
        let triples: Vec<Triple> = self.triples().collect();
        let mut compacted = Store::from_sorted_parts(dict, triples);
        compacted.metrics = Arc::clone(&self.metrics);
        compacted
    }

    /// Instrumentation counters for this store (shared across clones).
    /// Disabled by default; see [`StoreMetrics::enable`].
    #[inline]
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Resolve an id to its term (base or overlay).
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        if let Some(ov) = &self.overlay {
            if id.index() >= ov.base_terms {
                return &ov.extra[id.index() - ov.base_terms];
            }
        }
        self.base.dict.term(id)
    }

    /// Total number of interned terms (base dictionary plus overlay
    /// extras); term ids are `0..term_count()`.
    pub fn term_count(&self) -> usize {
        self.base.dict.len() + self.overlay.as_ref().map_or(0, |ov| ov.extra.len())
    }

    /// Iterate over every `(id, term)` pair in id order, overlay extras
    /// included. Consumers building derived indexes (literal/linker
    /// indexes) must use this instead of `dict().iter()`.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &Term)> {
        let base_len = self.base.dict.len();
        let extras = self.overlay.as_ref().map_or(&[][..], |ov| &ov.extra[..]);
        self.base.dict.iter().chain(
            extras.iter().enumerate().map(move |(i, t)| (TermId::from_index(base_len + i), t)),
        )
    }

    /// Look up the id of a term without interning (base or overlay).
    pub fn lookup_term(&self, term: &Term) -> Option<TermId> {
        self.base
            .dict
            .lookup(term)
            .or_else(|| self.overlay.as_ref().and_then(|ov| ov.extra_index.get(term).copied()))
    }

    /// Total number of (distinct) triples, overlay included.
    pub fn len(&self) -> usize {
        self.base.triples.len() + self.adds(Order::Spo).len() - self.dels().len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All triples in (s, p, o) order, overlay merged in.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        MergeScan::new(
            self.base.triples.iter().copied(),
            self.adds(Order::Spo),
            self.dels(),
            Order::Spo,
        )
    }

    /// Does the store contain this exact triple?
    pub fn contains(&self, t: Triple) -> bool {
        self.metrics.spo();
        if self.base.contains(t) {
            return self.dels().binary_search(&t).is_err();
        }
        self.adds(Order::Spo).binary_search(&t).is_ok()
    }

    /// All triples with subject `s`, in (s, p, o) order.
    pub fn out_edges(&self, s: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.spo();
        MergeScan::new(
            self.base.triples[self.base.csr.out_range(s)].iter().copied(),
            range1(self.adds(Order::Spo), Order::Spo, s.0),
            self.dels(),
            Order::Spo,
        )
    }

    /// All triples with subject `s` and predicate `p`.
    pub fn out_edges_with(&self, s: TermId, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.spo();
        let sub = &self.base.triples[self.base.csr.out_range(s)];
        let lo = sub.partition_point(|t| t.p < p);
        let hi = sub.partition_point(|t| t.p <= p);
        MergeScan::new(
            sub[lo..hi].iter().copied(),
            range2(self.adds(Order::Spo), Order::Spo, s.0, p.0),
            self.dels(),
            Order::Spo,
        )
    }

    /// All triples with object `o`, in (o, s, p) order.
    pub fn in_edges(&self, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.osp();
        MergeScan::new(
            self.base.csr.in_triples(o).map(move |i| self.base.triples[i as usize]),
            range1(self.adds(Order::Osp), Order::Osp, o.0),
            self.dels(),
            Order::Osp,
        )
    }

    /// All triples with object `o` and predicate `p`, in ascending subject
    /// order. Served from the per-predicate postings with a block seek —
    /// the cost is bounded by the match count, not by `degree(o)`.
    pub fn in_edges_with(&self, o: TermId, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.pos();
        MergeScan::new(
            self.base
                .csr
                .predicate_object_postings(p, o)
                .map(move |s| Triple::new(TermId(s), p, o)),
            range2(self.adds(Order::Pos), Order::Pos, p.0, o.0),
            self.dels(),
            Order::Pos,
        )
    }

    /// All triples with predicate `p`, in (p, o, s) order.
    pub fn with_predicate(&self, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.pos();
        MergeScan::new(
            self.base
                .csr
                .predicate_postings(p)
                .map(move |(o, s)| Triple::new(TermId(s), p, TermId(o))),
            range1(self.adds(Order::Pos), Order::Pos, p.0),
            self.dels(),
            Order::Pos,
        )
    }

    /// All triples with predicate `p` and object `o`, in ascending subject
    /// order.
    pub fn with_predicate_object(&self, p: TermId, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.pos();
        MergeScan::new(
            self.base
                .csr
                .predicate_object_postings(p, o)
                .map(move |s| Triple::new(TermId(s), p, o)),
            range2(self.adds(Order::Pos), Order::Pos, p.0, o.0),
            self.dels(),
            Order::Pos,
        )
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.out_edges_with(s, p).map(|t| t.o)
    }

    /// Subjects of `(?, p, o)`.
    pub fn subjects(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.with_predicate_object(p, o).map(|t| t.s)
    }

    /// Every triple satisfying `pat`, using the best available index.
    pub fn matching<'a>(&'a self, pat: TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(t) {
                    Box::new(std::iter::once(t))
                } else {
                    Box::new(std::iter::empty())
                }
            }
            (Some(s), Some(p), None) => Box::new(self.out_edges_with(s, p)),
            (Some(s), None, Some(o)) => Box::new(self.out_edges(s).filter(move |t| t.o == o)),
            (Some(s), None, None) => Box::new(self.out_edges(s)),
            (None, Some(p), Some(o)) => Box::new(self.with_predicate_object(p, o)),
            (None, Some(p), None) => Box::new(self.with_predicate(p)),
            (None, None, Some(o)) => Box::new(self.in_edges(o)),
            (None, None, None) => Box::new(self.triples()),
        }
    }

    /// Distinct predicate ids, in ascending order.
    pub fn predicates(&self) -> Vec<TermId> {
        let mut preds = self.base.csr.predicate_ids().to_vec();
        let Some(ov) = &self.overlay else { return preds };
        if !ov.dels.is_empty() {
            // A base predicate survives iff some base triple with it is
            // still live. Count deletions per predicate (the deleted set is
            // small) and compare with the base posting count.
            let mut del_by_p: rustc_hash::FxHashMap<TermId, usize> =
                rustc_hash::FxHashMap::default();
            for t in &ov.dels {
                *del_by_p.entry(t.p).or_default() += 1;
            }
            preds.retain(|&p| match del_by_p.get(&p) {
                Some(&deleted) => self.base.csr.predicate_postings(p).count() > deleted,
                None => true,
            });
        }
        for t in &ov.adds_pos {
            // adds_pos is sorted by (p, o, s): predicates appear grouped.
            if preds.last() != Some(&t.p) && !preds.contains(&t.p) {
                preds.push(t.p);
            }
        }
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Estimated resident bytes per section (dictionary, triple vector,
    /// CSR indexes, delta overlay).
    pub fn section_bytes(&self) -> StoreSectionBytes {
        let strings: usize = self
            .base
            .dict
            .iter()
            .map(|(_, t)| match t {
                Term::Iri(s) => s.len(),
                Term::Literal { lexical, datatype } => {
                    lexical.len() + datatype.as_ref().map_or(0, |d| d.len())
                }
                Term::Blank(b) => b.len(),
            })
            .sum();
        let n_terms = self.base.dict.len();
        // Strings are stored once (the id→term vector); the reverse index
        // holds only (hash, id) slots.
        let dict = strings + n_terms * std::mem::size_of::<Term>() + self.base.dict.index_bytes();
        StoreSectionBytes {
            dict,
            triples: self.base.triples.len() * std::mem::size_of::<Triple>(),
            indexes: self.base.csr.bytes(),
            overlay: self.overlay.as_ref().map_or(0, |ov| ov.bytes()),
        }
    }

    /// Distinct vertex ids: every id occurring as subject or object.
    pub fn vertices(&self) -> Vec<TermId> {
        let mut v: Vec<TermId> = Vec::with_capacity(self.len());
        for t in self.triples() {
            v.push(t.s);
            v.push(t.o);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Degree of a vertex counting both directions.
    pub fn degree(&self, v: TermId) -> usize {
        self.out_edges(v).count() + self.in_edges(v).count()
    }

    /// Convenience: id of an IRI if present (base or overlay).
    pub fn iri(&self, iri: &str) -> Option<TermId> {
        self.base.dict.lookup_iri(iri).or_else(|| {
            self.overlay.as_ref().and_then(|ov| ov.extra_index.get(&Term::iri(iri)).copied())
        })
    }

    /// Id of an IRI, or a typed [`UnknownIri`] error carrying the IRI text.
    /// This is the lookup request-handling code must use: a missing IRI
    /// becomes an error value the caller maps to a client-facing failure
    /// instead of a panic that would abort a worker thread.
    pub fn try_iri(&self, iri: &str) -> Result<TermId, UnknownIri> {
        self.iri(iri).ok_or_else(|| UnknownIri(iri.to_owned()))
    }

    /// Convenience: id of an IRI, panicking with the IRI text if absent.
    /// Intended for tests and curated-dataset code only — request-path code
    /// uses [`Store::try_iri`].
    pub fn expect_iri(&self, iri: &str) -> TermId {
        self.try_iri(iri).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// An IRI lookup failed: the text is not in the store's dictionary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownIri(pub String);

impl std::fmt::Display for UnknownIri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IRI not in store: {}", self.0)
    }
}

impl std::error::Error for UnknownIri {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Antonio_Banderas");
        b.add_obj("dbr:Antonio_Banderas", "rdfs:label", Term::lit("Antonio Banderas"));
        // duplicate on purpose: must be deduplicated
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.build()
    }

    #[test]
    fn dedup_on_build() {
        let s = sample();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn try_iri_returns_a_typed_error_not_a_panic() {
        let s = sample();
        assert_eq!(s.try_iri("dbr:Antonio_Banderas"), Ok(s.expect_iri("dbr:Antonio_Banderas")));
        let err = s.try_iri("dbr:No_Such_Entity").unwrap_err();
        assert_eq!(err, UnknownIri("dbr:No_Such_Entity".to_owned()));
        assert_eq!(err.to_string(), "IRI not in store: dbr:No_Such_Entity");
    }

    #[test]
    fn out_edges_are_sorted_and_complete() {
        let s = sample();
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let out: Vec<_> = s.out_edges(ab).collect();
        assert_eq!(out.len(), 2); // rdf:type + rdfs:label
        assert!(out.iter().all(|t| t.s == ab));
    }

    #[test]
    fn in_edges_cover_both_predicates() {
        let s = sample();
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let inc: Vec<_> = s.in_edges(ab).collect();
        assert_eq!(inc.len(), 2); // spouse + starring
        assert!(inc.iter().all(|t| t.o == ab));
    }

    #[test]
    fn contains_and_matching_fully_bound() {
        let s = sample();
        let t = Triple::new(
            s.expect_iri("dbr:Melanie_Griffith"),
            s.expect_iri("dbo:spouse"),
            s.expect_iri("dbr:Antonio_Banderas"),
        );
        assert!(s.contains(t));
        assert_eq!(
            s.matching(TriplePattern { s: Some(t.s), p: Some(t.p), o: Some(t.o) }).count(),
            1
        );
        let absent = Triple::new(t.s, t.p, t.s);
        assert!(!s.contains(absent));
    }

    #[test]
    fn predicate_scan() {
        let s = sample();
        let ty = s.expect_iri("rdf:type");
        let v: Vec<_> = s.with_predicate(ty).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].o, s.expect_iri("dbo:Actor"));
    }

    #[test]
    fn predicate_object_scan() {
        let s = sample();
        let ty = s.expect_iri("rdf:type");
        let actor = s.expect_iri("dbo:Actor");
        let subs: Vec<_> = s.subjects(ty, actor).collect();
        assert_eq!(subs, vec![s.expect_iri("dbr:Antonio_Banderas")]);
    }

    #[test]
    fn objects_scan() {
        let s = sample();
        let mg = s.expect_iri("dbr:Melanie_Griffith");
        let sp = s.expect_iri("dbo:spouse");
        let objs: Vec<_> = s.objects(mg, sp).collect();
        assert_eq!(objs, vec![s.expect_iri("dbr:Antonio_Banderas")]);
    }

    #[test]
    fn matching_uses_every_index_shape() {
        let s = sample();
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let total = s.len();
        assert_eq!(s.matching(TriplePattern::any()).count(), total);
        assert_eq!(s.matching(TriplePattern { s: Some(ab), ..Default::default() }).count(), 2);
        assert_eq!(s.matching(TriplePattern { o: Some(ab), ..Default::default() }).count(), 2);
        let label = s.expect_iri("rdfs:label");
        assert_eq!(s.matching(TriplePattern { p: Some(label), ..Default::default() }).count(), 1);
        assert_eq!(
            s.matching(TriplePattern {
                s: Some(ab),
                o: Some(s.expect_iri("dbo:Actor")),
                ..Default::default()
            })
            .count(),
            1
        );
    }

    #[test]
    fn vertices_and_degree() {
        let s = sample();
        let verts = s.vertices();
        // Subjects/objects only; the predicate IRIs are not vertices.
        assert!(verts.contains(&s.expect_iri("dbr:Melanie_Griffith")));
        assert!(!verts.contains(&s.expect_iri("dbo:spouse")));
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        assert_eq!(s.degree(ab), 4);
    }

    #[test]
    fn predicates_distinct_sorted() {
        let s = sample();
        let preds = s.predicates();
        assert_eq!(preds.len(), 4); // spouse, type, starring, label
        let mut sorted = preds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(preds, sorted);
    }

    #[test]
    fn extend_from_copies_all_triples() {
        let a = sample();
        let mut b = StoreBuilder::new();
        b.add_iri("extra:s", "extra:p", "extra:o");
        b.extend_from(&a);
        let merged = b.build();
        assert_eq!(merged.len(), a.len() + 1);
        for t in a.triples() {
            let s = merged.dict().lookup(a.term(t.s)).unwrap();
            let p = merged.dict().lookup(a.term(t.p)).unwrap();
            let o = merged.dict().lookup(a.term(t.o)).unwrap();
            assert!(merged.contains(Triple::new(s, p, o)));
        }
    }

    #[test]
    fn empty_store() {
        let s = StoreBuilder::new().build();
        assert!(s.is_empty());
        assert!(s.vertices().is_empty());
        assert!(s.predicates().is_empty());
        assert_eq!(s.matching(TriplePattern::any()).count(), 0);
    }

    // ---- delta overlay ----

    fn delta_upsert(ops: &[(&str, &str, &str)]) -> Delta {
        let mut d = Delta::new();
        for &(s, p, o) in ops {
            d.upsert(Term::iri(s), Term::iri(p), Term::iri(o));
        }
        d
    }

    #[test]
    fn apply_delta_adds_new_triples_and_terms() {
        let s = sample();
        let before = s.len();
        let (s2, stats) =
            s.apply_delta(delta_upsert(&[("dbr:New_Entity", "rdf:type", "dbo:Actor")]));
        assert_eq!(stats.added, 1);
        assert_eq!(stats.new_terms, 1);
        assert!(s2.has_overlay());
        assert_eq!(s2.len(), before + 1);
        // The original store is untouched.
        assert_eq!(s.len(), before);
        assert!(s.iri("dbr:New_Entity").is_none());
        // The new entity resolves through every term API.
        let id = s2.expect_iri("dbr:New_Entity");
        assert_eq!(s2.term(id), &Term::iri("dbr:New_Entity"));
        assert_eq!(s2.lookup_term(&Term::iri("dbr:New_Entity")), Some(id));
        assert!(s2.terms().any(|(tid, _)| tid == id));
        assert_eq!(s2.term_count(), s.term_count() + 1);
        // And the fact is visible through every scan shape.
        let ty = s2.expect_iri("rdf:type");
        let actor = s2.expect_iri("dbo:Actor");
        assert!(s2.contains(Triple::new(id, ty, actor)));
        assert_eq!(s2.out_edges(id).count(), 1);
        assert!(s2.subjects(ty, actor).any(|x| x == id));
    }

    #[test]
    fn apply_delta_upsert_of_present_triple_is_noop() {
        let s = sample();
        let (s2, stats) =
            s.apply_delta(delta_upsert(&[("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor")]));
        assert_eq!(stats.added, 0);
        assert_eq!(stats.noops, 1);
        assert!(!s2.has_overlay());
        assert_eq!(s2.len(), s.len());
    }

    #[test]
    fn apply_delta_delete_and_undelete() {
        let s = sample();
        let mut d = Delta::new();
        d.delete(
            Term::iri("dbr:Melanie_Griffith"),
            Term::iri("dbo:spouse"),
            Term::iri("dbr:Antonio_Banderas"),
        );
        let (s2, stats) = s.apply_delta(d);
        assert_eq!(stats.deleted, 1);
        assert_eq!(s2.len(), s.len() - 1);
        let mg = s2.expect_iri("dbr:Melanie_Griffith");
        assert_eq!(s2.out_edges(mg).count(), 0);
        let ab = s2.expect_iri("dbr:Antonio_Banderas");
        assert_eq!(s2.in_edges(ab).count(), 1); // starring only
                                                // dbo:spouse no longer has any live triple.
        let spouse = s2.expect_iri("dbo:spouse");
        assert!(!s2.predicates().contains(&spouse));
        assert!(s.predicates().contains(&spouse), "receiver untouched");
        // Upserting it back un-deletes (and drops the overlay entirely).
        let (s3, stats) = s2.apply_delta(delta_upsert(&[(
            "dbr:Melanie_Griffith",
            "dbo:spouse",
            "dbr:Antonio_Banderas",
        )]));
        assert_eq!(stats.added, 1);
        assert!(!s3.has_overlay());
        assert_eq!(s3.len(), s.len());
    }

    #[test]
    fn apply_delta_delete_of_unknown_terms_is_noop() {
        let s = sample();
        let mut d = Delta::new();
        d.delete(Term::iri("dbr:Nobody"), Term::iri("dbo:spouse"), Term::iri("dbr:Nobody_Else"));
        let (s2, stats) = s.apply_delta(d);
        assert_eq!(stats.noops, 1);
        assert_eq!(stats.new_terms, 0, "deletes never intern");
        assert!(!s2.has_overlay());
    }

    #[test]
    fn deltas_stack_and_compact_preserves_ids_and_iteration() {
        let s = sample();
        let (s2, _) = s.apply_delta(delta_upsert(&[
            ("dbr:A1", "dbo:spouse", "dbr:Antonio_Banderas"),
            ("dbr:A1", "rdf:type", "dbo:Actor"),
        ]));
        let mut d = Delta::new();
        d.delete(Term::iri("dbr:A1"), Term::iri("rdf:type"), Term::iri("dbo:Actor"));
        d.upsert(Term::iri("dbr:A2"), Term::iri("dbo:spouse"), Term::iri("dbr:A1"));
        let (s3, _) = s2.apply_delta(d);
        assert_eq!(s3.overlay_stats().unwrap().adds, 2);
        let compacted = s3.compact();
        assert!(!compacted.has_overlay());
        assert_eq!(compacted.len(), s3.len());
        // Same ids, same iteration order, every scan shape.
        assert_eq!(s3.triples().collect::<Vec<_>>(), compacted.triples().collect::<Vec<_>>());
        for iri in ["dbr:A1", "dbr:A2", "dbr:Antonio_Banderas"] {
            assert_eq!(s3.iri(iri), compacted.iri(iri), "{iri}");
        }
        let a1 = s3.expect_iri("dbr:A1");
        assert_eq!(s3.in_edges(a1).collect::<Vec<_>>(), compacted.in_edges(a1).collect::<Vec<_>>());
        assert_eq!(s3.predicates(), compacted.predicates());
        assert_eq!(s3.vertices(), compacted.vertices());
    }

    #[test]
    fn overlay_section_bytes_reported() {
        let s = sample();
        assert_eq!(s.section_bytes().overlay, 0);
        let (s2, _) = s.apply_delta(delta_upsert(&[("dbr:X", "dbo:spouse", "dbr:Y")]));
        assert!(s2.section_bytes().overlay > 0);
        assert!(s2.section_bytes().total() > s.section_bytes().total());
    }
}
