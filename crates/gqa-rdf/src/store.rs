//! The triple store: an immutable, fully indexed set of triples.
//!
//! Built once via [`StoreBuilder`], then read concurrently. The triple
//! vector is sorted by **(s, p, o)**; every other access path is served by
//! the compact CSR indexes in [`crate::csr`]:
//!
//! * subject scans are O(1) offset-array slices into the triple vector;
//! * object (incoming-edge) scans decode a delta-varint posting per object,
//!   reproducing the old **(o, s, p)** permutation order;
//! * predicate and predicate+object scans decode block-coded per-predicate
//!   postings in the old **(p, o, s)** order, with a block directory for
//!   seeking straight to one object's group.
//!
//! Iteration orders are identical to the former permutation-array layout —
//! callers that `.take(n)` from a scan see the same prefix. No hashing on
//! the hot path.

use std::sync::Arc;

use crate::csr::{CsrBytes, CsrIndexes};
use crate::dict::Dict;
use crate::ids::TermId;
use crate::metrics::StoreMetrics;
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};

/// Accumulates terms and triples, then freezes into a [`Store`].
///
/// ```
/// use gqa_rdf::{StoreBuilder, Term};
///
/// let mut b = StoreBuilder::new();
/// b.add_iri("dbr:Berlin", "dbo:country", "dbr:Germany");
/// b.add_obj("dbr:Berlin", "dbo:population", Term::int_lit(3_500_000));
/// let store = b.build();
///
/// let berlin = store.expect_iri("dbr:Berlin");
/// assert_eq!(store.out_edges(berlin).len(), 2);
/// ```
#[derive(Default, Debug)]
pub struct StoreBuilder {
    dict: Dict,
    triples: Vec<Triple>,
}

impl StoreBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to the dictionary (for pre-interning).
    pub fn dict_mut(&mut self) -> &mut Dict {
        &mut self.dict
    }

    /// Intern three terms and record the triple.
    pub fn add(&mut self, s: Term, p: Term, o: Term) -> Triple {
        let t = Triple::new(self.dict.intern(s), self.dict.intern(p), self.dict.intern(o));
        self.triples.push(t);
        t
    }

    /// Record a triple of three IRIs given as text.
    pub fn add_iri(&mut self, s: &str, p: &str, o: &str) -> Triple {
        let t =
            Triple::new(self.dict.intern_iri(s), self.dict.intern_iri(p), self.dict.intern_iri(o));
        self.triples.push(t);
        t
    }

    /// Record a triple whose object is an arbitrary term (e.g. a literal).
    pub fn add_obj(&mut self, s: &str, p: &str, o: Term) -> Triple {
        let t = Triple::new(self.dict.intern_iri(s), self.dict.intern_iri(p), self.dict.intern(o));
        self.triples.push(t);
        t
    }

    /// Record an already-encoded triple (ids must come from this builder's
    /// dictionary).
    pub fn add_encoded(&mut self, t: Triple) {
        self.triples.push(t);
    }

    /// Pre-allocate capacity for `n` further triples (bulk generators).
    pub fn reserve(&mut self, n: usize) {
        self.triples.reserve(n);
    }

    /// Copy every triple of an existing store into this builder (terms are
    /// re-interned, so the source store may use a different dictionary).
    pub fn extend_from(&mut self, store: &Store) {
        for t in store.triples() {
            self.add(store.term(t.s).clone(), store.term(t.p).clone(), store.term(t.o).clone());
        }
    }

    /// Number of triples recorded so far (before dedup).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no triples were recorded.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Sort, deduplicate and index everything into an immutable [`Store`].
    pub fn build(self) -> Store {
        let StoreBuilder { dict, mut triples } = self;
        triples.sort_unstable();
        triples.dedup();
        Store::from_sorted_parts(dict, triples)
    }
}

/// An immutable, indexed triple store. See the module docs.
#[derive(Debug, Clone)]
pub struct Store {
    dict: Dict,
    /// Sorted by (s, p, o), deduplicated.
    triples: Vec<Triple>,
    /// Compact adjacency indexes (subject offsets, in-edge and predicate
    /// postings) over `triples`.
    csr: CsrIndexes,
    /// Index-lookup counters, shared by all clones of this store.
    metrics: Arc<StoreMetrics>,
}

/// Estimated resident bytes of one store, broken down by section. Exposed
/// as `gqa_rdf_store_bytes{section=...}` gauges and in EXPLAIN output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSectionBytes {
    /// Dictionary: term strings (stored once, in the id→term vector) plus
    /// per-term struct overhead and the `(hash, id)` slots of the reverse
    /// index.
    pub dict: usize,
    /// The (s, p, o)-sorted triple vector (12 bytes per triple).
    pub triples: usize,
    /// The CSR adjacency indexes, by section.
    pub indexes: CsrBytes,
}

impl StoreSectionBytes {
    /// Total estimated resident bytes.
    pub fn total(&self) -> usize {
        self.dict + self.triples + self.indexes.total()
    }
}

impl Store {
    /// Index a sorted, deduplicated triple vector whose ids all come from
    /// `dict`. Callers (the builder and the snapshot loader) must uphold
    /// both invariants.
    pub(crate) fn from_sorted_parts(dict: Dict, triples: Vec<Triple>) -> Store {
        let csr = CsrIndexes::build(dict.len(), &triples);
        Store { dict, triples, csr, metrics: Arc::new(StoreMetrics::default()) }
    }

    /// Assemble a store from snapshot-loaded parts without rebuilding the
    /// CSR indexes. The snapshot loader has already validated `csr`
    /// structurally against `dict.len()` and `triples.len()`.
    pub(crate) fn from_snapshot_parts(dict: Dict, triples: Vec<Triple>, csr: CsrIndexes) -> Store {
        Store { dict, triples, csr, metrics: Arc::new(StoreMetrics::default()) }
    }

    /// The CSR adjacency indexes (for snapshot serialization).
    pub(crate) fn csr(&self) -> &CsrIndexes {
        &self.csr
    }

    /// The term dictionary.
    #[inline]
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Instrumentation counters for this store (shared across clones).
    /// Disabled by default; see [`StoreMetrics::enable`].
    #[inline]
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Resolve an id to its term.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Total number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All triples, sorted by (s, p, o).
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Does the store contain this exact triple?
    pub fn contains(&self, t: Triple) -> bool {
        self.metrics.spo();
        self.triples[self.csr.out_range(t.s)].binary_search(&t).is_ok()
    }

    /// All triples with subject `s`, as a contiguous slice (O(1) via the
    /// subject offset array).
    pub fn out_edges(&self, s: TermId) -> &[Triple] {
        self.metrics.spo();
        &self.triples[self.csr.out_range(s)]
    }

    /// All triples with subject `s` and predicate `p`.
    pub fn out_edges_with(&self, s: TermId, p: TermId) -> &[Triple] {
        self.metrics.spo();
        let sub = &self.triples[self.csr.out_range(s)];
        let lo = sub.partition_point(|t| t.p < p);
        let hi = sub.partition_point(|t| t.p <= p);
        &sub[lo..hi]
    }

    /// All triples with object `o`, in (o, s, p) order.
    pub fn in_edges(&self, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.osp();
        self.csr.in_triples(o).map(move |i| self.triples[i as usize])
    }

    /// All triples with object `o` and predicate `p`, in ascending subject
    /// order. Served from the per-predicate postings with a block seek —
    /// the cost is bounded by the match count, not by `degree(o)` as the
    /// old filter-the-object-posting path was.
    pub fn in_edges_with(&self, o: TermId, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.pos();
        self.csr.predicate_object_postings(p, o).map(move |s| Triple::new(TermId(s), p, o))
    }

    /// All triples with predicate `p`, in (p, o, s) order.
    pub fn with_predicate(&self, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.pos();
        self.csr.predicate_postings(p).map(move |(o, s)| Triple::new(TermId(s), p, TermId(o)))
    }

    /// All triples with predicate `p` and object `o`, in ascending subject
    /// order.
    pub fn with_predicate_object(&self, p: TermId, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.metrics.pos();
        self.csr.predicate_object_postings(p, o).map(move |s| Triple::new(TermId(s), p, o))
    }

    /// Objects of `(s, p, ?)`.
    pub fn objects(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.out_edges_with(s, p).iter().map(|t| t.o)
    }

    /// Subjects of `(?, p, o)`.
    pub fn subjects(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        self.with_predicate_object(p, o).map(|t| t.s)
    }

    /// Every triple satisfying `pat`, using the best available index.
    pub fn matching<'a>(&'a self, pat: TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        match (pat.s, pat.p, pat.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(t) {
                    Box::new(std::iter::once(t))
                } else {
                    Box::new(std::iter::empty())
                }
            }
            (Some(s), Some(p), None) => Box::new(self.out_edges_with(s, p).iter().copied()),
            (Some(s), None, Some(o)) => {
                Box::new(self.out_edges(s).iter().copied().filter(move |t| t.o == o))
            }
            (Some(s), None, None) => Box::new(self.out_edges(s).iter().copied()),
            (None, Some(p), Some(o)) => Box::new(self.with_predicate_object(p, o)),
            (None, Some(p), None) => Box::new(self.with_predicate(p)),
            (None, None, Some(o)) => Box::new(self.in_edges(o)),
            (None, None, None) => Box::new(self.triples.iter().copied()),
        }
    }

    /// Distinct predicate ids, in ascending order.
    pub fn predicates(&self) -> Vec<TermId> {
        self.csr.predicate_ids().to_vec()
    }

    /// Estimated resident bytes per section (dictionary, triple vector,
    /// CSR indexes).
    pub fn section_bytes(&self) -> StoreSectionBytes {
        let strings: usize = self
            .dict
            .iter()
            .map(|(_, t)| match t {
                Term::Iri(s) => s.len(),
                Term::Literal { lexical, datatype } => {
                    lexical.len() + datatype.as_ref().map_or(0, |d| d.len())
                }
                Term::Blank(b) => b.len(),
            })
            .sum();
        let n_terms = self.dict.len();
        // Strings are stored once (the id→term vector); the reverse index
        // holds only (hash, id) slots.
        let dict = strings + n_terms * std::mem::size_of::<Term>() + self.dict.index_bytes();
        StoreSectionBytes {
            dict,
            triples: self.triples.len() * std::mem::size_of::<Triple>(),
            indexes: self.csr.bytes(),
        }
    }

    /// Distinct vertex ids: every id occurring as subject or object.
    pub fn vertices(&self) -> Vec<TermId> {
        let mut v: Vec<TermId> = Vec::with_capacity(self.triples.len());
        for t in &self.triples {
            v.push(t.s);
            v.push(t.o);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Degree of a vertex counting both directions.
    pub fn degree(&self, v: TermId) -> usize {
        self.out_edges(v).len() + self.in_edges(v).count()
    }

    /// Convenience: id of an IRI if present.
    pub fn iri(&self, iri: &str) -> Option<TermId> {
        self.dict.lookup_iri(iri)
    }

    /// Id of an IRI, or a typed [`UnknownIri`] error carrying the IRI text.
    /// This is the lookup request-handling code must use: a missing IRI
    /// becomes an error value the caller maps to a client-facing failure
    /// instead of a panic that would abort a worker thread.
    pub fn try_iri(&self, iri: &str) -> Result<TermId, UnknownIri> {
        self.iri(iri).ok_or_else(|| UnknownIri(iri.to_owned()))
    }

    /// Convenience: id of an IRI, panicking with the IRI text if absent.
    /// Intended for tests and curated-dataset code only — request-path code
    /// uses [`Store::try_iri`].
    pub fn expect_iri(&self, iri: &str) -> TermId {
        self.try_iri(iri).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// An IRI lookup failed: the text is not in the store's dictionary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownIri(pub String);

impl std::fmt::Display for UnknownIri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IRI not in store: {}", self.0)
    }
}

impl std::error::Error for UnknownIri {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Store {
        let mut b = StoreBuilder::new();
        b.add_iri("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas");
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.add_iri("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Antonio_Banderas");
        b.add_obj("dbr:Antonio_Banderas", "rdfs:label", Term::lit("Antonio Banderas"));
        // duplicate on purpose: must be deduplicated
        b.add_iri("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor");
        b.build()
    }

    #[test]
    fn dedup_on_build() {
        let s = sample();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn try_iri_returns_a_typed_error_not_a_panic() {
        let s = sample();
        assert_eq!(s.try_iri("dbr:Antonio_Banderas"), Ok(s.expect_iri("dbr:Antonio_Banderas")));
        let err = s.try_iri("dbr:No_Such_Entity").unwrap_err();
        assert_eq!(err, UnknownIri("dbr:No_Such_Entity".to_owned()));
        assert_eq!(err.to_string(), "IRI not in store: dbr:No_Such_Entity");
    }

    #[test]
    fn out_edges_are_contiguous_and_complete() {
        let s = sample();
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let out = s.out_edges(ab);
        assert_eq!(out.len(), 2); // rdf:type + rdfs:label
        assert!(out.iter().all(|t| t.s == ab));
    }

    #[test]
    fn in_edges_cover_both_predicates() {
        let s = sample();
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let inc: Vec<_> = s.in_edges(ab).collect();
        assert_eq!(inc.len(), 2); // spouse + starring
        assert!(inc.iter().all(|t| t.o == ab));
    }

    #[test]
    fn contains_and_matching_fully_bound() {
        let s = sample();
        let t = Triple::new(
            s.expect_iri("dbr:Melanie_Griffith"),
            s.expect_iri("dbo:spouse"),
            s.expect_iri("dbr:Antonio_Banderas"),
        );
        assert!(s.contains(t));
        assert_eq!(
            s.matching(TriplePattern { s: Some(t.s), p: Some(t.p), o: Some(t.o) }).count(),
            1
        );
        let absent = Triple::new(t.s, t.p, t.s);
        assert!(!s.contains(absent));
    }

    #[test]
    fn predicate_scan() {
        let s = sample();
        let ty = s.expect_iri("rdf:type");
        let v: Vec<_> = s.with_predicate(ty).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].o, s.expect_iri("dbo:Actor"));
    }

    #[test]
    fn predicate_object_scan() {
        let s = sample();
        let ty = s.expect_iri("rdf:type");
        let actor = s.expect_iri("dbo:Actor");
        let subs: Vec<_> = s.subjects(ty, actor).collect();
        assert_eq!(subs, vec![s.expect_iri("dbr:Antonio_Banderas")]);
    }

    #[test]
    fn objects_scan() {
        let s = sample();
        let mg = s.expect_iri("dbr:Melanie_Griffith");
        let sp = s.expect_iri("dbo:spouse");
        let objs: Vec<_> = s.objects(mg, sp).collect();
        assert_eq!(objs, vec![s.expect_iri("dbr:Antonio_Banderas")]);
    }

    #[test]
    fn matching_uses_every_index_shape() {
        let s = sample();
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let total = s.len();
        assert_eq!(s.matching(TriplePattern::any()).count(), total);
        assert_eq!(s.matching(TriplePattern { s: Some(ab), ..Default::default() }).count(), 2);
        assert_eq!(s.matching(TriplePattern { o: Some(ab), ..Default::default() }).count(), 2);
        let label = s.expect_iri("rdfs:label");
        assert_eq!(s.matching(TriplePattern { p: Some(label), ..Default::default() }).count(), 1);
        assert_eq!(
            s.matching(TriplePattern {
                s: Some(ab),
                o: Some(s.expect_iri("dbo:Actor")),
                ..Default::default()
            })
            .count(),
            1
        );
    }

    #[test]
    fn vertices_and_degree() {
        let s = sample();
        let verts = s.vertices();
        // Subjects/objects only; the predicate IRIs are not vertices.
        assert!(verts.contains(&s.expect_iri("dbr:Melanie_Griffith")));
        assert!(!verts.contains(&s.expect_iri("dbo:spouse")));
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        assert_eq!(s.degree(ab), 4);
    }

    #[test]
    fn predicates_distinct_sorted() {
        let s = sample();
        let preds = s.predicates();
        assert_eq!(preds.len(), 4); // spouse, type, starring, label
        let mut sorted = preds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(preds, sorted);
    }

    #[test]
    fn extend_from_copies_all_triples() {
        let a = sample();
        let mut b = StoreBuilder::new();
        b.add_iri("extra:s", "extra:p", "extra:o");
        b.extend_from(&a);
        let merged = b.build();
        assert_eq!(merged.len(), a.len() + 1);
        for t in a.triples() {
            let s = merged.dict().lookup(a.term(t.s)).unwrap();
            let p = merged.dict().lookup(a.term(t.p)).unwrap();
            let o = merged.dict().lookup(a.term(t.o)).unwrap();
            assert!(merged.contains(Triple::new(s, p, o)));
        }
    }

    #[test]
    fn empty_store() {
        let s = StoreBuilder::new().build();
        assert!(s.is_empty());
        assert!(s.vertices().is_empty());
        assert!(s.predicates().is_empty());
        assert_eq!(s.matching(TriplePattern::any()).count(), 0);
    }
}
