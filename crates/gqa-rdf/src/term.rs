//! RDF terms: IRIs, literals and blank nodes.

use std::borrow::Cow;
use std::fmt;

/// An RDF term.
///
/// IRIs may be written either in full (`http://dbpedia.org/resource/Berlin`)
/// or — throughout this repository's curated datasets — as compact CURIEs
/// (`dbr:Berlin`, `dbo:spouse`, `rdf:type`). The store treats the IRI text as
/// opaque; only byte equality matters.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A named resource (entity, class or predicate).
    Iri(Box<str>),
    /// A literal value with an optional datatype CURIE (`xsd:integer`, …).
    Literal {
        /// The lexical form.
        lexical: Box<str>,
        /// Datatype IRI/CURIE; `None` means a plain string literal.
        datatype: Option<Box<str>>,
    },
    /// A blank node with a local label.
    Blank(Box<str>),
}

impl Term {
    /// Convenience constructor for an IRI term.
    pub fn iri(s: impl Into<Box<str>>) -> Self {
        Term::Iri(s.into())
    }

    /// Convenience constructor for a plain string literal.
    pub fn lit(s: impl Into<Box<str>>) -> Self {
        Term::Literal { lexical: s.into(), datatype: None }
    }

    /// Convenience constructor for a typed literal.
    pub fn typed_lit(s: impl Into<Box<str>>, dt: impl Into<Box<str>>) -> Self {
        Term::Literal { lexical: s.into(), datatype: Some(dt.into()) }
    }

    /// Convenience constructor for an integer literal (`xsd:integer`).
    pub fn int_lit(v: i64) -> Self {
        Term::typed_lit(v.to_string(), "xsd:integer")
    }

    /// Convenience constructor for a decimal literal (`xsd:decimal`).
    pub fn dec_lit(v: f64) -> Self {
        Term::typed_lit(format!("{v}"), "xsd:decimal")
    }

    /// Is this term an IRI?
    #[inline]
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Is this term a literal?
    #[inline]
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// The IRI text if this is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The lexical form if this is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// Parse the literal as a number, if possible (integers and decimals).
    pub fn numeric_value(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// A human-readable label: for IRIs, the fragment after the last
    /// `:`/`/`/`#` with underscores replaced by spaces; for literals, the
    /// lexical form.
    pub fn label(&self) -> Cow<'_, str> {
        match self {
            Term::Iri(s) => {
                let frag = s.rsplit(['/', '#', ':']).next().unwrap_or(s);
                if frag.contains('_') {
                    Cow::Owned(frag.replace('_', " "))
                } else {
                    Cow::Borrowed(frag)
                }
            }
            Term::Literal { lexical, .. } => Cow::Borrowed(lexical),
            Term::Blank(b) => Cow::Borrowed(b),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal { lexical, datatype: None } => write!(f, "\"{lexical}\""),
            Term::Literal { lexical, datatype: Some(dt) } => {
                write!(f, "\"{lexical}\"^^<{dt}>")
            }
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// Well-known CURIEs used by the schema layer and the curated datasets.
pub mod vocab {
    /// `rdf:type` — instance-of edges. A vertex with an incoming `rdf:type`
    /// edge is a class vertex (paper §2.2).
    pub const RDF_TYPE: &str = "rdf:type";
    /// `rdfs:subClassOf` — class hierarchy edges.
    pub const RDFS_SUBCLASS_OF: &str = "rdfs:subClassOf";
    /// `rdfs:label` — human-readable labels used by the entity linker.
    pub const RDFS_LABEL: &str = "rdfs:label";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let e = Term::iri("dbr:Berlin");
        assert!(e.is_iri());
        assert!(!e.is_literal());
        assert_eq!(e.as_iri(), Some("dbr:Berlin"));

        let l = Term::lit("Berlin");
        assert!(l.is_literal());
        assert_eq!(l.as_literal(), Some("Berlin"));
        assert_eq!(l.as_iri(), None);
    }

    #[test]
    fn numeric_values() {
        assert_eq!(Term::int_lit(198).numeric_value(), Some(198.0));
        assert_eq!(Term::dec_lit(1.98).numeric_value(), Some(1.98));
        assert_eq!(Term::lit("not a number").numeric_value(), None);
        assert_eq!(Term::iri("dbr:Berlin").numeric_value(), None);
    }

    #[test]
    fn labels_strip_namespace_and_underscores() {
        assert_eq!(Term::iri("dbr:Antonio_Banderas").label(), "Antonio Banderas");
        assert_eq!(Term::iri("http://example.org/res/Berlin").label(), "Berlin");
        assert_eq!(Term::lit("Philadelphia").label(), "Philadelphia");
    }

    #[test]
    fn display_is_ntriples_like() {
        assert_eq!(Term::iri("dbr:Berlin").to_string(), "<dbr:Berlin>");
        assert_eq!(Term::lit("x").to_string(), "\"x\"");
        assert_eq!(Term::int_lit(3).to_string(), "\"3\"^^<xsd:integer>");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Term::lit("b"), Term::iri("a"), Term::lit("a")];
        v.sort();
        // Just checking sort doesn't panic and dedup works.
        v.dedup();
        assert_eq!(v.len(), 3);
    }
}
