//! LEB128 variable-length integer coding for the CSR index sections and the
//! binary snapshot format.
//!
//! Small values dominate both uses (delta-encoded ids and posting gaps), so
//! most integers occupy a single byte. The decoder is hardened: it returns
//! `None` on truncation and on encodings longer than the maximum width for
//! the type, so corrupted input can never panic or loop.

/// Append `v` to `buf` as an unsigned LEB128 varint (1–5 bytes).
#[inline]
pub fn write_u32(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` to `buf` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a `u32` varint at `*pos`, advancing `*pos` past it.
///
/// Returns `None` if the buffer ends mid-varint or the encoding overflows 32
/// bits; `*pos` is left unspecified on failure.
#[inline]
pub fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let low = (byte & 0x7f) as u32;
        if shift >= 32 || (shift == 28 && low > 0x0f) {
            return None; // overlong or overflowing encoding
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Decode a `u64` varint at `*pos`, advancing `*pos` past it.
///
/// Returns `None` if the buffer ends mid-varint or the encoding overflows 64
/// bits; `*pos` is left unspecified on failure.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let low = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && low > 1) {
            return None;
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_edges() {
        let cases = [0u32, 1, 127, 128, 16383, 16384, 1 << 21, u32::MAX - 1, u32::MAX];
        let mut buf = Vec::new();
        for &v in &cases {
            write_u32(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_u32(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrip_u64_edges() {
        let cases = [0u64, 127, 128, 1 << 35, u64::MAX - 1, u64::MAX];
        let mut buf = Vec::new();
        for &v in &cases {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 300);
        let mut pos = 0;
        assert_eq!(read_u32(&buf[..1], &mut pos), None);
        let mut pos = buf.len();
        assert_eq!(read_u32(&buf, &mut pos), None, "read past the end");
    }

    #[test]
    fn overlong_encoding_is_none() {
        // Six continuation bytes cannot encode a u32.
        let buf = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), None);
        // 5-byte encoding whose top nibble overflows 32 bits.
        let buf = [0xffu8, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), None);
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0u32..128 {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }
}
