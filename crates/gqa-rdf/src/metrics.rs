//! Store-level instrumentation counters.
//!
//! Every [`Store`](crate::Store) carries an [`StoreMetrics`] (shared across
//! clones) counting index lookups per access path and BFS expansions in the
//! path miner. Counting is **off by default**: each probe site does one
//! relaxed load of the `enabled` flag — a read of a shared, read-mostly
//! cacheline — so the disabled cost is negligible and there is no write
//! contention. Call [`StoreMetrics::enable`] to start counting, then
//! [`StoreMetrics::snapshot`] to read the totals (e.g. for publishing into
//! a `gqa-obs` registry; this crate deliberately has no obs dependency).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// Shared, gate-protected counters for one store (and its clones).
#[derive(Debug, Default)]
pub struct StoreMetrics {
    enabled: AtomicBool,
    spo_lookups: AtomicU64,
    pos_lookups: AtomicU64,
    osp_lookups: AtomicU64,
    bfs_expansions: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetricsSnapshot {
    /// Lookups served by the (s, p, o)-sorted index.
    pub spo_lookups: u64,
    /// Lookups served by the (p, o, s)-sorted permutation.
    pub pos_lookups: u64,
    /// Lookups served by the (o, s, p)-sorted permutation.
    pub osp_lookups: u64,
    /// Vertex expansions performed by BFS/DFS path enumeration.
    pub bfs_expansions: u64,
}

impl StoreMetrics {
    /// Turn counting on (idempotent).
    pub fn enable(&self) {
        self.enabled.store(true, Relaxed);
    }

    /// Whether counting is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Copy all counters.
    pub fn snapshot(&self) -> StoreMetricsSnapshot {
        StoreMetricsSnapshot {
            spo_lookups: self.spo_lookups.load(Relaxed),
            pos_lookups: self.pos_lookups.load(Relaxed),
            osp_lookups: self.osp_lookups.load(Relaxed),
            bfs_expansions: self.bfs_expansions.load(Relaxed),
        }
    }

    #[inline]
    pub(crate) fn spo(&self) {
        if self.enabled.load(Relaxed) {
            self.spo_lookups.fetch_add(1, Relaxed);
        }
    }

    #[inline]
    pub(crate) fn pos(&self) {
        if self.enabled.load(Relaxed) {
            self.pos_lookups.fetch_add(1, Relaxed);
        }
    }

    #[inline]
    pub(crate) fn osp(&self) {
        if self.enabled.load(Relaxed) {
            self.osp_lookups.fetch_add(1, Relaxed);
        }
    }

    #[inline]
    pub(crate) fn bfs_expansion(&self) {
        if self.enabled.load(Relaxed) {
            self.bfs_expansions.fetch_add(1, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let m = StoreMetrics::default();
        m.spo();
        m.pos();
        m.osp();
        m.bfs_expansion();
        assert_eq!(m.snapshot(), StoreMetricsSnapshot::default());
    }

    #[test]
    fn counts_when_enabled() {
        let m = StoreMetrics::default();
        m.enable();
        m.spo();
        m.spo();
        m.pos();
        m.osp();
        m.bfs_expansion();
        let s = m.snapshot();
        assert_eq!(s.spo_lookups, 2);
        assert_eq!(s.pos_lookups, 1);
        assert_eq!(s.osp_lookups, 1);
        assert_eq!(s.bfs_expansions, 1);
    }
}
