//! The term dictionary: a bidirectional map between [`Term`]s and dense
//! [`TermId`]s.
//!
//! Interning keeps every triple at 12 bytes and makes equality checks and
//! index lookups integer comparisons — the standard dictionary-encoding
//! technique of RDF engines.

use crate::ids::TermId;
use crate::term::Term;
use rustc_hash::FxHashMap;

/// A grow-only term interner.
#[derive(Default, Debug, Clone)]
pub struct Dict {
    terms: Vec<Term>,
    by_term: FxHashMap<Term, TermId>,
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.by_term.get(&term) {
            return id;
        }
        let id = TermId::from_index(self.terms.len());
        self.terms.push(term.clone());
        self.by_term.insert(term, id);
        id
    }

    /// Intern an IRI given as text.
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        // Fast path: avoid allocating if already present.
        if let Some(id) = self.lookup_iri(iri) {
            return id;
        }
        self.intern(Term::iri(iri))
    }

    /// Look up the id of a term without interning.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Look up the id of an IRI by text without interning.
    pub fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        // `Term::Iri` hashing is over the string; build a cheap probe term.
        // A Box<str> allocation is unavoidable with std HashMap keys of this
        // shape, but lookups are rare outside bulk load.
        self.by_term.get(&Term::iri(iri)).copied()
    }

    /// Resolve an id back to its term. Panics on a foreign id.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Resolve an id if it belongs to this dictionary.
    pub fn get(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId::from_index(i), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.intern(Term::iri("dbr:Berlin"));
        let b = d.intern(Term::iri("dbr:Berlin"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = Dict::new();
        let a = d.intern(Term::iri("dbr:Berlin"));
        let b = d.intern(Term::lit("Berlin"));
        assert_ne!(a, b, "an IRI and a literal with equal text are different terms");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dict::new();
        assert!(d.lookup_iri("dbr:Berlin").is_none());
        assert_eq!(d.len(), 0);
        let id = d.intern_iri("dbr:Berlin");
        assert_eq!(d.lookup_iri("dbr:Berlin"), Some(id));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn roundtrip_term() {
        let mut d = Dict::new();
        let t = Term::typed_lit("3", "xsd:integer");
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), &t);
        assert_eq!(d.get(id), Some(&t));
        assert_eq!(d.get(TermId(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dict::new();
        let a = d.intern_iri("a");
        let b = d.intern_iri("b");
        let got: Vec<_> = d.iter().map(|(id, _)| id).collect();
        assert_eq!(got, vec![a, b]);
    }
}
