//! The term dictionary: a bidirectional map between [`Term`]s and dense
//! [`TermId`]s.
//!
//! Interning keeps every triple at 12 bytes and makes equality checks and
//! index lookups integer comparisons — the standard dictionary-encoding
//! technique of RDF engines.

use crate::ids::TermId;
use crate::term::Term;
use rustc_hash::FxHasher;
use std::hash::Hasher;

/// A grow-only term interner.
///
/// The reverse direction (term → id) is an open-addressing hash index over
/// the id-ordered `terms` vector rather than a `HashMap<Term, TermId>`:
/// slots hold only `(hash, id)`, so no term string is ever stored twice and
/// bulk rebuilds (snapshot load) do no per-term allocation.
#[derive(Default, Debug, Clone)]
pub struct Dict {
    terms: Vec<Term>,
    index: TermIndex,
}

/// Linear-probing `(hash, id)` table; `EMPTY` ids mark free slots. Kept at
/// load factor ≤ 1/2 (slot count is a power of two).
#[derive(Default, Debug, Clone)]
struct TermIndex {
    hashes: Vec<u64>,
    ids: Vec<u32>,
}

const EMPTY: u32 = u32::MAX;

/// SplitMix64 finalizer. FxHash alone diffuses the last input bytes poorly
/// into the low bits, and the table masks with low bits — near-identical
/// strings (`e:E1041`, `e:E1042`, …) would otherwise pile into probe
/// chains.
fn mix(h: u64) -> u64 {
    let h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Hash of a full term: a tag byte, then each component string. Must stay
/// in sync with [`iri_probe_hash`], which hashes an IRI candidate without
/// constructing a `Term`.
fn term_hash(t: &Term) -> u64 {
    let mut h = FxHasher::default();
    match t {
        Term::Iri(s) => {
            h.write_u8(0);
            h.write(s.as_bytes());
        }
        Term::Literal { lexical, datatype: None } => {
            h.write_u8(1);
            h.write(lexical.as_bytes());
        }
        Term::Literal { lexical, datatype: Some(dt) } => {
            h.write_u8(2);
            h.write(lexical.as_bytes());
            h.write(dt.as_bytes());
        }
        Term::Blank(b) => {
            h.write_u8(3);
            h.write(b.as_bytes());
        }
    }
    mix(h.finish())
}

/// Same hash [`term_hash`] would produce for `Term::Iri(iri.into())`.
fn iri_probe_hash(iri: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write_u8(0);
    h.write(iri.as_bytes());
    mix(h.finish())
}

impl TermIndex {
    fn with_slots_for(n: usize) -> TermIndex {
        let slots = (n * 2).next_power_of_two().max(8);
        TermIndex { hashes: vec![0; slots], ids: vec![EMPTY; slots] }
    }

    /// Walk the probe chain for `hash`; return the id of the first slot
    /// whose stored term satisfies `eq`, or the index of the empty slot
    /// where the key would be inserted.
    fn probe(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Result<TermId, usize> {
        let mask = self.ids.len() - 1;
        let mut slot = hash as usize & mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                return Err(slot);
            }
            if self.hashes[slot] == hash && eq(id) {
                return Ok(TermId(id));
            }
            slot = (slot + 1) & mask;
        }
    }

    fn insert_at(&mut self, slot: usize, hash: u64, id: u32) {
        self.hashes[slot] = hash;
        self.ids[slot] = id;
    }

    /// Number of resident slots.
    fn slots(&self) -> usize {
        self.ids.len()
    }
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow the reverse-index slot arrays for snapshot serialization.
    pub(crate) fn index_parts(&self) -> (&[u64], &[u32]) {
        (&self.index.hashes, &self.index.ids)
    }

    /// Adopt snapshot-decoded slot arrays after validating that they form a
    /// working index over `terms`: power-of-two slot count at load factor
    /// ≤ 1/2 (so probes terminate), every term seated exactly once, and
    /// each occupied slot's stored hash equal to the hash of its term (so
    /// lookups actually find what they probe for).
    pub(crate) fn from_indexed_parts(
        terms: Vec<Term>,
        hashes: Vec<u64>,
        ids: Vec<u32>,
    ) -> Result<Dict, String> {
        if hashes.len() != ids.len() {
            return Err(format!("{} hash slots vs {} id slots", hashes.len(), ids.len()));
        }
        let slots = ids.len();
        if terms.is_empty() {
            if slots != 0 && (!slots.is_power_of_two() || ids.iter().any(|&id| id != EMPTY)) {
                return Err("non-empty index for empty dictionary".into());
            }
            return Ok(Dict { terms, index: TermIndex { hashes, ids } });
        }
        if !slots.is_power_of_two() || slots < terms.len() * 2 {
            return Err(format!("{slots} slots cannot index {} terms", terms.len()));
        }
        let mut seen = vec![false; terms.len()];
        for (slot, &id) in ids.iter().enumerate() {
            if id == EMPTY {
                continue;
            }
            let i = id as usize;
            if i >= terms.len() || std::mem::replace(&mut seen[i], true) {
                return Err(format!("slot {slot} holds invalid or duplicate id {id}"));
            }
            if hashes[slot] != term_hash(&terms[i]) {
                return Err(format!("slot {slot} hash disagrees with its term"));
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("index does not cover every term".into());
        }
        Ok(Dict { terms, index: TermIndex { hashes, ids } })
    }

    /// Double the table and re-seat every id when interning would push the
    /// load factor past 1/2.
    fn maybe_grow(&mut self) {
        if (self.terms.len() + 1) * 2 <= self.index.slots() {
            return;
        }
        let mut grown = TermIndex::with_slots_for(self.terms.len() + 1);
        for (i, term) in self.terms.iter().enumerate() {
            let hash = term_hash(term);
            match grown.probe(hash, |_| false) {
                Ok(_) => unreachable!("probe with const-false eq never matches"),
                Err(slot) => grown.insert_at(slot, hash, i as u32),
            }
        }
        self.index = grown;
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: Term) -> TermId {
        let hash = term_hash(&term);
        let slot = if self.terms.is_empty() {
            self.maybe_grow();
            hash as usize & (self.index.slots() - 1)
        } else {
            match self.index.probe(hash, |id| self.terms[id as usize] == term) {
                Ok(id) => return id,
                Err(slot) if (self.terms.len() + 1) * 2 <= self.index.slots() => slot,
                Err(_) => {
                    self.maybe_grow();
                    match self.index.probe(hash, |_| false) {
                        Ok(_) => unreachable!("probe with const-false eq never matches"),
                        Err(slot) => slot,
                    }
                }
            }
        };
        let id = TermId::from_index(self.terms.len());
        self.terms.push(term);
        self.index.insert_at(slot, hash, id.0);
        id
    }

    /// Intern an IRI given as text (no allocation when already present).
    pub fn intern_iri(&mut self, iri: &str) -> TermId {
        if let Some(id) = self.lookup_iri(iri) {
            return id;
        }
        self.intern(Term::iri(iri))
    }

    /// Look up the id of a term without interning.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        if self.terms.is_empty() {
            return None;
        }
        self.index.probe(term_hash(term), |id| &self.terms[id as usize] == term).ok()
    }

    /// Look up the id of an IRI by text without interning or allocating.
    pub fn lookup_iri(&self, iri: &str) -> Option<TermId> {
        if self.terms.is_empty() {
            return None;
        }
        let eq = |id: u32| matches!(&self.terms[id as usize], Term::Iri(s) if &**s == iri);
        self.index.probe(iri_probe_hash(iri), eq).ok()
    }

    /// Resident bytes of the term → id hash index (the slot arrays; term
    /// strings are stored only once, in the id → term vector).
    pub fn index_bytes(&self) -> usize {
        self.index.slots() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }

    /// Resolve an id back to its term. Panics on a foreign id.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Resolve an id if it belongs to this dictionary.
    pub fn get(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId::from_index(i), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.intern(Term::iri("dbr:Berlin"));
        let b = d.intern(Term::iri("dbr:Berlin"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = Dict::new();
        let a = d.intern(Term::iri("dbr:Berlin"));
        let b = d.intern(Term::lit("Berlin"));
        assert_ne!(a, b, "an IRI and a literal with equal text are different terms");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dict::new();
        assert!(d.lookup_iri("dbr:Berlin").is_none());
        assert_eq!(d.len(), 0);
        let id = d.intern_iri("dbr:Berlin");
        assert_eq!(d.lookup_iri("dbr:Berlin"), Some(id));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn roundtrip_term() {
        let mut d = Dict::new();
        let t = Term::typed_lit("3", "xsd:integer");
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), &t);
        assert_eq!(d.get(id), Some(&t));
        assert_eq!(d.get(TermId(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dict::new();
        let a = d.intern_iri("a");
        let b = d.intern_iri("b");
        let got: Vec<_> = d.iter().map(|(id, _)| id).collect();
        assert_eq!(got, vec![a, b]);
    }
}
