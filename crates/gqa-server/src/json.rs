//! A minimal JSON value, parser, and writer — just enough for the
//! `/answer` request/response bodies, with the same no-new-dependencies
//! discipline as the rest of the workspace.
//!
//! The parser is a plain recursive-descent over the RFC 8259 grammar with
//! a depth limit, so arbitrarily nested attacker input cannot blow the
//! stack. Numbers are kept as `f64` (the only numeric fields we accept are
//! small integers: `k`, `timeout_ms`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 32;

/// A JSON value. Objects use a `BTreeMap` so serialization order is
/// deterministic (stable responses make the E2E tests and the CI smoke
/// job simple string checks).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Field of an object, by name.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as a non-negative integer, if exactly representable.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialize (compact, no whitespace) — `to_string()` comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Build an object from pairs (helper for response assembly).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte {:?} at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDCxx`; lone surrogates become
                            // U+FFFD rather than an error.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8".to_owned())?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at offset {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_owned());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_owned())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_owned())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let n: f64 =
            text.parse().map_err(|_| format!("bad number {:?} at offset {start}", text))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at offset {start}"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_request_body() {
        let v = parse(r#"{"question": "Who is the mayor?", "k": 3, "explain": true}"#).unwrap();
        assert_eq!(v.get("question").and_then(Json::as_str), Some("Who is the mayor?"));
        assert_eq!(v.get("k").and_then(Json::as_uint), Some(3));
        assert_eq!(v.get("explain").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn serializes_deterministically() {
        let v = obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Str("x\"y\n".into())),
            ("c", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":"x\"y\n","b":2,"c":[null,false]}"#);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{}extra", "nan"]
        {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        // Lone surrogate degrades to the replacement char, not a panic.
        let v = parse(r#""\ud800x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
    }

    #[test]
    fn escape_of_control_chars() {
        assert_eq!(Json::Str("\u{1}".into()).to_string(), r#""\u0001""#);
    }
}
