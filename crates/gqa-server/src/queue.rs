//! A bounded MPMC queue with explicit close semantics — the server's
//! admission-control surface.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot` shim
//! has no condvar). The acceptor thread calls [`Bounded::try_push`], which
//! **fails immediately** when the queue is full — that failure is the 503
//! shed path, never a block. Worker threads call [`Bounded::pop`], which
//! blocks until an item arrives or the queue is closed and drained, so
//! graceful shutdown is: `close()`, then join the workers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`Bounded::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity — caller should shed load (503).
    Full,
    /// Shutting down — caller should stop producing.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    nonempty: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            nonempty: Condvar::new(),
        }
    }

    /// Nonblocking push. `Err(Full)` is the shed signal.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only when the queue is closed **and**
    /// empty, so every admitted item is drained before workers exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Close the queue: future pushes fail, pops drain the backlog then
    /// return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    /// Items currently queued (the `gqa_server_queue_depth` gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_full_close_semantics() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3).unwrap_err().1, PushError::Full);
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4).unwrap_err().1, PushError::Closed);
        // Backlog still drains after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Bounded::<u32>::new(4);
        let drained = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while q.pop().is_some() {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..8 {
                while q.try_push(i).is_err() {
                    std::thread::yield_now();
                }
            }
            q.close();
        });
        assert_eq!(drained.load(Ordering::Relaxed), 8);
    }
}
