//! The HTTP service: a fixed worker pool behind a bounded accept queue.
//!
//! ```text
//!              ┌──────────┐  try_push   ┌─────────────┐   pop   ┌─────────┐
//!  clients ──▶ │ acceptor │ ──────────▶ │ Bounded<Job>│ ──────▶ │ workers │
//!              └──────────┘    full?    └─────────────┘         └─────────┘
//!                   │ 503 + Retry-After                     parse → route →
//!                   ▼                                       pipeline → write
//! ```
//!
//! Three production behaviors fall out of this shape:
//!
//! * **Admission control.** The queue holds accepted-but-unserved
//!   connections. When it is full the acceptor sheds with `503` and
//!   `Retry-After` instead of letting latency grow without bound. With
//!   keep-alive (this PR) a queue slot admits a *connection* that may
//!   carry up to [`ServerConfig::keep_alive_requests`] requests; clients
//!   that send `Connection: close` get the historical
//!   one-request-per-connection behavior unchanged.
//! * **Deadlines.** A request's deadline starts at **accept** time, so
//!   time spent queued counts against it. A request that expires in the
//!   queue is answered `504` without touching the pipeline; one that
//!   expires mid-pipeline is abandoned at the next stage checkpoint
//!   ([`gqa_core::pipeline::DeadlineExceeded`]). Accepted requests
//!   therefore have latency structurally bounded by their deadline.
//!   Subsequent requests on a keep-alive connection never sat in the
//!   queue, so they anchor at their **first byte** instead — client
//!   think-time between requests is not charged against anyone.
//! * **Graceful shutdown.** Flipping the shutdown flag (SIGTERM/SIGINT or
//!   [`Server::shutdown_handle`]) stops the acceptor, closes the queue,
//!   and lets workers drain every already-admitted request before
//!   [`Server::run`] returns — no accepted request is dropped.

use crate::http::{
    read_request, write_response, write_response_conn, Limits, ParseOutcome, Request,
};
use crate::json::{self, obj, Json};
use crate::queue::Bounded;
use crate::signal;
use gqa_core::cache::{config_fingerprint, AnswerCache, CacheKey, Lookup};
use gqa_core::pipeline::{GAnswer, Response};
use gqa_fault::FaultPlan;
use gqa_obs::{
    unix_ms_now, valid_request_id, AccessLog, Obs, Recorder, RequestIdGen, RequestTrace,
};
use gqa_rdf::ntriples::parse_delta;
use gqa_rdf::snapshot::Stamped;
use gqa_registry::{valid_tenant_name, Registry, Tenant, TenantError, TenantState};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving knobs. Defaults are sized for the demo dataset on a small box;
/// `ganswer --serve` exposes the ones that matter for load tests.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing the pipeline (default: all cores, min 2).
    pub workers: usize,
    /// Bounded queue capacity — pending requests beyond the workers
    /// (default 64). Full queue ⇒ 503.
    pub queue_capacity: usize,
    /// Deadline for requests that don't specify `timeout_ms` (default
    /// 2000 ms).
    pub default_timeout_ms: u64,
    /// Upper bound on client-supplied `timeout_ms` (default 30 000 ms).
    pub max_timeout_ms: u64,
    /// Default answer-list truncation when the request has no `k`
    /// (0 = pipeline's own top-k).
    pub default_k: usize,
    /// HTTP input limits (head/body size).
    pub limits: Limits,
    /// Socket read timeout while parsing a request (default 5000 ms) —
    /// slow-loris connections get a 408, not a parked worker.
    pub read_timeout_ms: u64,
    /// Socket write timeout for responses (default 5000 ms).
    pub write_timeout_ms: u64,
    /// Accept-loop poll interval while idle (default 10 ms).
    pub accept_poll_ms: u64,
    /// Maximum requests served on one keep-alive connection before the
    /// server closes it (default 100; 1 reproduces the historical
    /// one-request-per-connection behavior).
    pub keep_alive_requests: usize,
    /// Idle timeout between requests on a keep-alive connection (default
    /// 2000 ms). Expiry closes the connection silently — unlike the
    /// first-request read timeout, it is not a client error. The wait is
    /// cut short whenever admitted connections are queued unserved or a
    /// shutdown is draining, so idle sessions never starve the pool.
    pub keep_alive_idle_ms: u64,
    /// Answer-cache capacity in responses (default 0 = caching off). See
    /// [`gqa_core::cache::AnswerCache`] for the key and bypass rules.
    pub cache_capacity: usize,
    /// Flight-recorder capacity in retained request traces (default 256;
    /// 0 disables the recorder and the `/debug/requests` endpoints). See
    /// [`gqa_obs::Recorder`] for the tail-sampling retention policy.
    pub flight_recorder: usize,
    /// Deterministic fault-injection plan for the worker pool (inert by
    /// default). A rule at [`FAULT_SITE_WORKER`] exercises the panic
    /// isolation: the request gets a 500, the worker survives.
    pub fault: FaultPlan,
}

/// Fault-injection site fired by a worker for each parsed `/answer`
/// request, inside the panic boundary (`server.worker` in a `GQA_FAULTS`
/// spec). Control endpoints (`/metrics`, `/healthz`) are exempt so a
/// chaos harness can always reconcile its tallies against a clean
/// scrape.
pub const FAULT_SITE_WORKER: &str = "server.worker";

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(2, usize::from).max(2),
            queue_capacity: 64,
            default_timeout_ms: 2000,
            max_timeout_ms: 30_000,
            default_k: 0,
            limits: Limits::default(),
            read_timeout_ms: 5000,
            write_timeout_ms: 5000,
            accept_poll_ms: 10,
            keep_alive_requests: 100,
            keep_alive_idle_ms: 2000,
            cache_capacity: 0,
            flight_recorder: 256,
            fault: FaultPlan::none(),
        }
    }
}

/// What [`Server::run`] did, for logs and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections admitted to the queue.
    pub accepted: u64,
    /// Responses written (any status), including sheds.
    pub served: u64,
    /// 503s written because the queue was full.
    pub shed: u64,
    /// 504s written because a deadline expired (in queue or in pipeline).
    pub timeouts: u64,
}

struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// Poll slice for [`Server::idle_wait`]: the longest a worker parked on
/// an idle keep-alive connection can stay unaware of queue pressure or
/// shutdown. Small enough that yielding feels immediate, large enough
/// that an idle connection costs ~20 syscalls/s, not a spin.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// How [`Server::idle_wait`] ended.
enum IdleWait {
    /// The next request's first byte arrived.
    Data,
    /// The peer closed (or the transport failed) between requests.
    Closed,
    /// The idle window expired — or the worker is needed elsewhere
    /// (queued connections waiting, shutdown draining).
    Expired,
}

struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

// The reloadable engine moved to `gqa-registry` when serving went
// multi-tenant; re-exported here so `gqa_server::Engine` keeps working.
pub use gqa_registry::Engine;

/// Where requests get their [`GAnswer`] from: a borrowed system (the
/// historical embedding API) or a multi-tenant [`Registry`] of named
/// reloadable [`Engine`]s (a single-engine server is a registry with one
/// tenant called `default`).
enum Backend<'s> {
    Fixed(&'s GAnswer<'s>),
    Registry(Arc<Registry>),
}

impl Backend<'_> {
    /// The registry, when serving multi-tenant.
    fn registry(&self) -> Option<&Arc<Registry>> {
        match self {
            Backend::Fixed(_) => None,
            Backend::Registry(r) => Some(r),
        }
    }

    /// Pin the system serving `store` (default tenant when `None`) for
    /// one request: every read the request performs sees the same store
    /// snapshot, even across a concurrent reload or upsert of that — or
    /// any other — tenant. A bad `store` value is a typed error the
    /// caller maps to a 4xx, never a panic.
    fn guard_for(&self, store: Option<&str>) -> Result<SystemGuard<'_>, TenantError> {
        match self {
            Backend::Fixed(s) => match store {
                None => Ok(SystemGuard::Fixed(s)),
                Some(name) if !valid_tenant_name(name) => {
                    Err(TenantError::InvalidName(name.to_owned()))
                }
                // A fixed server behaves as a registry of one: the
                // default name still resolves.
                Some("default") => Ok(SystemGuard::Fixed(s)),
                Some(name) => Err(TenantError::Unknown(name.to_owned())),
            },
            Backend::Registry(reg) => {
                let tenant = reg.get(store)?;
                let pinned = tenant.engine().load();
                Ok(SystemGuard::Loaded { tenant, pinned })
            }
        }
    }

    /// The default tenant's *currently published* epoch (for trace
    /// stamping on non-answer endpoints).
    fn default_epoch(&self) -> u64 {
        match self {
            Backend::Fixed(_) => 1,
            Backend::Registry(reg) => reg.default_tenant().engine().epoch(),
        }
    }
}

/// One request's pinned view of the answering system.
enum SystemGuard<'s> {
    Fixed(&'s GAnswer<'s>),
    Loaded { tenant: Arc<Tenant>, pinned: Arc<Stamped<GAnswer<'static>>> },
}

impl SystemGuard<'_> {
    fn system(&self) -> &GAnswer<'_> {
        // `GAnswer<'s>` is covariant in `'s` (it holds the store by
        // `&'s`/`Arc`), so both arms shorten to the guard borrow.
        match self {
            SystemGuard::Fixed(s) => s,
            SystemGuard::Loaded { pinned, .. } => &pinned.value,
        }
    }

    /// The store epoch this request computes against (a fixed backend
    /// never reloads, so it is permanently epoch 1).
    fn epoch(&self) -> u64 {
        match self {
            SystemGuard::Fixed(_) => 1,
            SystemGuard::Loaded { pinned, .. } => pinned.epoch,
        }
    }

    /// The epoch of the tenant's *currently published* snapshot — newer
    /// than [`SystemGuard::epoch`] if a reload/upsert landed while this
    /// request was running.
    fn current_epoch(&self) -> u64 {
        match self {
            SystemGuard::Fixed(_) => 1,
            SystemGuard::Loaded { tenant, .. } => tenant.engine().epoch(),
        }
    }

    /// The tenant this request routed to (multi-tenant backends only).
    fn tenant(&self) -> Option<&Arc<Tenant>> {
        match self {
            SystemGuard::Fixed(_) => None,
            SystemGuard::Loaded { tenant, .. } => Some(tenant),
        }
    }
}

/// Map a [`TenantError`] onto an HTTP reply: client mistakes are 4xx
/// (naming the offending store), capability gaps are 501, transient
/// states are 503 — a bad `store` field can never take the worker down.
fn tenant_error_reply(e: &TenantError) -> Reply {
    let status = match e {
        TenantError::InvalidName(_) | TenantError::Unknown(_) => 400,
        TenantError::AlreadyExists(_) | TenantError::DefaultUnload(_) => 409,
        TenantError::Loading(_) | TenantError::Failed { .. } => 503,
        TenantError::NoFactory => 501,
        TenantError::Engine { .. } => 500,
    };
    Reply::json(status, obj(vec![("error", Json::Str(e.to_string()))]))
}

/// The server. Workers share one [`GAnswer`] immutably (the same
/// aliasing model as [`GAnswer::answer_all`]'s batch fan-out), either
/// borrowed ([`Server::bind`]) or behind a reloadable [`Engine`]
/// ([`Server::bind_reloadable`]).
pub struct Server<'s> {
    backend: Backend<'s>,
    obs: Obs,
    cache: Option<AnswerCache>,
    recorder: Option<Recorder>,
    access_log: Option<AccessLog>,
    ids: RequestIdGen,
    config: ServerConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

/// Per-request observability context threaded through routing: each
/// handler fills in what it knows, and [`Server::handle`] consumes the
/// lot into a [`RequestTrace`] after the response bytes are written.
#[derive(Debug, Default)]
struct RequestInfo {
    /// Request id: generated, or echoed from a valid client
    /// `X-Request-Id` header.
    id: String,
    /// Per-stage wall times in ms (`understand`/`map`/`topk`; empty for
    /// cache hits and non-answer routes).
    stages: Vec<(String, f64)>,
    /// Answer-cache outcome (`hit`/`miss`), when the cache was consulted.
    cache: Option<String>,
    /// Store epoch pinned for the request.
    epoch: u64,
    /// Budget that degraded the answer, if any.
    degraded: Option<String>,
    /// Pipeline failure (or timeout stage), if unanswered.
    failure: Option<String>,
    /// Fault injections fired while serving the request.
    faults_fired: u64,
    /// Rendered EXPLAIN trace, when the request asked for one.
    explain: Option<String>,
}

impl<'s> Server<'s> {
    /// Bind the listen socket and pre-register the server metric series
    /// (when the system's obs handle is enabled), so a `/metrics` scrape
    /// before any traffic still shows every series at zero.
    pub fn bind(
        addr: impl ToSocketAddrs,
        system: &'s GAnswer<'s>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let obs = system.obs().clone();
        Self::bind_backend(addr, Backend::Fixed(system), obs, config)
    }

    /// [`Server::bind`] over a reloadable [`Engine`]: `POST /admin/reload`
    /// and SIGHUP swap in a freshly rebuilt system without dropping
    /// in-flight requests. The returned server borrows nothing.
    ///
    /// Internally this is a one-tenant [`Registry`]: the engine serves as
    /// the `default` store, so the multi-tenant surface (`store` request
    /// field, `/admin/stores`, per-store metric labels) works uniformly —
    /// single-tenant metric series simply carry `store="default"`.
    pub fn bind_reloadable(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> std::io::Result<Server<'static>> {
        let obs = engine.load().value.obs().clone();
        let registry = Registry::new("default", engine, config.cache_capacity, obs)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        Server::bind_registry(addr, Arc::new(registry), config)
    }

    /// [`Server::bind`] over a multi-tenant [`Registry`]: requests route
    /// by their optional `store` field, `/admin/stores` manages tenants
    /// live, and every tenant-level metric series carries
    /// `store="<name>"`. Per-tenant answer caches belong to the registry
    /// (its `cache_capacity`), not to [`ServerConfig::cache_capacity`] —
    /// pass the same value to both for the config to describe reality.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> std::io::Result<Server<'static>> {
        let obs = registry.obs().clone();
        Server::bind_backend(addr, Backend::Registry(registry), obs, config)
    }

    fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Backend<'s>,
        obs: Obs,
        config: ServerConfig,
    ) -> std::io::Result<Server<'s>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        if obs.is_enabled() {
            for endpoint in ["answer", "metrics", "healthz", "admin", "debug", "other", "none"] {
                obs.counter("gqa_server_requests_total", &[("endpoint", endpoint)]);
            }
            obs.counter("gqa_server_shed_total", &[]);
            obs.counter("gqa_server_timeouts_total", &[]);
            obs.counter("gqa_server_worker_panics_total", &[]);
            obs.gauge("gqa_server_inflight_requests", &[]);
            obs.gauge("gqa_server_queue_depth", &[]);
            obs.gauge("gqa_server_worker_threads", &[]).set(config.workers as i64);
            obs.gauge("gqa_server_queue_capacity", &[]).set(config.queue_capacity as i64);
            obs.histogram("gqa_server_request_duration_seconds", &[], gqa_obs::DURATION_BUCKETS);
            // Registry tenants own their caches and pre-register their
            // labeled series themselves; only a fixed backend keeps a
            // server-level, unlabeled cache.
            if config.cache_capacity > 0 && matches!(backend, Backend::Fixed(_)) {
                obs.counter("gqa_server_cache_hits_total", &[]);
                obs.counter("gqa_server_cache_misses_total", &[]);
                obs.counter("gqa_server_cache_stale_total", &[]);
                obs.counter("gqa_server_cache_evictions_total", &[]);
                obs.histogram(
                    "gqa_server_cache_hit_duration_seconds",
                    &[],
                    gqa_obs::DURATION_BUCKETS,
                );
            }
            if let Backend::Registry(reg) = &backend {
                obs.gauge("gqa_server_stores", &[]).set(reg.len() as i64);
            }
        }
        let cache = (config.cache_capacity > 0 && matches!(backend, Backend::Fixed(_)))
            .then(|| AnswerCache::with_capacity(config.cache_capacity));
        let recorder = (config.flight_recorder > 0).then(|| Recorder::new(config.flight_recorder));
        Ok(Server {
            backend,
            obs,
            cache,
            recorder,
            access_log: None,
            ids: RequestIdGen::new(),
            config,
            listener,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Attach a structured access log: one JSON line per response, queued
    /// to a dedicated writer thread off the hot path. Pre-registers the
    /// dropped-lines counter so scrapes show it from zero.
    pub fn set_access_log(&mut self, log: AccessLog) {
        if self.obs.is_enabled() {
            self.obs.counter("gqa_server_access_log_dropped_total", &[]);
        }
        self.access_log = Some(log);
    }

    /// The flight recorder, when enabled (`flight_recorder > 0`).
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops the server when set (same effect as SIGTERM).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Serve until the shutdown flag or a SIGINT/SIGTERM flips, then drain
    /// the queue and return. Blocks the calling thread.
    pub fn run(&self) -> ServeStats {
        let queue = Bounded::new(self.config.queue_capacity);
        let counters = Counters {
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        };
        std::thread::scope(|scope| {
            for w in 0..self.config.workers.max(1) {
                let (queue, counters) = (&queue, &counters);
                scope.spawn(move || self.worker(w, queue, counters));
            }
            self.accept_loop(&queue, &counters);
            queue.close();
            // Scope exit joins the workers — the drain.
        });
        // The workers are done: push the retained access-log backlog to
        // disk before returning, so a SIGTERM'd server exits with every
        // served request's line durably written.
        if let Some(log) = &self.access_log {
            log.flush();
        }
        ServeStats {
            accepted: counters.accepted.load(Ordering::Relaxed),
            served: counters.served.load(Ordering::Relaxed),
            shed: counters.shed.load(Ordering::Relaxed),
            timeouts: counters.timeouts.load(Ordering::Relaxed),
        }
    }

    fn accept_loop(&self, queue: &Bounded<Job>, counters: &Counters) {
        let obs = &self.obs;
        let depth = obs.gauge("gqa_server_queue_depth", &[]);
        let shed_total = obs.counter("gqa_server_shed_total", &[]);
        loop {
            if self.shutdown.load(Ordering::SeqCst) || signal::triggered() {
                return;
            }
            // SIGHUP: swap in a freshly rebuilt system (reloadable
            // backends only; a fixed backend swallows the signal). The
            // rebuild runs on the acceptor thread — workers keep serving
            // from the old snapshot until the swap.
            if signal::take_reload() {
                if let Backend::Registry(reg) = &self.backend {
                    match reg.reload(None) {
                        Ok(epoch) => eprintln!("[gqa-server] SIGHUP reload: epoch {epoch}"),
                        Err(e) => eprintln!("[gqa-server] SIGHUP reload failed: {e}"),
                    }
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The listener is nonblocking (the accept loop polls);
                    // accepted sockets may inherit that. Workers rely on
                    // blocking reads bounded by SO_RCVTIMEO instead.
                    let _ = stream.set_nonblocking(false);
                    let job = Job { stream, accepted: Instant::now() };
                    match queue.try_push(job) {
                        Ok(()) => {
                            counters.accepted.fetch_add(1, Ordering::Relaxed);
                            depth.set(queue.len() as i64);
                        }
                        Err((job, _full)) => {
                            self.shed(job.stream, counters);
                            shed_total.inc();
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(self.config.accept_poll_ms));
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE): back off.
                    std::thread::sleep(Duration::from_millis(self.config.accept_poll_ms));
                }
            }
        }
    }

    /// Queue full: answer 503 directly from the acceptor so shedding stays
    /// cheap and never waits on a worker. The response still carries an
    /// `X-Request-Id` — server-generated, since honoring a client id would
    /// mean parsing the request — and the shed is recorded like any other
    /// failure so overload storms show up in `/debug/requests?degraded=1`.
    fn shed(&self, mut stream: TcpStream, counters: &Counters) {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(self.config.write_timeout_ms)));
        let id = self.ids.next_id();
        let body =
            obj(vec![("error", Json::Str("server overloaded, retry shortly".into()))]).to_string();
        let ok = write_response(
            &mut stream,
            503,
            "application/json",
            body.as_bytes(),
            &[("Retry-After", "1"), ("X-Request-Id", &id)],
        )
        .is_ok();
        counters.shed.fetch_add(1, Ordering::Relaxed);
        if ok {
            counters.served.fetch_add(1, Ordering::Relaxed);
        }
        if self.access_log.is_some() || self.recorder.is_some() {
            let trace = RequestTrace {
                id,
                route: "shed".to_string(),
                status: 503,
                bytes: body.len() as u64,
                failure: Some("shed:queue_full".to_string()),
                unix_ms: unix_ms_now(),
                ..RequestTrace::default()
            };
            if let Some(log) = &self.access_log {
                log.log(trace.access_log_line());
            }
            if let Some(recorder) = &self.recorder {
                recorder.record(trace);
            }
        }
        close_gracefully(stream);
    }

    fn worker(&self, worker: usize, queue: &Bounded<Job>, counters: &Counters) {
        let obs = &self.obs;
        let inflight = obs.gauge("gqa_server_inflight_requests", &[]);
        let depth = obs.gauge("gqa_server_queue_depth", &[]);
        while let Some(job) = queue.pop() {
            depth.set(queue.len() as i64);
            inflight.inc();
            self.handle(worker, job, queue, counters);
            inflight.dec();
        }
    }

    /// Park between keep-alive requests until the next request's first
    /// byte, the idle window expires, or the session should end early.
    ///
    /// The wait polls in [`IDLE_POLL`] slices rather than one blocking
    /// read for the whole window, so a worker holding an idle connection
    /// is never deaf to the rest of the server: whenever admitted
    /// connections are queued with nobody to serve them — or shutdown is
    /// draining — the idle session is ended at the next slice and the
    /// worker goes back to the queue. Slow-but-live clients therefore
    /// cannot pin the whole pool while the accept queue starves.
    fn idle_wait(&self, reader: &mut BufReader<TcpStream>, queue: &Bounded<Job>) -> IdleWait {
        use std::io::BufRead;
        let start = Instant::now();
        let idle = Duration::from_millis(self.config.keep_alive_idle_ms.max(1));
        loop {
            let Some(budget) = idle.checked_sub(start.elapsed()).filter(|b| !b.is_zero()) else {
                return IdleWait::Expired;
            };
            let _ = reader.get_ref().set_read_timeout(Some(budget.min(IDLE_POLL)));
            match reader.fill_buf() {
                Ok([]) => return IdleWait::Closed, // clean FIN between requests
                Ok(_) => return IdleWait::Data,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if !queue.is_empty()
                        || self.shutdown.load(Ordering::SeqCst)
                        || signal::triggered()
                    {
                        return IdleWait::Expired;
                    }
                }
                Err(_) => return IdleWait::Closed, // transport error; nothing to answer
            }
        }
    }

    /// One connection: serve requests until the client is done, an error
    /// forces a close, or the keep-alive policy (request cap, idle
    /// timeout, shutdown) ends the session. Metrics are recorded per
    /// *response*, *after* its bytes are flushed, so a `/metrics`
    /// exposition never counts itself; [`ServeStats::served`] therefore
    /// counts responses while [`ServeStats::accepted`] counts
    /// connections (equal only for `Connection: close` clients).
    ///
    /// Deadlines and the duration histogram anchor at **accept** time for
    /// the first request (queue wait counts against it) and at the
    /// **first byte** of each subsequent request on the same connection —
    /// client think-time between keep-alive requests is the client's to
    /// spend and is never charged against the next request's budget.
    /// The wait for that first byte ([`Server::idle_wait`]) polls in
    /// short slices so a parked worker notices queue pressure and
    /// shutdown instead of sitting out the full idle window.
    fn handle(&self, worker: usize, job: Job, queue: &Bounded<Job>, counters: &Counters) {
        let obs = &self.obs;
        let Job { stream, accepted } = job;
        let _ = stream.set_write_timeout(Some(Duration::from_millis(self.config.write_timeout_ms)));
        let mut reader = BufReader::new(stream);
        let mut anchor = accepted;
        let mut served_on_conn: usize = 0;
        // Accept → worker pickup: only the connection's first request
        // ever sat in the queue, so only it is charged this wait.
        let queue_wait = accepted.elapsed();

        loop {
            let first = served_on_conn == 0;
            if !first {
                // Between keep-alive requests: wait for the next request's
                // first byte, yielding the worker early under pressure.
                // Idle expiry (either kind) is not a client error — close
                // silently, no 408.
                match self.idle_wait(&mut reader, queue) {
                    IdleWait::Data => anchor = Instant::now(),
                    IdleWait::Closed | IdleWait::Expired => break,
                }
            }
            // With data in hand (or a fresh connection), a stalled request
            // line is a slow-loris: the full read timeout applies and
            // expiry earns a 408 on first and subsequent requests alike.
            let _ = reader
                .get_ref()
                .set_read_timeout(Some(Duration::from_millis(self.config.read_timeout_ms.max(1))));

            // Every response carries a request id: generated up front,
            // overridden by a well-formed client `X-Request-Id` so callers
            // can correlate their own ids through logs and debug views.
            let mut info = RequestInfo { id: self.ids.next_id(), ..RequestInfo::default() };
            let (endpoint, mut outcome, keep) = match read_request(&mut reader, &self.config.limits)
            {
                Ok(ParseOutcome::Closed) if first => return, // peer went away; nothing to do
                Ok(ParseOutcome::Closed) => break,           // clean end of a keep-alive session
                Ok(ParseOutcome::Request(req)) => {
                    if let Some(id) = req.header("x-request-id").filter(|v| valid_request_id(v)) {
                        info.id = id.to_owned();
                    }
                    let routed = self.route_isolated(&req, anchor, counters, &mut info);
                    let keep = req.wants_keep_alive()
                        && served_on_conn + 1 < self.config.keep_alive_requests.max(1)
                        && !self.shutdown.load(Ordering::SeqCst)
                        && !signal::triggered();
                    (routed.0, routed.1, keep)
                }
                Err(e) => match e.status() {
                    Some(status) => {
                        let body = obj(vec![("error", Json::Str(e.reason()))]).to_string();
                        let reply = Reply {
                            status,
                            content_type: "application/json",
                            body: body.into_bytes(),
                            extra: Vec::new(),
                        };
                        // Parse errors always close: framing is suspect.
                        ("none", reply, false)
                    }
                    None => return, // transport error; no response possible
                },
            };
            outcome.extra.push(("X-Request-Id", info.id.clone()));

            let extra: Vec<(&str, &str)> =
                outcome.extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let written = write_response_conn(
                reader.get_mut(),
                outcome.status,
                outcome.content_type,
                &outcome.body,
                &extra,
                keep,
            )
            .is_ok();

            // Bookkeeping after the response bytes are flushed (a /metrics
            // exposition never counts itself) but before the FIN, so once a
            // client sees EOF the counters already reflect its request.
            if written {
                counters.served.fetch_add(1, Ordering::Relaxed);
            }
            if outcome.status == 504 {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
                obs.counter("gqa_server_timeouts_total", &[]).inc();
            }
            obs.counter("gqa_server_requests_total", &[("endpoint", endpoint)]).inc();
            let total = anchor.elapsed();
            obs.histogram("gqa_server_request_duration_seconds", &[], gqa_obs::DURATION_BUCKETS)
                .observe_exemplar(total.as_secs_f64(), &info.id);

            // One RequestTrace per response, built after the bytes are
            // flushed: rendered as the access-log line (a non-blocking
            // try_send) and offered to the flight recorder's tail
            // sampler. Neither path can stall this worker.
            if self.access_log.is_some() || self.recorder.is_some() {
                let trace = RequestTrace {
                    id: info.id,
                    route: endpoint.to_string(),
                    status: outcome.status,
                    bytes: outcome.body.len() as u64,
                    queue_wait_ms: if first { queue_wait.as_secs_f64() * 1e3 } else { 0.0 },
                    total_ms: total.as_secs_f64() * 1e3,
                    stages: info.stages,
                    cache: info.cache,
                    epoch: info.epoch,
                    degraded: info.degraded,
                    failure: info.failure,
                    faults_fired: info.faults_fired,
                    worker,
                    conn_seq: served_on_conn as u64,
                    unix_ms: unix_ms_now(),
                    explain: info.explain,
                    pinned: false,
                    seq: 0,
                };
                if let Some(log) = &self.access_log {
                    log.log(trace.access_log_line());
                }
                if let Some(recorder) = &self.recorder {
                    recorder.record(trace);
                }
            }

            served_on_conn += 1;
            if !(written && keep) {
                break;
            }
        }
        close_gracefully(reader.into_inner());
    }

    /// [`Server::route`] behind a panic boundary. The worker thread owns
    /// nothing mutable across the call (the pipeline is shared immutably,
    /// counters are atomics), so a panicking request leaves no broken
    /// state behind: it gets a 500 and the worker moves on to the next
    /// job. The boundary also hosts the [`FAULT_SITE_WORKER`] injection
    /// site, which is how the chaos harness proves the isolation works.
    fn route_isolated(
        &self,
        req: &Request,
        accepted: Instant,
        counters: &Counters,
        info: &mut RequestInfo,
    ) -> (&'static str, Reply) {
        let routed = catch_unwind(AssertUnwindSafe(|| {
            let fire = if req.path == "/answer" {
                let (fired, outcome) = self.config.fault.fire_counted(FAULT_SITE_WORKER);
                info.faults_fired += fired;
                outcome
            } else {
                Ok(())
            };
            fire.map(|()| {
                // Non-answer endpoints trace against the default tenant's
                // published epoch; `/answer` overwrites this with the
                // epoch it pins for the tenant it routes to.
                info.epoch = self.backend.default_epoch();
                self.route(req, accepted, counters, info)
            })
        }));
        // On a fault or panic `route` never ran, so recover the endpoint
        // label from the request line for accurate per-endpoint counts.
        let endpoint = match req.path.as_str() {
            "/answer" => "answer",
            "/metrics" => "metrics",
            "/healthz" => "healthz",
            p if p == "/admin/reload" || p.starts_with("/admin/stores") => "admin",
            p if p == "/debug/requests" || p.starts_with("/debug/requests/") => "debug",
            _ => "other",
        };
        match routed {
            Ok(Ok(r)) => r,
            Ok(Err(fault)) => {
                info.failure = Some(fault.to_string());
                (endpoint, Reply::json(500, obj(vec![("error", Json::Str(fault.to_string()))])))
            }
            Err(_) => {
                // An injected panic unwinds out of `fire_counted` before the
                // fired count could be added to `info`, so the trace marks
                // the failure here — `?degraded=1` must surface panics.
                info.failure = Some("panic".to_string());
                self.obs.counter("gqa_server_worker_panics_total", &[]).inc();
                (
                    endpoint,
                    Reply::json(
                        500,
                        obj(vec![(
                            "error",
                            Json::Str("internal error: request handler panicked".into()),
                        )]),
                    ),
                )
            }
        }
    }

    fn route(
        &self,
        req: &Request,
        accepted: Instant,
        counters: &Counters,
        info: &mut RequestInfo,
    ) -> (&'static str, Reply) {
        if let Some(id) = req.path.strip_prefix("/debug/requests/") {
            return if req.method == "GET" {
                ("debug", self.debug_request_reply(id))
            } else {
                ("other", Reply::method_not_allowed("GET"))
            };
        }
        if let Some(rest) = req.path.strip_prefix("/admin/stores") {
            return ("admin", self.stores_route(req, rest));
        }
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => ("healthz", self.healthz_reply()),
            ("GET", "/metrics") => ("metrics", self.metrics_reply(req)),
            ("GET", "/debug/requests") => ("debug", self.debug_requests_reply(req)),
            ("POST", "/answer") => ("answer", self.answer_reply(req, accepted, counters, info)),
            ("POST", "/admin/reload") => ("admin", self.reload_reply()),
            (_, "/healthz") | (_, "/metrics") | (_, "/debug/requests") => {
                ("other", Reply::method_not_allowed("GET"))
            }
            (_, "/answer") | (_, "/admin/reload") => ("other", Reply::method_not_allowed("POST")),
            _ => (
                "other",
                Reply::json(404, obj(vec![("error", Json::Str("no such endpoint".into()))])),
            ),
        }
    }

    /// Everything under `/admin/stores`: the listing, the lifecycle verbs
    /// (`load`/`unload`/`reload` with a JSON body naming the store), and
    /// per-store N-Triples upserts (`/admin/stores/<name>/upsert`).
    fn stores_route(&self, req: &Request, rest: &str) -> Reply {
        match (req.method.as_str(), rest) {
            ("GET", "") => self.stores_reply(),
            (_, "") => Reply::method_not_allowed("GET"),
            ("POST", "/load" | "/unload" | "/reload") => {
                self.store_lifecycle_reply(req, &rest[1..])
            }
            (_, "/load" | "/unload" | "/reload") => Reply::method_not_allowed("POST"),
            (method, sub) => match sub.strip_prefix('/').and_then(|s| s.strip_suffix("/upsert")) {
                Some(name) if method == "POST" => self.upsert_reply(name, req),
                Some(_) => Reply::method_not_allowed("POST"),
                None => {
                    Reply::json(404, obj(vec![("error", Json::Str("no such endpoint".into()))]))
                }
            },
        }
    }

    /// `GET /healthz`. A fixed backend keeps the historical bare `ok`; a
    /// registry reports per-store readiness — 200 as long as the default
    /// store serves, with mid-load and failed tenants listed so an
    /// operator (or the smoke test) can see exactly who is lagging.
    fn healthz_reply(&self) -> Reply {
        let Some(registry) = self.backend.registry() else {
            return Reply::text(200, "ok\n");
        };
        let (default_ready, rows) = registry.health();
        let stores: std::collections::BTreeMap<String, Json> = rows
            .iter()
            .map(|row| {
                let mut pairs = vec![("state", Json::Str(row.state.as_str().into()))];
                if row.state.serving() {
                    pairs.push(("epoch", Json::Num(row.epoch as f64)));
                }
                if let TenantState::Failed(e) = &row.state {
                    pairs.push(("error", Json::Str(e.clone())));
                }
                (row.name.clone(), obj(pairs))
            })
            .collect();
        let all_ready = rows.iter().all(|r| r.state == TenantState::Ready);
        let body = obj(vec![
            ("status", Json::Str(if default_ready { "ok" } else { "unavailable" }.into())),
            ("default", Json::Str(registry.default_name().into())),
            ("stores", Json::Obj(stores)),
            ("degraded", Json::Bool(!all_ready)),
        ]);
        Reply::json(if default_ready { 200 } else { 503 }, body)
    }

    /// `POST /admin/reload`: rebuild the store and atomically publish it
    /// (reloadable backends only — a [`Server::bind`] server has no
    /// rebuild recipe and answers 501). Runs on the worker serving the
    /// request; other workers keep answering from the old snapshot until
    /// the swap, and the epoch bump quietly invalidates the answer cache.
    fn reload_reply(&self) -> Reply {
        match &self.backend {
            Backend::Fixed(_) => Reply::json(
                501,
                obj(vec![(
                    "error",
                    Json::Str("server was started without a reloadable engine".into()),
                )]),
            ),
            Backend::Registry(reg) => match reg.reload(None) {
                Ok(epoch) => Reply::json(200, obj(vec![("epoch", Json::Num(epoch as f64))])),
                Err(TenantError::Engine { error, .. }) => Reply::json(
                    500,
                    obj(vec![("error", Json::Str(format!("reload failed: {error}")))]),
                ),
                Err(e) => tenant_error_reply(&e),
            },
        }
    }

    /// `GET /admin/stores`: every tenant's name, state, epoch, shape
    /// (triples/terms/resident bytes), overlay backlog, and cache
    /// counters — the operator's one-stop view of the registry.
    fn stores_reply(&self) -> Reply {
        let Some(registry) = self.backend.registry() else {
            return Reply::json(
                501,
                obj(vec![(
                    "error",
                    Json::Str("server was started without a store registry".into()),
                )]),
            );
        };
        let stores: Vec<Json> = registry
            .list()
            .into_iter()
            .map(|row| {
                let overlay = row.overlay.map_or(Json::Null, |ov| {
                    obj(vec![
                        ("adds", Json::Num(ov.adds as f64)),
                        ("dels", Json::Num(ov.dels as f64)),
                        ("extra_terms", Json::Num(ov.extra_terms as f64)),
                    ])
                });
                let cache = row.cache.map_or(Json::Null, |(s, len)| {
                    obj(vec![
                        ("entries", Json::Num(len as f64)),
                        ("hits", Json::Num(s.hits as f64)),
                        ("misses", Json::Num(s.misses as f64)),
                        ("stale", Json::Num(s.stale as f64)),
                        ("evictions", Json::Num(s.evictions as f64)),
                    ])
                });
                let wal = row.durable.map_or(Json::Null, |d| {
                    obj(vec![
                        ("wal_bytes", Json::Num(d.wal_bytes as f64)),
                        ("wal_records", Json::Num(d.wal_records as f64)),
                        ("replayed_records", Json::Num(d.replayed_records as f64)),
                        ("replayed_ops", Json::Num(d.replayed_ops as f64)),
                        ("torn_bytes_dropped", Json::Num(d.torn_bytes_dropped as f64)),
                        ("checkpoints", Json::Num(d.checkpoints as f64)),
                        ("poisoned", Json::Bool(d.poisoned)),
                        ("group_syncs", Json::Num(d.group_syncs as f64)),
                        ("group_commits", Json::Num(d.group_commits as f64)),
                        ("group_max_batch", Json::Num(d.group_max_batch as f64)),
                    ])
                });
                let mut pairs = vec![
                    ("name", Json::Str(row.name.clone())),
                    ("state", Json::Str(row.state.as_str().into())),
                    ("epoch", Json::Num(row.epoch as f64)),
                    ("triples", Json::Num(row.triples as f64)),
                    ("terms", Json::Num(row.terms as f64)),
                    ("bytes", Json::Num(row.bytes as f64)),
                    ("overlay", overlay),
                    ("cache", cache),
                    ("wal", wal),
                ];
                if let TenantState::Failed(e) = &row.state {
                    pairs.push(("error", Json::Str(e.clone())));
                }
                obj(pairs)
            })
            .collect();
        Reply::json(
            200,
            obj(vec![
                ("default", Json::Str(registry.default_name().into())),
                ("stores", Json::Arr(stores)),
            ]),
        )
    }

    /// `POST /admin/stores/{load,unload,reload}` with a JSON body naming
    /// the store (`{"name": "...", "source": "..."}`; `source` only for
    /// `load`). Lifecycle errors map through [`tenant_error_reply`].
    fn store_lifecycle_reply(&self, req: &Request, verb: &str) -> Reply {
        let Some(registry) = self.backend.registry() else {
            return Reply::json(
                501,
                obj(vec![(
                    "error",
                    Json::Str("server was started without a store registry".into()),
                )]),
            );
        };
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return Reply::bad_request("body is not valid UTF-8"),
        };
        let body = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return Reply::bad_request(&format!("invalid JSON: {e}")),
        };
        let Some(name) = body.get("name").and_then(Json::as_str) else {
            return Reply::bad_request("missing string field \"name\"");
        };
        match verb {
            "load" => {
                let Some(source) = body.get("source").and_then(Json::as_str) else {
                    return Reply::bad_request(
                        "missing string field \"source\" (e.g. \"data.nt\" or \"data.nt,dict.tsv\")",
                    );
                };
                match registry.load(name, source) {
                    Ok(tenant) => {
                        let pinned = tenant.engine().load();
                        Reply::json(
                            200,
                            obj(vec![
                                ("store", Json::Str(name.into())),
                                ("epoch", Json::Num(pinned.epoch as f64)),
                                ("triples", Json::Num(pinned.value.store().len() as f64)),
                            ]),
                        )
                    }
                    Err(e) => tenant_error_reply(&e),
                }
            }
            "unload" => match registry.unload(name) {
                Ok(()) => Reply::json(200, obj(vec![("unloaded", Json::Str(name.into()))])),
                Err(e) => tenant_error_reply(&e),
            },
            "reload" => match registry.reload(Some(name)) {
                Ok(epoch) => Reply::json(
                    200,
                    obj(vec![
                        ("store", Json::Str(name.into())),
                        ("epoch", Json::Num(epoch as f64)),
                    ]),
                ),
                Err(e) => tenant_error_reply(&e),
            },
            _ => unreachable!("routed verbs are load/unload/reload"),
        }
    }

    /// `POST /admin/stores/<name>/upsert`: the body is N-Triples, one
    /// statement per line, with a `-` prefix marking a delete. The batch
    /// is atomic — any malformed line rejects the whole request with its
    /// line number — and lands as a delta overlay published under a new
    /// epoch ([`Engine::upsert`]); readers mid-request keep the snapshot
    /// they pinned.
    fn upsert_reply(&self, name: &str, req: &Request) -> Reply {
        let Some(registry) = self.backend.registry() else {
            return Reply::json(
                501,
                obj(vec![(
                    "error",
                    Json::Str("server was started without a store registry".into()),
                )]),
            );
        };
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return Reply::bad_request("body is not valid UTF-8"),
        };
        let delta = match parse_delta(text) {
            Ok(d) => d,
            Err(e) => return Reply::bad_request(&format!("invalid N-Triples delta: {e}")),
        };
        match registry.upsert(Some(name), delta) {
            Ok(outcome) => Reply::json(
                200,
                obj(vec![
                    ("store", Json::Str(name.into())),
                    ("epoch", Json::Num(outcome.epoch as f64)),
                    ("added", Json::Num(outcome.stats.added as f64)),
                    ("deleted", Json::Num(outcome.stats.deleted as f64)),
                    ("noops", Json::Num(outcome.stats.noops as f64)),
                    ("new_terms", Json::Num(outcome.stats.new_terms as f64)),
                    ("compaction_scheduled", Json::Bool(outcome.compaction_scheduled)),
                ]),
            ),
            Err(e) => {
                // A poisoned WAL is transient from the client's point of
                // view — a restart replays the log into a fresh
                // generation — so answer 503 + Retry-After instead of a
                // terminal-looking 500.
                if matches!(e, TenantError::Engine { .. }) {
                    let poisoned = registry
                        .get(Some(name))
                        .ok()
                        .and_then(|t| t.engine().durable_status())
                        .is_some_and(|d| d.poisoned);
                    if poisoned {
                        let mut reply =
                            Reply::json(503, obj(vec![("error", Json::Str(e.to_string()))]));
                        reply.extra.push(("Retry-After", "1".to_owned()));
                        return reply;
                    }
                }
                tenant_error_reply(&e)
            }
        }
    }

    /// `GET /metrics`: Prometheus text by default, the registry's JSON
    /// dump with `?format=json`.
    fn metrics_reply(&self, req: &Request) -> Reply {
        let obs = &self.obs;
        let json_format = matches!(query_param(req.query.as_deref(), "format"), Some("json"));
        if !obs.is_enabled() {
            if json_format {
                return Reply {
                    status: 200,
                    content_type: "application/json",
                    body: obs.json().into_bytes(),
                    extra: Vec::new(),
                };
            }
            return Reply::text(200, "# metrics disabled (server started without obs)\n");
        }
        // The answer caches keep their own atomics (single source of
        // truth, shared with `AnswerCache::stats`); publish them
        // absolutely at scrape time like the pipeline's component-local
        // counters. A registry backend publishes every ready tenant under
        // its `store="<name>"` label; a fixed backend keeps the
        // historical unlabeled series.
        match &self.backend {
            Backend::Fixed(system) => {
                system.publish_metrics();
                if let Some(registry) = obs.registry() {
                    if let Some(cache) = &self.cache {
                        let stats = cache.stats();
                        registry.set_counter("gqa_server_cache_hits_total", &[], stats.hits);
                        registry.set_counter("gqa_server_cache_misses_total", &[], stats.misses);
                        registry.set_counter("gqa_server_cache_stale_total", &[], stats.stale);
                        registry.set_counter(
                            "gqa_server_cache_evictions_total",
                            &[],
                            stats.evictions,
                        );
                    }
                }
            }
            Backend::Registry(reg) => {
                for tenant in reg.ready() {
                    tenant.publish_metrics();
                }
                obs.gauge("gqa_server_stores", &[]).set(reg.len() as i64);
            }
        }
        if let Some(registry) = obs.registry() {
            if let Some(log) = &self.access_log {
                registry.set_counter("gqa_server_access_log_dropped_total", &[], log.dropped());
            }
        }
        if json_format {
            return Reply {
                status: 200,
                content_type: "application/json",
                body: obs.json().into_bytes(),
                extra: Vec::new(),
            };
        }
        Reply {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: obs.prometheus().into_bytes(),
            extra: Vec::new(),
        }
    }

    /// `GET /debug/requests`: the flight recorder's retained traces,
    /// newest first, without EXPLAIN payloads. Filters compose:
    /// `status=<code>`, `min_ms=<float>`, `degraded=1` (a degraded/budget
    /// cause, a typed failure, or a fired fault injection), `limit=<n>`
    /// (default 100).
    fn debug_requests_reply(&self, req: &Request) -> Reply {
        let Some(recorder) = &self.recorder else {
            return Reply::json(
                404,
                obj(vec![(
                    "error",
                    Json::Str("flight recorder disabled (flight_recorder = 0)".into()),
                )]),
            );
        };
        let q = req.query.as_deref();
        let status = match query_param(q, "status").map(str::parse::<u16>) {
            None => None,
            Some(Ok(s)) => Some(s),
            Some(Err(_)) => return Reply::bad_request("\"status\" must be an integer"),
        };
        let min_ms = match query_param(q, "min_ms").map(str::parse::<f64>) {
            None => None,
            Some(Ok(v)) => Some(v),
            Some(Err(_)) => return Reply::bad_request("\"min_ms\" must be a number"),
        };
        let degraded_only = matches!(query_param(q, "degraded"), Some("1" | "true"));
        let limit = match query_param(q, "limit").map(str::parse::<usize>) {
            None => 100,
            Some(Ok(n)) => n,
            Some(Err(_)) => return Reply::bad_request("\"limit\" must be a non-negative integer"),
        };
        let records: Vec<String> = recorder
            .snapshot()
            .iter()
            .filter(|t| status.is_none_or(|s| t.status == s))
            .filter(|t| min_ms.is_none_or(|m| t.total_ms >= m))
            .filter(|t| {
                !degraded_only || t.degraded.is_some() || t.failure.is_some() || t.faults_fired > 0
            })
            .take(limit)
            .map(|t| t.to_json(false))
            .collect();
        let body = format!("{{\"count\":{},\"requests\":[{}]}}", records.len(), records.join(","));
        Reply {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    /// `GET /debug/requests/<id>`: the full retained trace for one
    /// request id, including the EXPLAIN payload when one was captured.
    fn debug_request_reply(&self, id: &str) -> Reply {
        let Some(recorder) = &self.recorder else {
            return Reply::json(
                404,
                obj(vec![(
                    "error",
                    Json::Str("flight recorder disabled (flight_recorder = 0)".into()),
                )]),
            );
        };
        match recorder.find(id) {
            Some(t) => Reply {
                status: 200,
                content_type: "application/json",
                body: t.to_json(true).into_bytes(),
                extra: Vec::new(),
            },
            None => Reply::json(
                404,
                obj(vec![(
                    "error",
                    Json::Str("request id not retained by the flight recorder".into()),
                )]),
            ),
        }
    }

    fn answer_reply(
        &self,
        req: &Request,
        accepted: Instant,
        counters: &Counters,
        info: &mut RequestInfo,
    ) -> Reply {
        // Parse and validate the JSON body.
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return Reply::bad_request("body is not valid UTF-8"),
        };
        let body = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return Reply::bad_request(&format!("invalid JSON: {e}")),
        };
        let Some(question) = body.get("question").and_then(Json::as_str) else {
            return Reply::bad_request("missing string field \"question\"");
        };
        if question.trim().is_empty() {
            return Reply::bad_request("\"question\" must be non-empty");
        }
        // Route to a tenant (absent `store` = the default) and pin its
        // snapshot for the whole request: a reload or upsert — of this
        // tenant or any other — concurrent with this request cannot
        // change what it reads. An unknown or malformed store name is the
        // client's mistake: a 400 naming it, never a 500.
        let store_field = match body.get("store") {
            None => None,
            Some(v) => match v.as_str() {
                Some(s) => Some(s),
                None => return Reply::bad_request("\"store\" must be a string"),
            },
        };
        let guard = match self.backend.guard_for(store_field) {
            Ok(g) => g,
            Err(e) => return tenant_error_reply(&e),
        };
        info.epoch = guard.epoch();
        // `k` accepts 0 (a valid "give me the empty prefix" request that
        // answers 200 with empty lists — it used to 400). Absent `k`
        // falls back to the configured default, where 0 means "no
        // truncation"; that sentinel never collides with an explicit 0
        // because the explicit form stays `Some(0)`.
        let k: Option<usize> = match body.get("k") {
            None => (self.config.default_k > 0).then_some(self.config.default_k),
            Some(v) => match v.as_uint() {
                Some(n) => Some(n as usize),
                None => return Reply::bad_request("\"k\" must be a non-negative integer"),
            },
        };
        let timeout_ms = match body.get("timeout_ms") {
            None => self.config.default_timeout_ms,
            Some(v) => match v.as_uint() {
                Some(n) => n.min(self.config.max_timeout_ms),
                None => return Reply::bad_request("\"timeout_ms\" must be a non-negative integer"),
            },
        };
        let explain = match body.get("explain") {
            None => false,
            Some(v) => match v.as_bool() {
                Some(b) => b,
                None => return Reply::bad_request("\"explain\" must be a boolean"),
            },
        };

        // The deadline is anchored at accept time: queueing already spent
        // part of the budget. An over-budget request is refused here
        // without running the pipeline at all.
        let deadline = accepted + Duration::from_millis(timeout_ms);
        let queue_wait = accepted.elapsed();
        if Instant::now() > deadline {
            let _ = counters; // counted by the caller via the 504 status
            info.failure = Some("timeout:queue".to_string());
            return Reply::timeout("queue", timeout_ms);
        }

        let system = guard.system();

        // Cache bypass: traced runs carry per-request state, and any armed
        // fault plan or finite budget makes responses intentionally
        // nondeterministic — serving a memoized answer would mask the very
        // behavior chaos tests exist to observe. Bypassed requests emit no
        // `X-Cache` header at all, keeping them byte-identical to a
        // cacheless server.
        let bypass = explain
            || self.config.fault.is_active()
            || system.config.fault.is_active()
            || !system.config.budget.is_unlimited();
        // A tenant-routed request uses the tenant's own cache and its
        // scoped obs handle (`store="<name>"`); a fixed backend keeps the
        // server-level cache and unlabeled series.
        let cache_ref = match guard.tenant() {
            Some(tenant) => tenant.cache(),
            None => self.cache.as_ref(),
        };
        let cache_obs = guard.tenant().map_or(&self.obs, |t| t.obs());
        let cached_key = match (cache_ref, bypass) {
            (Some(cache), false) => {
                let key = CacheKey::new(question, k, config_fingerprint(&system.config));
                match cache.lookup(&key, guard.epoch()) {
                    Lookup::Hit(response) => {
                        cache_obs
                            .histogram(
                                "gqa_server_cache_hit_duration_seconds",
                                &[],
                                gqa_obs::DURATION_BUCKETS,
                            )
                            .observe_exemplar(accepted.elapsed().as_secs_f64(), &info.id);
                        info.cache = Some("hit".to_string());
                        info.degraded = response.degraded.map(|b| b.as_str().to_owned());
                        info.failure = response.failure.as_ref().map(|f| f.reason().to_owned());
                        let mut reply =
                            Reply::json(200, render_response(question, &response, k, queue_wait));
                        reply.extra.push(("X-Cache", "hit".to_owned()));
                        return reply;
                    }
                    // A stale entry was already dropped by the lookup;
                    // recompute against the pinned snapshot and re-insert
                    // under the current epoch like any miss.
                    Lookup::Miss | Lookup::Stale => Some((cache, key)),
                }
            }
            _ => None,
        };

        let result = if explain {
            system.answer_traced_with_deadline(question, deadline)
        } else {
            system.answer_with_deadline(question, deadline)
        };
        match result {
            Err(e) => {
                info.failure = Some(format!("timeout:{}", e.stage));
                Reply::timeout(e.stage, timeout_ms)
            }
            Ok(response) => {
                let response = Arc::new(response);
                info.stages = vec![
                    ("understand".to_string(), response.understanding_time.as_secs_f64() * 1e3),
                    ("map".to_string(), response.map_time.as_secs_f64() * 1e3),
                    ("topk".to_string(), response.topk_time.as_secs_f64() * 1e3),
                ];
                info.degraded = response.degraded.map(|b| b.as_str().to_owned());
                info.failure = response.failure.as_ref().map(|f| f.reason().to_owned());
                info.faults_fired += response.faults_fired;
                if let Some(trace) = &response.trace {
                    info.explain = Some(trace.render());
                }
                let mut reply =
                    Reply::json(200, render_response(question, &response, k, queue_wait));
                if let Some((cache, key)) = cached_key {
                    // Insert only if no reload landed mid-request: an
                    // entry stamped with a retired epoch would be
                    // immediately stale, and (worse) could displace a
                    // fresh post-reload entry for the same key.
                    if guard.epoch() == guard.current_epoch() {
                        cache.insert(key, guard.epoch(), Arc::clone(&response));
                    }
                    info.cache = Some("miss".to_string());
                    reply.extra.push(("X-Cache", "miss".to_owned()));
                }
                reply
            }
        }
    }
}

/// First value of a query-string parameter (`k=v` pairs joined by `&`; a
/// bare `k` reads as the empty value). No percent-decoding — every
/// metrics/debug parameter is a plain token.
fn query_param<'q>(query: Option<&'q str>, name: &str) -> Option<&'q str> {
    query?.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == name).then_some(v)
    })
}

/// Lingering close. When a response is written before the request was read
/// in full (a shed 503, a 413, a torn request), closing the socket with
/// unread input pending makes the kernel send RST, which can destroy the
/// response before the client reads it. So: half-close the write side,
/// then discard input (briefly, bounded) until the peer's FIN, and only
/// then drop the socket.
fn close_gracefully(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 4096];
    let mut budget: usize = 64 * 1024;
    loop {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break, // FIN, timeout, or reset: done either way
            Ok(n) => match budget.checked_sub(n) {
                Some(rest) => budget = rest,
                None => break, // peer keeps streaming; give up on politeness
            },
        }
    }
}

/// A response about to be written.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    extra: Vec<(&'static str, String)>,
}

impl Reply {
    fn text(status: u16, body: &str) -> Reply {
        Reply {
            status,
            content_type: "text/plain",
            body: body.as_bytes().to_vec(),
            extra: Vec::new(),
        }
    }

    fn json(status: u16, value: Json) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body: value.to_string().into_bytes(),
            extra: Vec::new(),
        }
    }

    fn bad_request(reason: &str) -> Reply {
        Reply::json(400, obj(vec![("error", Json::Str(reason.into()))]))
    }

    fn timeout(stage: &str, timeout_ms: u64) -> Reply {
        Reply::json(
            504,
            obj(vec![
                ("error", Json::Str("deadline exceeded".into())),
                ("stage", Json::Str(stage.into())),
                ("timeout_ms", Json::Num(timeout_ms as f64)),
            ]),
        )
    }

    fn method_not_allowed(allow: &'static str) -> Reply {
        let mut r = Reply::json(405, obj(vec![("error", Json::Str("method not allowed".into()))]));
        r.extra.push(("Allow", allow.to_owned()));
        r
    }
}

/// Serialize a pipeline [`Response`] to the `/answer` JSON schema.
/// `Some(k)` truncates the answer and SPARQL lists — including `Some(0)`,
/// the empty prefix — while `None` renders everything (per-request `k`
/// cannot change the shared pipeline's `top_k`, so it is applied here).
fn render_response(question: &str, r: &Response, k: Option<usize>, queue_wait: Duration) -> Json {
    let take = k.unwrap_or(usize::MAX);
    let answers: Vec<Json> = r
        .answers
        .iter()
        .take(take)
        .map(|a| {
            let mut pairs =
                vec![("text", Json::Str(a.text.clone())), ("score", Json::Num(a.score))];
            if let Some(iri) = a.term.as_iri() {
                pairs.push(("iri", Json::Str(iri.to_owned())));
            }
            obj(pairs)
        })
        .collect();
    let sparql: Vec<Json> = r.sparql.iter().take(take).map(|s| Json::Str(s.clone())).collect();
    let mut pairs = vec![
        ("question", Json::Str(question.to_owned())),
        ("answers", Json::Arr(answers)),
        ("boolean", r.boolean.map_or(Json::Null, Json::Bool)),
        ("count", r.count.map_or(Json::Null, |c| Json::Num(c as f64))),
        ("sparql", Json::Arr(sparql)),
        ("failure", r.failure.as_ref().map_or(Json::Null, |f| Json::Str(f.reason().to_owned()))),
        (
            "degraded",
            r.degraded
                .map_or(Json::Null, |b| obj(vec![("budget", Json::Str(b.as_str().to_owned()))])),
        ),
        (
            "timings_ms",
            obj(vec![
                ("understanding", Json::Num(r.understanding_time.as_secs_f64() * 1e3)),
                ("evaluation", Json::Num(r.evaluation_time.as_secs_f64() * 1e3)),
                ("total", Json::Num(r.total_time().as_secs_f64() * 1e3)),
                ("queue_wait", Json::Num(queue_wait.as_secs_f64() * 1e3)),
            ]),
        ),
    ];
    if let Some(trace) = &r.trace {
        pairs.push(("explain", Json::Str(trace.render())));
    }
    obj(pairs)
}
