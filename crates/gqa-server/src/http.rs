//! A hand-rolled HTTP/1.1 request parser and response writer.
//!
//! The crates-io mirror is unreachable in the build environment, so the
//! server speaks HTTP the same way the rest of the workspace builds its
//! substrates: from `std` up. The subset implemented is exactly what the
//! serving layer needs — request line + headers + `Content-Length` bodies —
//! with hard limits everywhere a client could feed us unbounded input.
//!
//! Robustness contract (enforced by the fuzz suite in
//! `tests/http_parser.rs`): for **any** byte stream, [`read_request`]
//! either yields a well-formed [`Request`], reports a clean EOF, or returns
//! an [`HttpError`] that maps to a 4xx status. It never panics and never
//! reads more than [`Limits`] allows.

use std::io::{BufRead, ErrorKind, Write};

/// Input-size limits for one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (guards header floods).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted (guards giant bodies).
    pub max_body_bytes: usize,
    /// Maximum `Content-Length` for `/admin/stores/<name>/upsert`
    /// requests: bulk N-Triples bodies are legitimately much larger than
    /// question payloads, so the upsert route gets its own cap instead
    /// of sharing [`Limits::max_body_bytes`].
    pub max_upsert_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024,
            max_upsert_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Whether `path` is the bulk-upsert admin route (which gets
/// [`Limits::max_upsert_body_bytes`] instead of the generic body cap).
pub fn is_upsert_path(path: &str) -> bool {
    path.strip_prefix("/admin/stores/")
        .and_then(|rest| rest.strip_suffix("/upsert"))
        .is_some_and(|name| !name.is_empty() && !name.contains('/'))
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (`/answer`).
    pub path: String,
    /// Raw query string, when present (without the `?`).
    pub query: Option<String>,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Minor HTTP version (`1` for `HTTP/1.1`): decides the keep-alive
    /// default per RFC 9112 §9.3.
    pub version_minor: u8,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client is willing to reuse this connection:
    /// `HTTP/1.1` defaults to keep-alive unless `Connection: close`;
    /// `HTTP/1.0` requires an explicit `Connection: keep-alive`. The
    /// `Connection` header is treated as a comma-separated token list.
    pub fn wants_keep_alive(&self) -> bool {
        let token = |t: &str| {
            self.header("connection")
                .is_some_and(|v| v.split(',').any(|part| part.trim().eq_ignore_ascii_case(t)))
        };
        if token("close") {
            false
        } else if self.version_minor >= 1 {
            true
        } else {
            token("keep-alive")
        }
    }
}

/// Why a request could not be parsed. Every variant maps to a response
/// status via [`HttpError::status`]; I/O failures have no status (the
/// connection is simply dropped).
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or `Content-Length` → 400.
    BadRequest(&'static str),
    /// Declared body larger than the route's body cap → 413; carries the
    /// limit that applied so the response can name it.
    PayloadTooLarge {
        /// The byte cap the declared `Content-Length` exceeded.
        limit: usize,
    },
    /// Request line + headers exceed [`Limits::max_head_bytes`] → 431.
    HeadersTooLarge,
    /// The peer stopped sending mid-request (torn read at EOF) → 400.
    UnexpectedEof,
    /// Socket read timed out → 408.
    Timeout,
    /// Transport error: no response is possible.
    Io(std::io::Error),
}

impl HttpError {
    /// The response status this error maps to (`None` for transport
    /// errors, where writing a response is pointless).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) | HttpError::UnexpectedEof => Some(400),
            HttpError::PayloadTooLarge { .. } => Some(413),
            HttpError::HeadersTooLarge => Some(431),
            HttpError::Timeout => Some(408),
            HttpError::Io(_) => None,
        }
    }

    /// Short human-readable reason (the response body).
    pub fn reason(&self) -> String {
        match self {
            HttpError::BadRequest(r) => (*r).to_owned(),
            HttpError::PayloadTooLarge { limit } => {
                format!("request body exceeds this route's {limit}-byte limit")
            }
            HttpError::HeadersTooLarge => "request head too large".to_owned(),
            HttpError::UnexpectedEof => "connection closed mid-request".to_owned(),
            HttpError::Timeout => "timed out reading request".to_owned(),
            HttpError::Io(_) => "i/o error".to_owned(),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
            ErrorKind::UnexpectedEof => HttpError::UnexpectedEof,
            _ => HttpError::Io(e),
        }
    }
}

/// Result of [`read_request`]: a request, or a clean close (EOF before the
/// first byte — the peer just went away, nothing to answer).
#[derive(Debug)]
pub enum ParseOutcome {
    /// A complete request.
    Request(Request),
    /// EOF before any byte of a request arrived.
    Closed,
}

/// Read one request from the stream. Handles torn reads transparently
/// (`BufRead` keeps partial lines buffered across calls), so headers split
/// across arbitrary TCP segment boundaries parse identically to a single
/// write. Pipelined bytes after the body stay in the reader for the next
/// call.
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<ParseOutcome, HttpError> {
    // Request line. EOF right here is a clean close.
    let mut line = Vec::new();
    let mut head_bytes = read_line(r, &mut line, limits.max_head_bytes)?;
    if line.is_empty() {
        return Ok(ParseOutcome::Closed);
    }
    let text =
        std::str::from_utf8(&line).map_err(|_| HttpError::BadRequest("non-utf8 request line"))?;
    let mut parts = text.split(' ').filter(|s| !s.is_empty());
    let method = parts.next().ok_or(HttpError::BadRequest("empty request line"))?;
    let target = parts.next().ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts.next().ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    let version_minor = version
        .strip_prefix("HTTP/1.")
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_digit()))
        .and_then(|m| m.parse::<u8>().ok())
        .ok_or(HttpError::BadRequest("unsupported HTTP version"))?;
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.len() > 16 {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("request target must be absolute path"));
    }
    let method = method.to_owned();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };

    // Headers, until the blank line.
    let mut headers = Vec::new();
    loop {
        let budget =
            limits.max_head_bytes.checked_sub(head_bytes).ok_or(HttpError::HeadersTooLarge)?;
        line.clear();
        let n = read_line(r, &mut line, budget).map_err(|e| match e {
            // EOF inside the head is a torn request, not a clean close.
            _ if line.is_empty() && matches!(e, HttpError::UnexpectedEof) => {
                HttpError::UnexpectedEof
            }
            other => other,
        })?;
        head_bytes += n;
        if n == 0 {
            return Err(HttpError::UnexpectedEof);
        }
        if line.is_empty() {
            break; // end of headers
        }
        if headers.len() >= 128 {
            return Err(HttpError::HeadersTooLarge);
        }
        let text =
            std::str::from_utf8(&line).map_err(|_| HttpError::BadRequest("non-utf8 header"))?;
        let (name, value) =
            text.split_once(':').ok_or(HttpError::BadRequest("header missing colon"))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request { method, path, query, headers, body: Vec::new(), version_minor };

    // Body: Content-Length only (no chunked transfer in this subset).
    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::BadRequest("transfer-encoding not supported"));
        }
    }
    // Duplicate Content-Length headers are rejected outright — even when
    // the copies agree. Silently taking the first occurrence would let a
    // smuggled second value desynchronize request framing on a reused
    // (keep-alive) connection (RFC 9112 §6.3 requires 400 here).
    if request.headers.iter().filter(|(n, _)| n == "content-length").count() > 1 {
        return Err(HttpError::BadRequest("duplicate content-length"));
    }
    let len = match request.header("content-length") {
        None => 0usize,
        Some(v) => {
            let v = v.trim();
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadRequest("malformed content-length"));
            }
            v.parse::<usize>().map_err(|_| HttpError::BadRequest("malformed content-length"))?
        }
    };
    let body_cap = if is_upsert_path(&request.path) {
        limits.max_upsert_body_bytes
    } else {
        limits.max_body_bytes
    };
    if len > body_cap {
        return Err(HttpError::PayloadTooLarge { limit: body_cap });
    }
    let mut request = request;
    if len > 0 {
        request.body.resize(len, 0);
        r.read_exact(&mut request.body)?;
    }
    Ok(ParseOutcome::Request(request))
}

/// Read one line into `out` (CRLF or bare LF, terminator stripped), at most
/// `budget` bytes *including* the terminator. Returns the raw byte count
/// consumed. EOF with no bytes leaves `out` empty and returns 0; EOF
/// mid-line is [`HttpError::UnexpectedEof`].
fn read_line<R: BufRead>(r: &mut R, out: &mut Vec<u8>, budget: usize) -> Result<usize, HttpError> {
    out.clear();
    let mut consumed = 0usize;
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        if available.is_empty() {
            if consumed == 0 {
                return Ok(0);
            }
            return Err(HttpError::UnexpectedEof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if consumed + i + 1 > budget {
                    return Err(HttpError::HeadersTooLarge);
                }
                out.extend_from_slice(&available[..i]);
                r.consume(i + 1);
                consumed += i + 1;
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Ok(consumed);
            }
            None => {
                let n = available.len();
                if consumed + n > budget {
                    return Err(HttpError::HeadersTooLarge);
                }
                out.extend_from_slice(available);
                r.consume(n);
                consumed += n;
            }
        }
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one response and flush, with `Connection: close` (the historical
/// one-request-per-connection behavior; error paths and shedding still
/// use it). See [`write_response_conn`] for the keep-alive variant.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write_response_conn(w, status, content_type, body, extra_headers, false)
}

/// Write one response and flush. `keep_alive` selects the `Connection`
/// header: `close` tells the peer this is the last response on the
/// socket, `keep-alive` invites another request (the server enforces its
/// own per-connection request cap and idle timeout — see DESIGN.md §12
/// on the connection lifecycle, and §10 for why the bounded accept queue
/// then models pending *connections*).
pub fn write_response_conn<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nConnection: {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason_phrase(status),
        connection,
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<ParseOutcome, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let out = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let ParseOutcome::Request(r) = out else { panic!("{out:?}") };
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let out = parse(b"POST /answer?k=3 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        let ParseOutcome::Request(r) = out else { panic!("{out:?}") };
        assert_eq!(r.path, "/answer");
        assert_eq!(r.query.as_deref(), Some("k=3"));
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let out = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert!(matches!(out, ParseOutcome::Request(_)));
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_close() {
        assert!(matches!(parse(b"").unwrap(), ParseOutcome::Closed));
    }

    #[test]
    fn torn_request_is_an_error_not_a_hang() {
        for cut in 1.."GET / HTTP/1.1\r\nHost: x\r\n\r\n".len() {
            let bytes = &b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"[..cut];
            match parse(bytes) {
                Err(_) => {}
                Ok(ParseOutcome::Closed) => {}
                Ok(ParseOutcome::Request(_)) => panic!("cut {cut} parsed as complete"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let req = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        let err = parse(req.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn upsert_route_gets_its_own_body_cap_and_413_names_the_limit() {
        // Bigger than the generic cap, within the upsert cap: the upsert
        // route accepts it, /answer rejects it.
        let limits = Limits::default();
        let len = limits.max_body_bytes + 1;
        let head =
            format!("POST /admin/stores/scale/upsert HTTP/1.1\r\nContent-Length: {len}\r\n\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend(vec![b'x'; len]);
        let out = read_request(&mut Cursor::new(bytes), &limits).unwrap();
        assert!(matches!(out, ParseOutcome::Request(_)), "upsert body within its route cap");

        let req = format!("POST /answer HTTP/1.1\r\nContent-Length: {len}\r\n\r\n");
        let err = parse(req.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(413));
        assert!(err.reason().contains(&limits.max_body_bytes.to_string()), "{}", err.reason());

        // Past the upsert cap the 413 names *that* limit.
        let req = format!(
            "POST /admin/stores/scale/upsert HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            limits.max_upsert_body_bytes + 1
        );
        let err = parse(req.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(413));
        assert!(
            err.reason().contains(&limits.max_upsert_body_bytes.to_string()),
            "{}",
            err.reason()
        );
    }

    #[test]
    fn upsert_path_detection_is_exact() {
        assert!(is_upsert_path("/admin/stores/scale/upsert"));
        assert!(is_upsert_path("/admin/stores/a.b-c_d/upsert"));
        assert!(!is_upsert_path("/admin/stores//upsert"));
        assert!(!is_upsert_path("/admin/stores/upsert"));
        assert!(!is_upsert_path("/admin/stores/x/y/upsert"));
        assert!(!is_upsert_path("/answer"));
        assert!(!is_upsert_path("/admin/stores/x/load"));
    }

    #[test]
    fn bad_content_length_is_400() {
        for bad in ["nope", "-1", "1e3", "0x10", "9999999999999999999999999"] {
            let req = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            let err = parse(req.as_bytes()).unwrap_err();
            assert_eq!(err.status(), Some(400), "content-length {bad:?}");
        }
    }

    #[test]
    fn oversized_head_is_431() {
        let req = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(64 * 1024));
        let err = parse(req.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(431));
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let bytes =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(bytes.to_vec());
        let limits = Limits::default();
        let mut paths = Vec::new();
        while let ParseOutcome::Request(r) = read_request(&mut cur, &limits).unwrap() {
            paths.push(r.path);
        }
        assert_eq!(paths, vec!["/a", "/b", "/c"]);
    }

    #[test]
    fn duplicate_content_length_is_400_even_when_agreeing() {
        for (a, b) in [("4", "4"), ("4", "5"), ("0", "4")] {
            let req = format!(
                "POST / HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\nabcd"
            );
            let err = parse(req.as_bytes()).unwrap_err();
            assert_eq!(err.status(), Some(400), "content-length {a}/{b}");
            assert_eq!(err.reason(), "duplicate content-length");
        }
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let wants = |req: &[u8]| {
            let ParseOutcome::Request(r) = parse(req).unwrap() else { panic!() };
            r.wants_keep_alive()
        };
        // HTTP/1.1: keep-alive unless told otherwise.
        assert!(wants(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(!wants(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!wants(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n"));
        assert!(!wants(b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"));
        // HTTP/1.0: close unless opted in.
        assert!(!wants(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n"));
        assert!(wants(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
    }

    #[test]
    fn malformed_http_versions_are_400() {
        for v in ["HTTP/1.", "HTTP/1.x", "HTTP/2.0", "HTTP/1.999"] {
            let req = format!("GET / {v}\r\n\r\n");
            let err = parse(req.as_bytes()).unwrap_err();
            assert_eq!(err.status(), Some(400), "{v}");
        }
    }

    #[test]
    fn response_writer_keep_alive_variant_sets_the_connection_header() {
        let mut out = Vec::new();
        write_response_conn(&mut out, 200, "text/plain", b"ok", &[], true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        let mut out = Vec::new();
        write_response_conn(&mut out, 200, "text/plain", b"ok", &[], false).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("Connection: close\r\n"));
    }

    #[test]
    fn response_writer_emits_well_formed_head() {
        let mut out = Vec::new();
        write_response(&mut out, 503, "text/plain", b"shed\n", &[("Retry-After", "1")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nshed\n"));
    }
}
