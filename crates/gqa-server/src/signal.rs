//! SIGINT/SIGTERM → a global "please shut down" flag ([`install`]), and —
//! opt-in, for reloadable servers only — SIGHUP → a global "please
//! reload" flag ([`install_reload`]).
//!
//! There is no signal crate to lean on, so this registers handlers through
//! the raw libc `signal(2)` symbol (already linked into every Rust binary
//! on unix). The handler bodies are single atomic stores — trivially
//! async-signal-safe. The server's accept loop polls [`triggered`] between
//! accepts and begins its graceful drain when it flips; it polls
//! [`take_reload`] the same way and, when serving a reloadable engine,
//! swaps in a freshly loaded store (the same action as `POST
//! /admin/reload`).
//!
//! The two installs are deliberately separate: a binary serving a fixed
//! (non-reloadable) backend that called one combined install would
//! silently swallow SIGHUP — a surprise for deployments that use SIGHUP
//! to stop a process. [`install`] therefore leaves SIGHUP at its default
//! (terminate); only call [`install_reload`] when something actually
//! polls [`take_reload`] and can act on it.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or [`trigger`] called).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Set the shutdown flag programmatically (tests, and the REPL's quit
/// path).
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Whether a SIGHUP (or [`request_reload`]) is pending, without consuming
/// it.
pub fn reload_requested() -> bool {
    RELOAD.load(Ordering::SeqCst)
}

/// Consume a pending reload request: returns `true` at most once per
/// SIGHUP/[`request_reload`], so exactly one poller acts on each.
pub fn take_reload() -> bool {
    RELOAD.swap(false, Ordering::SeqCst)
}

/// Set the reload flag programmatically (tests, and platforms without
/// SIGHUP).
pub fn request_reload() {
    RELOAD.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::{RELOAD, TRIGGERED};
    use std::sync::atomic::Ordering;

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_reload(_signum: i32) {
        RELOAD.store(true, Ordering::SeqCst);
    }

    /// Install handlers for SIGINT/SIGTERM (shutdown). SIGHUP keeps its
    /// default (terminate) unless [`install_reload`] is also called.
    pub fn install() {
        // SAFETY: `signal` is the POSIX libc function; the handlers only
        // perform an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Install the SIGHUP → reload handler. Only for binaries serving a
    /// reloadable engine — see the module docs for why this is opt-in.
    pub fn install_reload() {
        // SAFETY: as in `install`.
        unsafe {
            signal(SIGHUP, on_reload);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal handling off unix; shutdown still works via
    /// [`super::trigger`] and the server's shutdown flag, reload via
    /// [`super::request_reload`] and `POST /admin/reload`.
    pub fn install() {}

    /// No-op off unix (see [`install`]).
    pub fn install_reload() {}
}

pub use imp::{install, install_reload};

#[cfg(test)]
mod tests {
    #[test]
    fn trigger_flips_the_flag() {
        assert!(!super::triggered() || super::triggered()); // no panic either way
        super::trigger();
        assert!(super::triggered());
    }

    #[test]
    fn reload_requests_are_consumed_exactly_once() {
        assert!(!super::take_reload(), "no request pending initially");
        super::request_reload();
        assert!(super::reload_requested());
        assert!(super::take_reload());
        assert!(!super::take_reload(), "consumed");
        assert!(!super::reload_requested());
    }
}
