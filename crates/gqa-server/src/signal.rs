//! SIGINT/SIGTERM → a global "please shut down" flag.
//!
//! There is no signal crate to lean on, so this registers handlers through
//! the raw libc `signal(2)` symbol (already linked into every Rust binary
//! on unix). The handler body is a single atomic store — trivially
//! async-signal-safe. The server's accept loop polls [`triggered`] between
//! accepts and begins its graceful drain when it flips.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or [`trigger`] called).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Set the flag programmatically (tests, and the REPL's quit path).
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Install handlers for SIGINT and SIGTERM.
    pub fn install() {
        // SAFETY: `signal` is the POSIX libc function; the handler only
        // performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal handling off unix; shutdown still works via
    /// [`super::trigger`] and the server's shutdown flag.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    #[test]
    fn trigger_flips_the_flag() {
        assert!(!super::triggered() || super::triggered()); // no panic either way
        super::trigger();
        assert!(super::triggered());
    }
}
