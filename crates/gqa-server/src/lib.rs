//! `gqa-server` — an HTTP question-answering service over the gAnswer
//! pipeline.
//!
//! The workspace's online path (understand → map → top-k, paper §2.2) was
//! only reachable through the REPL and the bench binaries; this crate puts
//! it behind a network endpoint with the production behaviors a service
//! needs and the paper's offline/online split implies:
//!
//! * `POST /answer` — `{"question": "...", "k": 5, "timeout_ms": 1000,
//!   "explain": false}` → ranked answers, SPARQL, per-stage timings, and
//!   optionally the EXPLAIN trace.
//! * `GET /metrics` — the gqa-obs registry in Prometheus text format,
//!   including the server's own series (`gqa_server_*`).
//! * `GET /healthz` — liveness.
//!
//! Everything is built on `std` — the environment has no crates.io access,
//! so the HTTP parser ([`http`]), JSON codec ([`json`]), bounded queue
//! ([`queue`]), and signal hookup ([`signal`]) are small hand-rolled
//! modules with the failure-mode tests to earn that.
//!
//! See DESIGN.md §10 for the admission-control and deadline policy, and
//! `gqa-bench`'s `loadgen` binary for the closed-loop load harness that
//! produces `BENCH_server.json`.

#![deny(unsafe_code)] // signal.rs carves out the one libc call it needs

pub mod http;
pub mod json;
pub mod queue;
pub mod server;
#[allow(unsafe_code)]
pub mod signal;

pub use server::{Engine, ServeStats, Server, ServerConfig, FAULT_SITE_WORKER};

// The multi-tenant registry (named stores, per-tenant caches, incremental
// upserts) lives in its own crate; re-exported for servers built over
// [`Server::bind_registry`].
pub use gqa_registry::{
    valid_tenant_name, Manifest, ManifestEntry, Registry, Tenant, TenantError, TenantState,
    TenantStatus, UpsertOutcome,
};
