//! Fuzz/property tests for the hand-rolled HTTP parser.
//!
//! The contract under test (see `gqa_server::http`): for ANY byte stream,
//! delivered in ANY fragmentation, `read_request` returns a well-formed
//! request, a clean close, or an error that maps to a 4xx status. It never
//! panics, never loops forever, and never reads beyond its limits.

use gqa_server::http::{read_request, HttpError, Limits, ParseOutcome};
use proptest::prelude::*;
use std::io::{BufReader, Read};

/// A reader that delivers its bytes in a fixed fragmentation pattern,
/// simulating torn TCP reads: each `Read::read` call yields at most the
/// next chunk size (cycling), regardless of the buffer offered.
struct Torn {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl Torn {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> Self {
        Torn { data, pos: 0, chunks, turn: 0 }
    }
}

impl Read for Torn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.chunks.get(self.turn % self.chunks.len().max(1)).copied().unwrap_or(1);
        self.turn += 1;
        let n = chunk.max(1).min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Drive the parser over a byte stream with the given fragmentation and
/// small internal buffer (so `fill_buf` sees the tearing), collecting
/// outcomes until close/error. Returns (#requests, final error if any).
fn drive(bytes: &[u8], chunks: Vec<usize>) -> (usize, Option<HttpError>) {
    let limits = Limits::default();
    let mut reader = BufReader::with_capacity(7, Torn::new(bytes.to_vec(), chunks));
    let mut parsed = 0usize;
    loop {
        match read_request(&mut reader, &limits) {
            Ok(ParseOutcome::Request(_)) => {
                parsed += 1;
                // An adversary pipelining forever must not wedge us; the
                // server itself reads one request per connection.
                if parsed > 10_000 {
                    return (parsed, None);
                }
            }
            Ok(ParseOutcome::Closed) => return (parsed, None),
            Err(e) => return (parsed, Some(e)),
        }
    }
}

/// Errors surfaced to a client must map to a 4xx (transport errors are
/// impossible over an in-memory reader).
fn assert_taxonomy(err: &HttpError) {
    let status = err.status().expect("in-memory parse error must map to a status");
    assert!((400..500).contains(&status), "parser produced non-4xx status {status} for {err:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, arbitrary fragmentation: never panic, never a
    /// status outside 4xx.
    #[test]
    fn random_bytes_never_panic(
        data in prop::collection::vec(0u8..=255, 0..300),
        chunks in prop::collection::vec(1usize..9, 1..5),
    ) {
        let (_, err) = drive(&data, chunks);
        if let Some(e) = err {
            assert_taxonomy(&e);
        }
    }

    /// A valid request parses identically under every fragmentation.
    #[test]
    fn torn_reads_are_transparent(chunks in prop::collection::vec(1usize..6, 1..6), k in 1usize..999) {
        let body = format!("{{\"question\":\"q{k}\"}}");
        let raw = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let limits = Limits::default();
        let mut reader = BufReader::with_capacity(3, Torn::new(raw.clone().into_bytes(), chunks));
        let out = read_request(&mut reader, &limits).expect("valid request must parse");
        let ParseOutcome::Request(req) = out else { panic!("unexpected close") };
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path.as_str(), "/answer");
        prop_assert_eq!(req.body, body.into_bytes());
    }

    /// Truncating a valid request at any byte yields a clean close (cut at
    /// a request boundary) or a 4xx — never a bogus success, never a hang.
    #[test]
    fn every_prefix_fails_cleanly(cut in 0usize..71, chunks in prop::collection::vec(1usize..5, 1..4)) {
        let raw = b"POST /answer HTTP/1.1\r\nHost: t\r\nContent-Length: 17\r\n\r\n{\"question\":\"x\"}!";
        prop_assert_eq!(raw.len(), 71);
        let (parsed, err) = drive(&raw[..cut], chunks);
        if cut < raw.len() {
            prop_assert_eq!(parsed, 0);
            match err {
                None => prop_assert_eq!(cut, 0, "only the empty prefix is a clean close"),
                Some(e) => assert_taxonomy(&e),
            }
        }
    }

    /// Declared Content-Length beyond the limit is always 413, regardless
    /// of how much body actually follows.
    #[test]
    fn oversized_declared_body_is_413(extra in 1u64..1_000_000, sent in 0usize..64) {
        let limits = Limits::default();
        let declared = limits.max_body_bytes as u64 + extra;
        let raw = format!(
            "POST /answer HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n{}",
            "x".repeat(sent)
        );
        let (parsed, err) = drive(raw.as_bytes(), vec![5]);
        prop_assert_eq!(parsed, 0);
        prop_assert_eq!(err.expect("must be rejected").status(), Some(413));
    }

    /// Malformed Content-Length values are always 400.
    #[test]
    fn bad_content_length_is_400(
        bad in prop::sample::select(vec![
            "abc", "-5", "+5", "5x", "0x1f", "1 2", "999999999999999999999999999", "", " ",
        ]),
    ) {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
        let (parsed, err) = drive(raw.as_bytes(), vec![3]);
        prop_assert_eq!(parsed, 0);
        prop_assert_eq!(err.expect("must be rejected").status(), Some(400));
    }

    /// Repeated Content-Length headers are always 400, whether the copies
    /// agree or not: two frames' worth of ambiguity about where the body
    /// ends is a request-smuggling vector, so the parser refuses rather
    /// than picking one (RFC 9112 §6.3).
    #[test]
    fn duplicate_content_length_is_400(
        first in 0usize..32,
        second in 0usize..32,
        chunks in prop::collection::vec(1usize..6, 1..4),
    ) {
        let body = "z".repeat(first.max(second));
        let raw = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nContent-Length: {first}\r\nContent-Length: {second}\r\n\r\n{body}",
        );
        let (parsed, err) = drive(raw.as_bytes(), chunks);
        prop_assert_eq!(parsed, 0, "a duplicate-CL request must never parse");
        prop_assert_eq!(err.expect("must be rejected").status(), Some(400));
    }

    /// Valid requests followed by pipelined garbage: the valid prefix
    /// parses, the garbage dies with a 4xx (or a clean close), and the
    /// parser never spins.
    #[test]
    fn pipelined_garbage_after_valid_requests(
        n in 0usize..4,
        garbage in prop::collection::vec(0u8..=255, 0..120),
        chunks in prop::collection::vec(1usize..7, 1..4),
    ) {
        let mut bytes = Vec::new();
        for i in 0..n {
            bytes.extend_from_slice(
                format!("GET /healthz?i={i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
            );
        }
        bytes.extend_from_slice(&garbage);
        let (parsed, err) = drive(&bytes, chunks);
        prop_assert!(parsed >= n, "lost a valid pipelined request: {parsed} < {n}");
        if let Some(e) = err {
            assert_taxonomy(&e);
        }
    }
}

#[test]
fn header_flood_is_bounded() {
    // An attacker streaming endless headers must hit the head limit, not
    // grow memory without bound.
    let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..10_000 {
        raw.extend_from_slice(format!("X-{i}: {}\r\n", "v".repeat(40)).as_bytes());
    }
    let (parsed, err) = drive(&raw, vec![11]);
    assert_eq!(parsed, 0);
    assert_eq!(err.expect("flood must be rejected").status(), Some(431));
}

#[test]
fn many_small_headers_hit_the_count_limit() {
    let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..500 {
        raw.extend_from_slice(format!("a{i}: 1\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    let (_, err) = drive(&raw, vec![13]);
    assert_eq!(err.expect("too many headers must be rejected").status(), Some(431));
}
