//! Multi-tenant serving end-to-end: one server, many named stores.
//!
//! What is asserted, per ISSUE acceptance:
//! * `/answer` routes by the optional `store` field; a bad store name is
//!   a 400 naming the offending tenant, never a 500 or a panic;
//! * concurrent reload/upsert of tenant A is invisible to in-flight
//!   tenant-B requests — B's answers stay byte-identical, B's epoch stays
//!   put, and B's cache entries keep hitting;
//! * the admin lifecycle works over HTTP: list, live-load through the
//!   factory, incremental upsert making a brand-new fact answerable at a
//!   bumped epoch, per-store health, unload, and default-tenant
//!   protection.
//!
//! Same discipline as `e2e.rs`: client threads collect outcomes instead
//! of asserting, the server is always shut down and joined, assertions
//! run last.

use gqa_core::concurrency::Concurrency;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::minidbp::mini_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_obs::Obs;
use gqa_rdf::ntriples::parse_delta;
use gqa_server::{Engine, Registry, ServeStats, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A client closure handed to [`serve_and_drive`].
type Client<T> = Box<dyn FnOnce(SocketAddr) -> T + Send>;
/// (status, full response text including headers) on success.
type Outcome = Result<Vec<(u16, String)>, String>;

/// A new city and its mayor, absent from `mini_dbpedia`. The IRIs use the
/// same compact CURIE form the curated store interns (`parse_delta` keeps
/// whatever sits between the angle brackets verbatim), so the upsert joins
/// the existing `dbo:leaderName` schema and the "mayor of" dictionary
/// entry keeps working for the new subject.
const GRAPHVILLE_DELTA: &str = "\
<dbr:Graphville> <rdf:type> <dbo:City> .\n\
<dbr:Graphville> <rdfs:label> \"Graphville\" .\n\
<dbr:Graphville> <dbo:leaderName> <dbr:Ada_Graphton> .\n\
<dbr:Ada_Graphton> <rdf:type> <dbo:Person> .\n\
<dbr:Ada_Graphton> <rdfs:label> \"Ada Graphton\" .\n";

/// An upsertable engine over the mini graph: full rebuild re-reads the
/// generator, assemble re-derives the pipeline around a mutated store.
fn engine(obs: &Obs) -> Engine {
    let obs = obs.clone();
    let build = move || {
        let store = Arc::new(mini_dbpedia());
        let dict = mini_dict(&store);
        let config =
            GAnswerConfig { concurrency: Concurrency::serial(), ..GAnswerConfig::default() };
        Ok(GAnswer::shared(store, dict, config, obs.clone()))
    };
    let initial = build().unwrap();
    let (dict, config, aobs) =
        (initial.dict().clone(), initial.config.clone(), initial.obs().clone());
    let assemble = move |store: gqa_rdf::Store| {
        Ok(GAnswer::shared(Arc::new(store), dict.clone(), config.clone(), aobs.clone()))
    };
    Engine::with_assemble(initial, build, assemble)
}

/// Send raw bytes, read to EOF, return (status, full text incl. headers).
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    s.write_all(bytes).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("unparseable response: {text:?}"))?;
    Ok((status, text))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), String> {
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    send_raw(addr, req.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    send_raw(addr, req.as_bytes())
}

/// Body of a full response text (everything after the blank line).
fn body_of(text: &str) -> &str {
    text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

/// The deterministic prefix of an `/answer` body: everything before the
/// wall-clock `timings_ms` object.
fn semantic_prefix(body: &str) -> &str {
    body.split("\"timings_ms\"").next().unwrap()
}

/// The one `GET /admin/stores` array element describing `name` (keys are
/// serialized alphabetically, so every tenant object starts at `"bytes"`).
fn tenant_chunk<'l>(listing: &'l str, name: &str) -> &'l str {
    let tag = format!("\"name\":\"{name}\"");
    listing
        .split("{\"bytes\"")
        .find(|chunk| chunk.contains(&tag))
        .unwrap_or_else(|| panic!("no {name} tenant in {listing}"))
}

/// Run `clients` concurrently against a served `Server`, always shut the
/// server down, and hand back (per-client outcomes, server stats).
fn serve_and_drive<T: Send>(
    server: &Server<'_>,
    clients: Vec<Client<T>>,
) -> (Vec<std::thread::Result<T>>, ServeStats) {
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let handles: Vec<_> = clients.into_iter().map(|c| scope.spawn(move || c(addr))).collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        shutdown.store(true, Ordering::SeqCst);
        let stats = run.join().expect("server thread panicked");
        (outcomes, stats)
    })
}

fn unwrap_log<T>(outcomes: Vec<std::thread::Result<Result<T, String>>>) -> Vec<T> {
    outcomes
        .into_iter()
        .map(|o| o.expect("client thread panicked").expect("client i/o failed"))
        .collect()
}

#[test]
fn answer_routes_by_store_field_and_bad_stores_are_400() {
    let obs = Obs::new();
    let registry =
        Registry::new("default", Arc::new(engine(&obs)), 16, obs.clone()).expect("registry");
    registry.insert("city", Arc::new(engine(&obs))).expect("insert");
    // Tenant "city" alone learns about Graphville before the server binds.
    registry.upsert(Some("city"), parse_delta(GRAPHVILLE_DELTA).unwrap()).expect("pre-bind upsert");

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::new(registry),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("bind");

    let berlin = r#"{"question": "Who is the mayor of Berlin?", "k": 3}"#;
    let graphville_default = r#"{"question": "Who is the mayor of Graphville?", "k": 3}"#;
    let graphville_city =
        r#"{"question": "Who is the mayor of Graphville?", "k": 3, "store": "city"}"#;
    let berlin_explicit =
        r#"{"question": "Who is the mayor of Berlin?", "k": 3, "store": "default"}"#;
    let unknown = r#"{"question": "Who is the mayor of Berlin?", "store": "nope"}"#;
    let traversal = r#"{"question": "Who is the mayor of Berlin?", "store": "../../etc"}"#;
    let non_string = r#"{"question": "Who is the mayor of Berlin?", "store": 5}"#;

    let client = Box::new(move |addr: SocketAddr| -> Outcome {
        Ok(vec![
            post(addr, "/answer", berlin)?,
            post(addr, "/answer", berlin_explicit)?,
            post(addr, "/answer", graphville_city)?,
            post(addr, "/answer", graphville_default)?,
            post(addr, "/answer", unknown)?,
            post(addr, "/answer", traversal)?,
            post(addr, "/answer", non_string)?,
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = unwrap_log(outcomes).remove(0);

    // Default routing (absent and explicit) answers from the base graph.
    assert_eq!(log[0].0, 200, "{}", log[0].1);
    assert!(log[0].1.contains("Klaus Wowereit"), "{}", log[0].1);
    assert_eq!(log[1].0, 200, "{}", log[1].1);
    assert!(log[1].1.contains("Klaus Wowereit"), "{}", log[1].1);

    // The upserted fact answers only on the tenant that received it.
    assert_eq!(log[2].0, 200, "{}", log[2].1);
    assert!(log[2].1.contains("Ada Graphton"), "{}", log[2].1);
    assert!(
        !log[3].1.contains("Ada Graphton"),
        "default tenant leaked city-only data: {}",
        log[3].1
    );

    // Bad store fields are client errors that name the problem.
    assert_eq!(log[4].0, 400, "{}", log[4].1);
    assert!(log[4].1.contains("nope"), "{}", log[4].1);
    assert_eq!(log[5].0, 400, "{}", log[5].1);
    assert_eq!(log[6].0, 400, "{}", log[6].1);
    assert!(log[6].1.contains("string"), "{}", log[6].1);
}

#[test]
fn mutating_one_tenant_is_invisible_to_in_flight_requests_on_another() {
    let obs = Obs::new();
    let registry =
        Registry::new("default", Arc::new(engine(&obs)), 16, obs.clone()).expect("registry");
    registry.insert("churner", Arc::new(engine(&obs))).expect("insert churner");
    registry.insert("steady", Arc::new(engine(&obs))).expect("insert steady");

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::new(registry),
        ServerConfig { workers: 3, ..ServerConfig::default() },
    )
    .expect("bind");

    const OBSERVER_ROUNDS: usize = 24;
    const MUTATOR_ROUNDS: usize = 12;
    let q = r#"{"question": "Who is the mayor of Berlin?", "k": 3, "store": "steady"}"#;

    // Observer: hammer tenant "steady" with the same question while the
    // mutator churns "churner". First response seeds the cache; every
    // later one must be a hit with a byte-identical payload.
    let observer = Box::new(move |addr: SocketAddr| -> Outcome {
        let mut log = Vec::with_capacity(OBSERVER_ROUNDS + 1);
        for _ in 0..OBSERVER_ROUNDS {
            log.push(post(addr, "/answer", q)?);
        }
        log.push(get(addr, "/admin/stores")?);
        Ok(log)
    }) as Client<Outcome>;

    // Mutator: alternate full reloads and incremental upserts of
    // "churner" — the two mutation paths the registry serializes.
    let mutator = Box::new(move |addr: SocketAddr| -> Outcome {
        let mut log = Vec::with_capacity(MUTATOR_ROUNDS);
        for round in 0..MUTATOR_ROUNDS {
            log.push(if round % 2 == 0 {
                post(addr, "/admin/stores/reload", r#"{"name": "churner"}"#)?
            } else {
                let delta = format!("<x:subj_{round}> <x:grew> <x:obj_{round}> .\n");
                post(addr, "/admin/stores/churner/upsert", &delta)?
            });
        }
        Ok(log)
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![observer, mutator]);
    let mut logs = unwrap_log(outcomes);
    let mutator_log = logs.pop().unwrap();
    let observer_log = logs.pop().unwrap();

    // Every mutation succeeded and kept bumping churner's epoch.
    for (i, (status, text)) in mutator_log.iter().enumerate() {
        assert_eq!(*status, 200, "mutation {i}: {text}");
    }
    let last = body_of(&mutator_log.last().unwrap().1);
    assert!(
        last.contains(&format!("\"epoch\":{}", MUTATOR_ROUNDS + 1)),
        "churner should sit at epoch {} after {} mutations: {last}",
        MUTATOR_ROUNDS + 1,
        MUTATOR_ROUNDS
    );

    // The steady tenant never noticed: identical answers, cache hits all
    // the way after the seed, and (checked via the final listing) an
    // epoch still at 1 with zero stale cache entries.
    let seed = &observer_log[0];
    assert_eq!(seed.0, 200, "{}", seed.1);
    assert!(seed.1.contains("Klaus Wowereit"), "{}", seed.1);
    assert!(seed.1.contains("X-Cache: miss"), "{}", seed.1);
    for (i, (status, text)) in observer_log[1..OBSERVER_ROUNDS].iter().enumerate() {
        assert_eq!(*status, 200, "observer round {}: {text}", i + 1);
        assert!(text.contains("X-Cache: hit"), "observer round {}: {text}", i + 1);
        assert_eq!(
            semantic_prefix(body_of(text)),
            semantic_prefix(body_of(&seed.1)),
            "answer drifted on round {}",
            i + 1
        );
    }

    let listing = body_of(&observer_log[OBSERVER_ROUNDS].1);
    let steady = tenant_chunk(listing, "steady");
    assert!(steady.contains("\"epoch\":1"), "steady epoch moved: {steady}");
    assert!(steady.contains("\"stale\":0"), "steady cache saw stale entries: {steady}");
}

#[test]
fn admin_lifecycle_load_upsert_healthz_unload_over_http() {
    let obs = Obs::new();
    let factory_obs = obs.clone();
    let registry = Registry::new("default", Arc::new(engine(&obs)), 16, obs.clone())
        .expect("registry")
        .with_factory(Box::new(move |_name, source| {
            if source == "mini" {
                Ok(engine(&factory_obs))
            } else {
                Err(format!("unknown source {source:?}"))
            }
        }));

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::new(registry),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("bind");

    let graphville = r#"{"question": "Who is the mayor of Graphville?", "k": 3, "store": "extra"}"#;
    let client = Box::new(move |addr: SocketAddr| -> Outcome {
        Ok(vec![
            get(addr, "/admin/stores")?, // 0
            post(addr, "/admin/stores/load", r#"{"name":"extra","source":"mini"}"#)?, // 1
            post(addr, "/admin/stores/extra/upsert", GRAPHVILLE_DELTA)?, // 2
            post(addr, "/answer", graphville)?, // 3
            get(addr, "/admin/stores")?, // 4
            post(addr, "/admin/stores/load", r#"{"name":"broken","source":"nt"}"#)?, // 5
            get(addr, "/healthz")?,      // 6
            post(addr, "/admin/stores/unload", r#"{"name":"broken"}"#)?, // 7
            post(addr, "/admin/stores/unload", r#"{"name":"extra"}"#)?, // 8
            post(addr, "/answer", graphville)?, // 9
            post(addr, "/admin/stores/unload", r#"{"name":"default"}"#)?, // 10
            get(addr, "/healthz")?,      // 11
            get(addr, "/admin/stores/load")?, // 12
            post(addr, "/admin/stores/extra/nope", "")?, // 13
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = unwrap_log(outcomes).remove(0);

    // 0: boot listing shows exactly the default tenant.
    assert_eq!(log[0].0, 200, "{}", log[0].1);
    let boot = body_of(&log[0].1);
    assert!(boot.contains("\"default\":\"default\""), "{boot}");
    assert!(boot.contains("\"name\":\"default\""), "{boot}");
    assert!(!boot.contains("\"name\":\"extra\""), "{boot}");

    // 1: live-load through the factory lands ready at epoch 1.
    assert_eq!(log[1].0, 200, "{}", log[1].1);
    let loaded = body_of(&log[1].1);
    assert!(loaded.contains("\"store\":\"extra\""), "{loaded}");
    assert!(loaded.contains("\"epoch\":1"), "{loaded}");

    // 2: the upsert applies atomically and bumps only extra's epoch.
    assert_eq!(log[2].0, 200, "{}", log[2].1);
    let upserted = body_of(&log[2].1);
    assert!(upserted.contains("\"epoch\":2"), "{upserted}");
    assert!(upserted.contains("\"added\":5"), "{upserted}");
    assert!(upserted.contains("\"deleted\":0"), "{upserted}");
    assert!(upserted.contains("\"compaction_scheduled\":false"), "{upserted}");

    // 3: the brand-new fact is answerable over HTTP (the bumped epoch is
    // confirmed in the listing below).
    assert_eq!(log[3].0, 200, "{}", log[3].1);
    assert!(log[3].1.contains("Ada Graphton"), "{}", log[3].1);

    // 4: the listing reflects the overlay backlog and default isolation.
    let listing = body_of(&log[4].1);
    let extra = tenant_chunk(listing, "extra");
    assert!(extra.contains("\"epoch\":2"), "{extra}");
    assert!(extra.contains("\"adds\":5"), "{extra}");
    let default = tenant_chunk(listing, "default");
    assert!(default.contains("\"epoch\":1"), "{default}");

    // 5–6: a failed load is a 503 and shows up in health without
    // degrading the default store's 200.
    assert_eq!(log[5].0, 503, "{}", log[5].1);
    assert!(log[5].1.contains("unknown source"), "{}", log[5].1);
    assert_eq!(log[6].0, 200, "{}", log[6].1);
    let health = body_of(&log[6].1);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"degraded\":true"), "{health}");
    assert!(health.contains("\"broken\":{\"error\":\"unknown source"), "{health}");
    assert!(health.contains("\"state\":\"failed\""), "{health}");

    // 7–10: unloads drop routing; the default tenant is protected.
    assert_eq!(log[7].0, 200, "{}", log[7].1);
    assert_eq!(log[8].0, 200, "{}", log[8].1);
    assert_eq!(log[9].0, 400, "unloaded store should 400: {}", log[9].1);
    assert!(log[9].1.contains("extra"), "{}", log[9].1);
    assert_eq!(log[10].0, 409, "{}", log[10].1);

    // 11: health is clean again once the failed slot is gone.
    let health = body_of(&log[11].1);
    assert_eq!(log[11].0, 200, "{}", log[11].1);
    assert!(health.contains("\"degraded\":false"), "{health}");

    // 12–13: method and path mistakes stay 405/404, never 500.
    assert_eq!(log[12].0, 405, "{}", log[12].1);
    assert_eq!(log[13].0, 404, "{}", log[13].1);
}

#[test]
fn poisoned_wal_degrades_healthz_and_upserts_503_with_retry_after() {
    let dir = std::env::temp_dir().join(format!("gqa-degraded-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::new();
    // Every WAL sync "tears": the first durable upsert poisons the log.
    let plan = gqa_fault::FaultPlan::parse("wal.fsync:torn:1.0", 0).expect("plan");
    let durable = engine(&obs).with_durable(&dir, plan).expect("durable engine");
    let registry = Registry::new("default", Arc::new(durable), 16, obs.clone()).expect("registry");

    let server = Server::bind_registry(
        "127.0.0.1:0",
        Arc::new(registry),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("bind");

    let question = r#"{"question": "Who is the mayor of Berlin?", "k": 3}"#;
    let client = Box::new(move |addr: SocketAddr| -> Outcome {
        Ok(vec![
            post(addr, "/admin/stores/default/upsert", GRAPHVILLE_DELTA)?, // 0: poisons
            post(addr, "/admin/stores/default/upsert", GRAPHVILLE_DELTA)?, // 1: poisoned
            get(addr, "/healthz")?,                                        // 2
            get(addr, "/admin/stores")?,                                   // 3
            post(addr, "/answer", question)?,                              // 4
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = unwrap_log(outcomes).remove(0);

    // 0–1: both upserts fail 503 with a retry hint — the first tore its
    // sync, the second hit the already-poisoned log.
    for i in [0, 1] {
        assert_eq!(log[i].0, 503, "{}", log[i].1);
        assert!(log[i].1.contains("Retry-After: 1"), "no Retry-After: {}", log[i].1);
    }

    // 2: health stays 200 (reads work) but reports the degradation.
    assert_eq!(log[2].0, 200, "{}", log[2].1);
    let health = body_of(&log[2].1);
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"state\":\"degraded\""), "{health}");
    assert!(health.contains("\"degraded\":true"), "{health}");

    // 3: the listing agrees and exposes the poisoned flag.
    let listing = body_of(&log[3].1);
    let default = tenant_chunk(listing, "default");
    assert!(default.contains("\"state\":\"degraded\""), "{default}");
    assert!(default.contains("\"poisoned\":true"), "{default}");

    // 4: reads still answer.
    assert_eq!(log[4].0, 200, "{}", log[4].1);

    let _ = std::fs::remove_dir_all(&dir);
}
