//! Chaos tests: deterministic fault injection against a live server.
//!
//! The contract under test is **fault isolation**: an injected worker
//! panic costs exactly one request (a 500), never a worker thread, never
//! the server, and never another client's response. Determinism comes
//! from the seeded `FaultPlan` — the number of injections over N calls
//! is a pure function of (seed, site, call index), so the client-side
//! 500 tally, the plan's own fired counter, and the server's
//! `gqa_server_worker_panics_total` series must all agree exactly.

use gqa_core::concurrency::Concurrency;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::minidbp::mini_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_fault::{Budget, FaultPlan};
use gqa_obs::Obs;
use gqa_rdf::Store;
use gqa_server::{Server, ServerConfig, FAULT_SITE_WORKER};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

type Reply = Result<(u16, String), String>;

fn system(store: &Store, config: GAnswerConfig) -> GAnswer<'_> {
    GAnswer::with_obs(store, mini_dict(store), config, Obs::new())
}

fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Reply {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    s.write_all(bytes).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("unparseable response: {text:?}"))?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}

fn post_answer(addr: SocketAddr, json: &str) -> Reply {
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        json.len(),
        json
    );
    send_raw(addr, req.as_bytes())
}

/// Silence the expected "injected fault" panic messages so the test log
/// stays readable; anything else still reports through the default hook.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected =
            info.payload().downcast_ref::<String>().is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default(info);
        }
    }));
}

/// 5% seeded worker panics under concurrent load: exactly the faulted
/// requests see 500s, every worker survives to the drain, and the three
/// independent tallies (clients, plan, metrics) agree.
#[test]
fn injected_worker_panics_cost_exactly_one_request_each() {
    quiet_injected_panics();
    let store = mini_dbpedia();
    let sys = system(
        &store,
        GAnswerConfig { concurrency: Concurrency::serial(), ..GAnswerConfig::default() },
    );
    let plan = FaultPlan::parse(&format!("{FAULT_SITE_WORKER}:panic:0.05"), 1).expect("spec");
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig {
            workers: 3,
            queue_capacity: 64,
            default_timeout_ms: 20_000,
            fault: plan.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    let (outcomes, stats) = std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|_| {
                            post_answer(addr, r#"{"question": "Who is the mayor of Berlin?"}"#)
                        })
                        .collect::<Vec<Reply>>()
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        shutdown.store(true, Ordering::SeqCst);
        let stats = run.join().expect("server thread panicked");
        (outcomes, stats)
    });

    let mut ok = 0u64;
    let mut faulted = 0u64;
    for outcome in outcomes {
        for result in outcome.expect("client thread panicked") {
            let (status, body) = result.expect("client i/o failed");
            match status {
                200 => {
                    assert!(body.contains("Klaus Wowereit"), "{body}");
                    ok += 1;
                }
                500 => {
                    assert!(body.contains("panicked"), "{body}");
                    faulted += 1;
                }
                other => panic!("unexpected status {other}: {body}"),
            }
        }
    }

    // Every request got exactly one response, through panics and all.
    assert_eq!(ok + faulted, (CLIENTS * PER_CLIENT) as u64);
    assert!(faulted > 0, "seed 1 fires within 100 calls at p=0.05");
    // The three tallies agree: client 500s == injections == metric.
    assert_eq!(faulted, plan.fired(FAULT_SITE_WORKER), "client 500s vs plan fired");
    sys.publish_metrics();
    let metrics = sys.obs().prometheus();
    assert!(
        metrics.contains(&format!("gqa_server_worker_panics_total {faulted}")),
        "metrics disagree with {faulted} client 500s:\n{metrics}"
    );
    // No worker died: the full drain happened and nothing was dropped.
    assert_eq!(stats.accepted, (CLIENTS * PER_CLIENT) as u64, "{stats:?}");
    assert_eq!(stats.served, stats.accepted, "{stats:?}");
    // Tail sampling pinned every faulted request: the flight recorder's
    // degraded view retains exactly the injected 500s (the default
    // 256-slot ring reserves 128 pinned slots, far above ~5 faults).
    let recorder = server.recorder().expect("recorder is on by default");
    let retained_faults = recorder
        .snapshot()
        .iter()
        .filter(|t| t.failure.is_some())
        .inspect(|t| {
            assert!(t.pinned, "faulted trace {} retained unpinned", t.id);
            assert_eq!(t.status, 500, "{t:?}");
        })
        .count() as u64;
    assert_eq!(retained_faults, faulted, "flight recorder lost faulted traces");
}

/// A tight frontier budget surfaces over HTTP: 200 with a
/// `"degraded": {"budget": "frontier"}` object, and the degradation is
/// visible on /metrics.
#[test]
fn budget_degradation_surfaces_in_response_and_metrics() {
    let store = mini_dbpedia();
    let sys = system(
        &store,
        GAnswerConfig {
            concurrency: Concurrency::serial(),
            budget: Budget { max_frontier: 8, ..Budget::unlimited() },
            ..GAnswerConfig::default()
        },
    );
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig { workers: 2, default_timeout_ms: 20_000, ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();

    let (reply, metrics_reply) = std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let reply = post_answer(
            addr,
            r#"{"question": "Who was married to an actor that played in Philadelphia?"}"#,
        );
        let metrics_reply =
            send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        shutdown.store(true, Ordering::SeqCst);
        run.join().expect("server thread panicked");
        (reply, metrics_reply)
    });

    let (status, body) = reply.expect("client i/o failed");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"degraded\""), "{body}");
    assert!(body.contains("\"frontier\""), "{body}");

    let (mstatus, metrics) = metrics_reply.expect("metrics i/o failed");
    assert_eq!(mstatus, 200);
    assert!(metrics.contains("gqa_pipeline_degraded_total{budget=\"frontier\"} 1"), "{metrics}");
}

/// An armed fault plan disarms the answer cache: with `--cache`-style
/// capacity configured AND worker panics injected, every request still
/// reaches the injection site (the plan's fired count matches the client
/// 500 tally over *all* requests) and the cache records zero hits — a
/// memoized answer never masks a fault that chaos runs exist to observe.
#[test]
fn armed_fault_plan_bypasses_the_answer_cache() {
    quiet_injected_panics();
    let store = mini_dbpedia();
    let sys = system(
        &store,
        GAnswerConfig { concurrency: Concurrency::serial(), ..GAnswerConfig::default() },
    );
    let plan = FaultPlan::parse(&format!("{FAULT_SITE_WORKER}:panic:0.1"), 7).expect("spec");
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig {
            workers: 2,
            default_timeout_ms: 20_000,
            cache_capacity: 256,
            fault: plan.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();

    // The same question 40 times: prime cache-hit territory, if the cache
    // were consulted.
    const REQUESTS: usize = 40;
    let (replies, metrics_reply) = std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let replies: Vec<Reply> = (0..REQUESTS)
            .map(|_| post_answer(addr, r#"{"question": "Who is the mayor of Berlin?"}"#))
            .collect();
        let metrics_reply =
            send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        shutdown.store(true, Ordering::SeqCst);
        run.join().expect("server thread panicked");
        (replies, metrics_reply)
    });

    let mut ok = 0u64;
    let mut faulted = 0u64;
    for reply in replies {
        let (status, body) = reply.expect("client i/o failed");
        match status {
            200 => {
                assert!(body.contains("Klaus Wowereit"), "{body}");
                ok += 1;
            }
            500 => {
                assert!(body.contains("panicked"), "{body}");
                faulted += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(ok + faulted, REQUESTS as u64);
    assert!(faulted > 0, "seed 7 fires within 40 calls at p=0.1");
    // Every request reached the injection site — nothing was absorbed by
    // a cache hit upstream of it.
    assert_eq!(faulted, plan.fired(FAULT_SITE_WORKER));

    let (mstatus, metrics) = metrics_reply.expect("metrics i/o failed");
    assert_eq!(mstatus, 200);
    assert!(metrics.contains("gqa_server_cache_hits_total 0"), "{metrics}");
    assert!(metrics.contains("gqa_server_cache_misses_total 0"), "{metrics}");
}
