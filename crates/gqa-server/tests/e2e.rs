//! End-to-end robustness tests: a real server on a loopback socket, real
//! concurrent clients, and the full response-code taxonomy.
//!
//! What is asserted, per ISSUE acceptance:
//! * every category of traffic (valid / malformed / unroutable / expired)
//!   gets exactly the status the serving contract promises;
//! * concurrent mixed load neither deadlocks nor drops responses — every
//!   request sent before shutdown receives a complete HTTP response, and
//!   the server's own `ServeStats` agree with the client-side tally;
//! * graceful shutdown drains: `Server::run` returns after the flag flips,
//!   with queued requests answered, not dropped.
//!
//! Discipline used throughout: client threads **collect** outcomes instead
//! of asserting, the server is always shut down and joined, and assertions
//! run last — so a failing expectation reports as a failure instead of
//! deadlocking the thread scope against a server that never exits.

use gqa_core::concurrency::Concurrency;
use gqa_core::pipeline::{GAnswer, GAnswerConfig};
use gqa_datagen::minidbp::mini_dbpedia;
use gqa_datagen::patty::mini_dict;
use gqa_obs::{AccessLog, Obs};
use gqa_rdf::Store;
use gqa_server::{Engine, ServeStats, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// (status, body) on success; never panics inside a client thread.
type Reply = Result<(u16, String), String>;
/// A client closure handed to [`serve_and_drive`].
type Client<T> = Box<dyn FnOnce(SocketAddr) -> T + Send>;

fn system(store: &Store) -> GAnswer<'_> {
    let dict = mini_dict(store);
    let config = GAnswerConfig {
        concurrency: Concurrency::serial(), // server workers are the parallelism
        ..GAnswerConfig::default()
    };
    GAnswer::with_obs(store, dict, config, Obs::new())
}

/// Send raw bytes, read to EOF, return (status, body). Callers send
/// `Connection: close` so the server still closes after one response
/// (keep-alive is exercised by its own test below). Never panics — errors
/// come back as `Err` strings so a failure inside a thread scope cannot
/// deadlock the test.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Reply {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    s.write_all(bytes).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("unparseable response: {text:?}"))?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}

fn post_answer(addr: SocketAddr, json: &str) -> Reply {
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        json.len(),
        json
    );
    send_raw(addr, req.as_bytes())
}

/// Like [`send_raw`] but returns (status, full response text including
/// headers) — for tests that assert on `X-Cache`/`Connection` headers.
fn send_raw_full(addr: SocketAddr, bytes: &[u8]) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    s.write_all(bytes).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("unparseable response: {text:?}"))?;
    Ok((status, text))
}

fn post_answer_full(addr: SocketAddr, json: &str) -> Result<(u16, String), String> {
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        json.len(),
        json
    );
    send_raw_full(addr, req.as_bytes())
}

/// Read exactly one framed HTTP response off a keep-alive connection:
/// head up to the blank line, then `Content-Length` bytes of body.
fn read_one_response(reader: &mut impl BufRead) -> Result<(u16, String, String), String> {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("read head: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-head".into());
        }
        let done = line == "\r\n";
        head.push_str(&line);
        if done {
            break;
        }
        if head.len() > 64 * 1024 {
            return Err("oversized head".into());
        }
    }
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("unparseable head: {head:?}"))?;
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| format!("no content-length in {head:?}"))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
    Ok((status, head, String::from_utf8_lossy(&body).into_owned()))
}

/// The deterministic prefix of an `/answer` body: everything before the
/// wall-clock `timings_ms` object (answers, boolean, count, sparql,
/// failure, degraded — in the serializer's fixed key order).
fn semantic_prefix(body: &str) -> &str {
    body.split("\"timings_ms\"").next().unwrap()
}

/// Run `clients` concurrently against a served `Server`, always shut the
/// server down, and hand back (per-client outcomes, server stats).
fn serve_and_drive<T: Send>(
    server: &Server<'_>,
    clients: Vec<Client<T>>,
) -> (Vec<std::thread::Result<T>>, ServeStats) {
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let handles: Vec<_> = clients.into_iter().map(|c| scope.spawn(move || c(addr))).collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        // Shut down no matter what the clients did — this is what keeps an
        // assertion failure from deadlocking against a live server.
        shutdown.store(true, Ordering::SeqCst);
        let stats = run.join().expect("server thread panicked");
        (outcomes, stats)
    })
}

#[test]
fn taxonomy_no_deadlock_and_clean_drain_under_concurrent_mixed_load() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig {
            workers: 3,
            queue_capacity: 32,
            default_timeout_ms: 20_000,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Six clients × six requests, one per taxonomy bucket.
    let clients: Vec<Client<Vec<Reply>>> = (0..6)
        .map(|_| {
            Box::new(|addr: SocketAddr| {
                (0..6)
                    .map(|round| match round {
                        // Valid question → 200 with answers.
                        0 => post_answer(
                            addr,
                            r#"{"question": "Who is the mayor of Berlin?", "k": 3}"#,
                        ),
                        // Malformed JSON → 400.
                        1 => post_answer(addr, "{not json"),
                        // Missing question field → 400.
                        2 => post_answer(addr, r#"{"k": 2}"#),
                        // Expired before work: timeout_ms 0 → 504.
                        3 => post_answer(
                            addr,
                            r#"{"question": "Who is the mayor of Berlin?", "timeout_ms": 0}"#,
                        ),
                        // Unknown path → 404.
                        4 => send_raw(
                            addr,
                            b"GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                        ),
                        // Wrong method on a real path → 405.
                        _ => send_raw(
                            addr,
                            b"GET /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                        ),
                    })
                    .collect()
            }) as Client<Vec<Reply>>
        })
        .collect();

    let (outcomes, stats) = serve_and_drive(&server, clients);

    let expected = [200u16, 400, 400, 504, 404, 405];
    let mut responses = 0u64;
    for (c, outcome) in outcomes.into_iter().enumerate() {
        let rounds = outcome.expect("client thread panicked");
        for (round, result) in rounds.into_iter().enumerate() {
            let (status, body) = result.unwrap_or_else(|e| panic!("client {c} round {round}: {e}"));
            assert_eq!(status, expected[round], "client {c} round {round}: {body}");
            if round == 0 {
                assert!(body.contains("Klaus Wowereit"), "client {c}: wrong answer: {body}");
                assert!(body.contains("\"timings_ms\""), "{body}");
            }
            responses += 1;
        }
    }

    // No lost responses: everything the clients saw, the server served.
    assert_eq!(stats.served, responses);
    assert_eq!(stats.served, 36);
    assert_eq!(stats.shed, 0, "queue of 32 should never shed 6 clients");
    // Every 504 was the deliberate timeout bucket.
    assert_eq!(stats.timeouts, 6);
}

#[test]
fn metrics_and_healthz_agree_with_traffic() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server =
        Server::bind("127.0.0.1:0", &sys, ServerConfig { workers: 2, ..ServerConfig::default() })
            .expect("bind");

    // One sequential client: health check, four answers (one with
    // EXPLAIN), then a metrics scrape that must reflect all of it.
    let client = Box::new(|addr: SocketAddr| {
        let mut log = Vec::new();
        log.push(send_raw(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
        for _ in 0..3 {
            log.push(post_answer(addr, r#"{"question": "Who is the mayor of Berlin?"}"#));
        }
        log.push(post_answer(
            addr,
            r#"{"question": "Who is the mayor of Berlin?", "explain": true}"#,
        ));
        log.push(send_raw(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
        log
    }) as Client<Vec<Reply>>;

    let (outcomes, stats) = serve_and_drive(&server, vec![client]);
    let log: Vec<(u16, String)> = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("client i/o failed");

    let (health_status, health_body) = &log[0];
    assert_eq!((*health_status, health_body.as_str()), (200, "ok\n"));
    for (status, _) in &log[1..4] {
        assert_eq!(*status, 200);
    }
    let (explain_status, explain_body) = &log[4];
    assert_eq!(*explain_status, 200);
    assert!(explain_body.contains("\"explain\""), "{explain_body}");

    let (metrics_status, metrics) = &log[5];
    assert_eq!(*metrics_status, 200);
    // The server's own series, with the counts the client produced (the
    // exposition excludes its own in-flight request).
    assert!(metrics.contains("gqa_server_requests_total{endpoint=\"answer\"} 4"), "{metrics}");
    assert!(metrics.contains("gqa_server_requests_total{endpoint=\"healthz\"} 1"), "{metrics}");
    assert!(metrics.contains("gqa_server_worker_threads 2"), "{metrics}");
    assert!(metrics.contains("# TYPE gqa_server_inflight_requests gauge"), "{metrics}");
    // Pipeline series flow through the same registry.
    assert!(metrics.contains("gqa_pipeline_questions_total 4"), "{metrics}");

    assert_eq!(stats.served, 6);
    assert_eq!(stats.shed, 0);
}

#[test]
fn overload_sheds_503_with_retry_after() {
    let store = mini_dbpedia();
    let sys = system(&store);
    // One worker, one queue slot, short read timeout: two idle connections
    // saturate the server (one parked in the worker's read, one queued);
    // the third request must be shed.
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout_ms: 2000,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let client = Box::new(|addr: SocketAddr| {
        // Two slow-loris connections: connected, never sending. Staggered
        // so the server's state is deterministic: the worker parks on the
        // first (blocking read, 2 s budget) before the second arrives to
        // occupy the single queue slot.
        let mut idle: Vec<TcpStream> = Vec::new();
        for _ in 0..2 {
            let s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
            s.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
            idle.push(s);
            std::thread::sleep(Duration::from_millis(250));
        }

        let shed =
            send_raw(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?;

        // The parked connections eventually get 408s (slow-loris defense),
        // demonstrating the worker was never wedged.
        let mut idle_statuses = Vec::new();
        for mut s in idle {
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).map_err(|e| format!("read 408: {e}"))?;
            idle_statuses.push(String::from_utf8_lossy(&buf).into_owned());
        }
        Ok((shed, idle_statuses))
    }) as Client<Result<((u16, String), Vec<String>), String>>;

    let (outcomes, stats) = serve_and_drive(&server, vec![client]);
    let (shed, idle_statuses) = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    assert_eq!(shed.0, 503, "expected shed, got: {}", shed.1);
    for text in &idle_statuses {
        assert!(text.starts_with("HTTP/1.1 408 "), "{text}");
    }
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.accepted, 2);
}

#[test]
fn shutdown_drains_queued_requests() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig { workers: 1, queue_capacity: 16, ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();

    // Burst several requests at a single worker, then immediately flip the
    // shutdown flag: everything already accepted must still be answered
    // before run() returns. (Hand-rolled scope here because the shutdown
    // ordering — mid-flight, not after the clients — is the point.)
    let (results, stats) = std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run());
        let clients: Vec<_> = (0..5)
            .map(|_| {
                scope.spawn(move || {
                    post_answer(addr, r#"{"question": "Who is the mayor of Berlin?"}"#)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        shutdown.store(true, Ordering::SeqCst);
        let results: Vec<_> = clients.into_iter().map(|c| c.join()).collect();
        let stats = run.join().expect("server thread panicked");
        (results, stats)
    });

    for outcome in results {
        let (status, body) = outcome.expect("client thread panicked").expect("client i/o failed");
        assert_eq!(status, 200, "accepted request was dropped during drain: {body}");
    }
    assert_eq!(stats.served, stats.accepted, "drain lost responses: {stats:?}");
}

#[test]
fn k_zero_is_a_valid_request_answered_with_empty_lists() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server =
        Server::bind("127.0.0.1:0", &sys, ServerConfig { workers: 1, ..ServerConfig::default() })
            .expect("bind");

    let client = Box::new(|addr: SocketAddr| {
        vec![
            // k: 0 is a legal "empty prefix" request (it used to 400 and,
            // before the guard in topk, could panic the pipeline on k-1).
            post_answer(addr, r#"{"question": "Who is the mayor of Berlin?", "k": 0}"#),
            // Non-integers and negatives are still rejected.
            post_answer(addr, r#"{"question": "Who is the mayor of Berlin?", "k": -1}"#),
            post_answer(addr, r#"{"question": "Who is the mayor of Berlin?", "k": 1.5}"#),
        ]
    }) as Client<Vec<Reply>>;

    let (outcomes, stats) = serve_and_drive(&server, vec![client]);
    let log: Vec<(u16, String)> = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("client i/o failed");

    let (status, body) = &log[0];
    assert_eq!(*status, 200, "{body}");
    assert!(body.contains("\"answers\":[]"), "{body}");
    assert!(body.contains("\"sparql\":[]"), "{body}");
    assert!(body.contains("\"timings_ms\""), "the pipeline still ran: {body}");
    for (status, body) in &log[1..] {
        assert_eq!(*status, 400, "{body}");
        assert!(body.contains("non-negative integer"), "{body}");
    }
    assert_eq!(stats.served, 3);
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server =
        Server::bind("127.0.0.1:0", &sys, ServerConfig { workers: 1, ..ServerConfig::default() })
            .expect("bind");

    type Outcome = Result<Vec<(u16, String, String)>, String>;
    let client = Box::new(|addr: SocketAddr| -> Outcome {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let body = r#"{"question": "Who is the mayor of Berlin?"}"#;
        let keep = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let close = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let mut log = Vec::new();
        // Two requests with no Connection header: HTTP/1.1 defaults to
        // keep-alive, so both ride the same connection...
        for _ in 0..2 {
            reader.get_mut().write_all(keep.as_bytes()).map_err(|e| format!("write: {e}"))?;
            log.push(read_one_response(&mut reader)?);
        }
        // ...and an explicit close ends the session: response says close,
        // then EOF.
        reader.get_mut().write_all(close.as_bytes()).map_err(|e| format!("write: {e}"))?;
        log.push(read_one_response(&mut reader)?);
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).map_err(|e| format!("read eof: {e}"))?;
        if !rest.is_empty() {
            return Err(format!("bytes after close: {rest:?}"));
        }
        Ok(log)
    }) as Client<Outcome>;

    let (outcomes, stats) = serve_and_drive(&server, vec![client]);
    let log = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    for (status, _, body) in &log {
        assert_eq!(*status, 200, "{body}");
        assert!(body.contains("Klaus Wowereit"), "{body}");
    }
    assert!(log[0].1.contains("Connection: keep-alive"), "{}", log[0].1);
    assert!(log[1].1.contains("Connection: keep-alive"), "{}", log[1].1);
    assert!(log[2].1.contains("Connection: close"), "{}", log[2].1);
    // One connection admitted, three responses served: the queue slot was
    // reused by the keep-alive loop, not re-admitted per request.
    assert_eq!(stats.accepted, 1, "{stats:?}");
    assert_eq!(stats.served, 3, "{stats:?}");
}

#[test]
fn keep_alive_think_time_is_not_charged_against_the_next_deadline() {
    let store = mini_dbpedia();
    let sys = system(&store);
    // Deadline far below the client's pause: under a previous-flush
    // anchor the second request would arrive already expired and be
    // refused 504 before the pipeline ran.
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig {
            workers: 1,
            default_timeout_ms: 250,
            keep_alive_idle_ms: 30_000,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    type Outcome = Result<Vec<(u16, String, String)>, String>;
    let client = Box::new(|addr: SocketAddr| -> Outcome {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let body = r#"{"question": "Who is the mayor of Berlin?"}"#;
        let req = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let mut log = Vec::new();
        reader.get_mut().write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
        log.push(read_one_response(&mut reader)?);
        // Think time well past the deadline, well inside the idle window.
        std::thread::sleep(Duration::from_millis(600));
        reader.get_mut().write_all(req.as_bytes()).map_err(|e| format!("write: {e}"))?;
        log.push(read_one_response(&mut reader)?);
        Ok(log)
    }) as Client<Outcome>;

    let (outcomes, stats) = serve_and_drive(&server, vec![client]);
    let log = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    for (status, _, body) in &log {
        assert_eq!(*status, 200, "think-time was charged against the deadline: {body}");
        assert!(body.contains("Klaus Wowereit"), "{body}");
    }
    assert_eq!(stats.timeouts, 0, "{stats:?}");
}

#[test]
fn idle_keep_alive_connection_yields_its_worker_under_queue_pressure() {
    let store = mini_dbpedia();
    let sys = system(&store);
    // One worker, long idle window: if the worker parked on the idle
    // connection were deaf to the accept queue, the second connection
    // below would wait the full 30 s and its 10 s read would fail.
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig { workers: 1, keep_alive_idle_ms: 30_000, ..ServerConfig::default() },
    )
    .expect("bind");

    type Outcome = Result<((u16, String, String), u16, Vec<u8>), String>;
    let client = Box::new(|addr: SocketAddr| -> Outcome {
        // Connection A: one keep-alive request, then idle — pinning the
        // only worker in its between-requests wait.
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect A: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
        let mut a = BufReader::new(stream);
        let body = r#"{"question": "Who is the mayor of Berlin?"}"#;
        let keep = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        a.get_mut().write_all(keep.as_bytes()).map_err(|e| format!("write A: {e}"))?;
        let first = read_one_response(&mut a)?;

        // Connection B: queued behind idle A; must be served promptly.
        let mut b = TcpStream::connect(addr).map_err(|e| format!("connect B: {e}"))?;
        b.set_read_timeout(Some(Duration::from_secs(10))).map_err(|e| e.to_string())?;
        let close = format!(
            "POST /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        b.write_all(close.as_bytes()).map_err(|e| format!("write B: {e}"))?;
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).map_err(|e| format!("read B (worker still pinned?): {e}"))?;
        let text = String::from_utf8_lossy(&buf).into_owned();
        let status: u16 = text
            .split(' ')
            .nth(1)
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| format!("unparseable B response: {text:?}"))?;

        // A was closed silently (EOF, no error bytes) to free the worker.
        let mut rest = Vec::new();
        a.read_to_end(&mut rest).map_err(|e| format!("read A eof: {e}"))?;
        Ok((first, status, rest))
    }) as Client<Outcome>;

    let (outcomes, stats) = serve_and_drive(&server, vec![client]);
    let (first, b_status, rest) = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    assert_eq!(first.0, 200, "{}", first.2);
    assert_eq!(b_status, 200, "queued connection starved behind an idle keep-alive session");
    assert!(rest.is_empty(), "idle close should be silent, got: {rest:?}");
    assert_eq!(stats.accepted, 2, "{stats:?}");
}

#[test]
fn answer_cache_hits_are_flagged_and_byte_identical() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig { workers: 1, cache_capacity: 64, ..ServerConfig::default() },
    )
    .expect("bind");

    type Outcome = Result<Vec<(u16, String)>, String>;
    let q = r#"{"question": "Who is the mayor of Berlin?", "k": 3}"#;
    let variant = r#"{"question": "  WHO IS THE MAYOR OF BERLIN???  ", "k": 3}"#;
    let traced = r#"{"question": "Who is the mayor of Berlin?", "k": 3, "explain": true}"#;
    let client = Box::new(move |addr: SocketAddr| -> Outcome {
        Ok(vec![
            post_answer_full(addr, q)?,       // cold → miss
            post_answer_full(addr, q)?,       // same key → hit
            post_answer_full(addr, variant)?, // normalized variant → hit
            post_answer_full(addr, traced)?,  // explain → bypass, no header
            send_raw_full(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?,
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    let body_of = |text: &str| text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap();
    for (status, text) in &log[..4] {
        assert_eq!(*status, 200, "{text}");
    }
    assert!(log[0].1.contains("X-Cache: miss"), "{}", log[0].1);
    assert!(log[1].1.contains("X-Cache: hit"), "{}", log[1].1);
    assert!(log[2].1.contains("X-Cache: hit"), "{}", log[2].1);
    assert!(!log[3].1.contains("X-Cache"), "bypassed request leaked a header: {}", log[3].1);

    // The hit's payload is byte-identical to the cold run's, wall-clock
    // timings aside.
    let cold = body_of(&log[0].1);
    let hit = body_of(&log[1].1);
    assert_eq!(semantic_prefix(&cold), semantic_prefix(&hit));
    assert!(cold.contains("Klaus Wowereit"), "{cold}");

    // The scrape agrees: 2 hits, 1 miss (bypassed requests touch nothing).
    let metrics = body_of(&log[4].1);
    assert!(metrics.contains("gqa_server_cache_hits_total 2"), "{metrics}");
    assert!(metrics.contains("gqa_server_cache_misses_total 1"), "{metrics}");
    assert!(metrics.contains("gqa_server_cache_stale_total 0"), "{metrics}");
}

#[test]
fn admin_reload_bumps_epoch_and_invalidates_cached_answers() {
    let obs = Obs::new();
    let build = {
        let obs = obs.clone();
        move || {
            let store = Arc::new(mini_dbpedia());
            let dict = mini_dict(&store);
            let config =
                GAnswerConfig { concurrency: Concurrency::serial(), ..GAnswerConfig::default() };
            Ok(GAnswer::shared(store, dict, config, obs.clone()))
        }
    };
    let engine = Arc::new(Engine::new(build().unwrap(), build));
    let server = Server::bind_reloadable(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig { workers: 1, cache_capacity: 16, ..ServerConfig::default() },
    )
    .expect("bind");

    type Outcome = Result<Vec<(u16, String)>, String>;
    let q = r#"{"question": "Who is the mayor of Berlin?"}"#;
    let client = Box::new(move |addr: SocketAddr| -> Outcome {
        let reload =
            b"POST /admin/reload HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
        Ok(vec![
            post_answer_full(addr, q)?, // cold → miss
            post_answer_full(addr, q)?, // → hit
            send_raw_full(addr, reload)?,
            post_answer_full(addr, q)?, // old entry is stale → recompute
            post_answer_full(addr, q)?, // → hit again, under the new epoch
            send_raw_full(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?,
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    assert!(log[0].1.contains("X-Cache: miss"), "{}", log[0].1);
    assert!(log[1].1.contains("X-Cache: hit"), "{}", log[1].1);
    let (reload_status, reload_text) = &log[2];
    assert_eq!(*reload_status, 200, "{reload_text}");
    assert!(reload_text.contains("{\"epoch\":2}"), "{reload_text}");
    assert!(log[3].1.contains("X-Cache: miss"), "stale entry served: {}", log[3].1);
    assert!(log[4].1.contains("X-Cache: hit"), "{}", log[4].1);
    assert_eq!(engine.epoch(), 2);

    let metrics = log[5].1.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap();
    // A reloadable server is a one-tenant registry: its cache series
    // carry the default tenant's store label.
    assert!(metrics.contains("gqa_server_cache_stale_total{store=\"default\"} 1"), "{metrics}");
    assert!(metrics.contains("gqa_server_requests_total{endpoint=\"admin\"} 1"), "{metrics}");
    assert!(metrics.contains("gqa_server_stores 1"), "{metrics}");
}

#[test]
fn reload_without_an_engine_is_501() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server =
        Server::bind("127.0.0.1:0", &sys, ServerConfig { workers: 1, ..ServerConfig::default() })
            .expect("bind");

    let client = Box::new(|addr: SocketAddr| {
        send_raw(
            addr,
            b"POST /admin/reload HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        )
    }) as Client<Reply>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let (status, body) =
        outcomes.into_iter().next().unwrap().expect("client thread panicked").expect("client i/o");
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("reloadable"), "{body}");
}

/// Like [`post_answer_full`] but with a client-chosen `X-Request-Id`.
fn post_answer_with_id(addr: SocketAddr, json: &str, id: &str) -> Result<(u16, String), String> {
    let req = format!(
        "POST /answer HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Request-Id: {id}\r\n\
         Content-Length: {}\r\n\r\n{}",
        json.len(),
        json
    );
    send_raw_full(addr, req.as_bytes())
}

/// First numeric value after `"key":` in a flat JSON string.
fn json_num(body: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat).unwrap_or_else(|| panic!("no {key} in {body}")) + pat.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|e| panic!("bad {key} ({e}) in {body}"))
}

/// Sum of the per-stage millisecond values in a trace's `"stages":{...}`.
fn stage_sum(body: &str) -> f64 {
    let start = body.find("\"stages\":{").expect("stages object") + "\"stages\":{".len();
    let inner = &body[start..start + body[start..].find('}').expect("closing brace")];
    inner
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| pair.split_once(':').expect("name:ms pair").1.parse::<f64>().expect("stage ms"))
        .sum()
}

/// The tentpole's end-to-end linkage contract: ONE client-chosen request id
/// shows up in the response header, the structured access log (flushed on
/// shutdown), the flight recorder's debug views, and a `/metrics` exemplar.
///
/// The exemplar assertion is deterministic, not racy: the answer request is
/// the first observation the duration histogram ever sees (exemplar slots
/// prefer the max, and an empty histogram admits anything), and a scrape's
/// *own* observation lands only after its exposition was rendered.
#[test]
fn request_id_links_header_access_log_debug_views_and_exemplar() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let log_path =
        std::env::temp_dir().join(format!("gqa-e2e-access-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let mut server =
        Server::bind("127.0.0.1:0", &sys, ServerConfig { workers: 1, ..ServerConfig::default() })
            .expect("bind");
    server.set_access_log(AccessLog::to_file(&log_path).expect("open access log"));

    const ID: &str = "e2e-trace-0001";
    type Outcome = Result<Vec<(u16, String)>, String>;
    let client = Box::new(move |addr: SocketAddr| -> Outcome {
        let q = r#"{"question": "Who is the mayor of Berlin?", "explain": true}"#;
        let view =
            format!("GET /debug/requests/{ID} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        Ok(vec![
            post_answer_with_id(addr, q, ID)?,
            send_raw_full(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?,
            send_raw_full(addr, view.as_bytes())?,
            send_raw_full(
                addr,
                b"GET /debug/requests?status=200&min_ms=0 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )?,
            send_raw_full(
                addr,
                b"GET /debug/requests?degraded=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )?,
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");
    for (status, text) in &log {
        assert_eq!(*status, 200, "{text}");
    }

    // 1. The response echoed the client-chosen id back as a header.
    assert!(log[0].1.contains(&format!("X-Request-Id: {ID}")), "{}", log[0].1);

    // 2. The duration histogram carries the id as an exemplar.
    let metrics = log[1].1.split_once("\r\n\r\n").unwrap().1;
    assert!(metrics.contains(&format!("# {{request_id=\"{ID}\"}}")), "no exemplar in {metrics}");

    // 3. The per-id debug view holds the full trace: per-stage timings that
    //    sum to no more than the total, and the EXPLAIN payload.
    let view = log[2].1.split_once("\r\n\r\n").unwrap().1;
    assert!(view.contains(&format!("\"request_id\":\"{ID}\"")), "{view}");
    assert!(view.contains("\"explain\":\""), "{view}");
    assert!(view.contains("\"cache\":null"), "cache disabled by default: {view}");
    let (total, stages) = (json_num(view, "total_ms"), stage_sum(view));
    assert!(stages > 0.0 && stages <= total, "stage sum {stages} vs total {total}: {view}");

    // 4. The list view filters admit the request and gate the explain
    //    payload (list views stay cheap).
    let list = log[3].1.split_once("\r\n\r\n").unwrap().1;
    assert!(list.contains(&format!("\"request_id\":\"{ID}\"")), "{list}");
    assert!(!list.contains("\"explain\""), "list view must not carry explain: {list}");

    // 5. Nothing degraded, nothing fault-injected: the degraded filter is empty.
    let degraded = log[4].1.split_once("\r\n\r\n").unwrap().1;
    assert!(degraded.contains("\"count\":0"), "{degraded}");

    // 6. Shutdown flushed the access log; the line links the same id to the
    //    route and status the client saw.
    let text = std::fs::read_to_string(&log_path).expect("access log file");
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"request_id\":\"{ID}\"")))
        .unwrap_or_else(|| panic!("id not in access log: {text}"));
    assert!(line.contains("\"route\":\"answer\""), "{line}");
    assert!(line.contains("\"status\":200"), "{line}");
    let _ = std::fs::remove_file(&log_path);
}

/// `/metrics?format=json` speaks JSON; with the recorder sized to zero the
/// debug endpoints answer 404 instead of serving stale or empty state.
#[test]
fn metrics_json_format_and_disabled_recorder_404s() {
    let store = mini_dbpedia();
    let sys = system(&store);
    let server = Server::bind(
        "127.0.0.1:0",
        &sys,
        ServerConfig { workers: 1, flight_recorder: 0, ..ServerConfig::default() },
    )
    .expect("bind");

    type Outcome = Result<Vec<(u16, String)>, String>;
    let client = Box::new(|addr: SocketAddr| -> Outcome {
        Ok(vec![
            send_raw_full(
                addr,
                b"GET /metrics?format=json HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )?,
            send_raw_full(addr, b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?,
            send_raw_full(
                addr,
                b"GET /debug/requests HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )?,
            send_raw_full(
                addr,
                b"GET /debug/requests/deadbeef HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )?,
        ])
    }) as Client<Outcome>;

    let (outcomes, _stats) = serve_and_drive(&server, vec![client]);
    let log = outcomes
        .into_iter()
        .next()
        .unwrap()
        .expect("client thread panicked")
        .expect("client i/o failed");

    let (status, text) = &log[0];
    assert_eq!(*status, 200, "{text}");
    assert!(text.contains("Content-Type: application/json"), "{text}");
    let body = text.split_once("\r\n\r\n").unwrap().1;
    assert!(body.trim_start().starts_with('{') && body.contains("\"metrics\""), "{body}");

    // The default exposition is unchanged: Prometheus text format.
    assert!(log[1].1.contains("text/plain"), "{}", log[1].1);

    assert_eq!(log[2].0, 404, "{}", log[2].1);
    assert!(log[2].1.contains("disabled"), "{}", log[2].1);
    assert_eq!(log[3].0, 404, "{}", log[3].1);
}
