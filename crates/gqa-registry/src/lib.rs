//! Multi-tenant store registry for the serving layer.
//!
//! One process can serve many named RDF stores ("tenants"), each with its
//! own full serving stack:
//!
//! * an [`Engine`] — an epoch-stamped [`gqa_rdf::Snapshot`] of a built
//!   [`gqa_core::pipeline::GAnswer`] system plus the recipes to rebuild it
//!   (full reload from source) and to *re-assemble* it around a mutated
//!   store (incremental upsert via a delta overlay, see
//!   [`gqa_rdf::overlay`]);
//! * an optional per-tenant answer cache whose entries are keyed by the
//!   tenant's own epoch, so reloading or upserting tenant A can never
//!   serve tenant B a stale answer — their caches and epochs are disjoint;
//! * a scoped [`gqa_obs::Obs`] handle stamping every tenant-level metric
//!   series with `store="<name>"` (the single-tenant default keeps the
//!   label too: `store="default"`).
//!
//! The [`Registry`] maps tenant names to these stacks behind a single
//! `RwLock<HashMap>`. The lock guards only the map — loading, reloading,
//! and upserting a tenant happen outside it, so tenant A's multi-second
//! rebuild never blocks a request routed to tenant B. Admin operations
//! (`load`/`unload`/`reload`/`upsert`) and lookups return a typed
//! [`TenantError`] that the HTTP layer maps onto 4xx/5xx statuses —
//! a bad `store` field is a client error, never a panic.

mod engine;
mod manifest;
mod registry;

pub use engine::{Engine, UpsertOutcome, FAULT_SITE_COMPACT};
pub use manifest::{Manifest, ManifestEntry, FAULT_SITE_MANIFEST_WRITE, MANIFEST_FILE};
pub use registry::{valid_tenant_name, Registry, Tenant, TenantError, TenantState, TenantStatus};
