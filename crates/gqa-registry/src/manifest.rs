//! The registry manifest: which tenants exist, durably.
//!
//! PR 9 made *ops* durable (per-tenant WAL) but not *store definitions*:
//! a tenant loaded at runtime via `/admin/stores/load` vanished on
//! `kill -9` because nothing on disk remembered it. The manifest closes
//! that hole. Under `--durable DIR` the file `DIR/manifest` maps tenant
//! name → source spec (+ the options the registry loads it with), and is
//! rewritten atomically — write-temp + fsync + rename, the same
//! discipline as `base.snap` — on every runtime `load`/`unload`. On
//! boot the serving binary replays it: each entry re-runs the tenant
//! factory, then the tenant's own WAL replays on top, restoring the
//! store to its last acked epoch.
//!
//! Only *runtime-loaded* tenants are recorded. Boot-flag tenants
//! (`--store NAME=SPEC`) are re-created by the flags themselves on the
//! next boot; duplicating them here would let a stale manifest resurrect
//! a store the operator removed from the command line.
//!
//! Format: one header line, then one `name \t source \t options` line
//! per tenant (fields escape `\` `\t` `\n` as `\\` `\t` `\n`). Tiny,
//! human-inspectable, and order-independent (entries sort by name).

use gqa_fault::FaultPlan;
use gqa_rdf::write_file_atomic;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the manifest inside the durable root dir.
pub const MANIFEST_FILE: &str = "manifest";

/// Header line identifying the manifest format version.
const MANIFEST_HEADER: &str = "# gqa-registry manifest v1";

/// Chaos site fired before every manifest rewrite. An `error` rule makes
/// `load`/`unload` fail *after* the slot change but before the on-disk
/// record — exercising the rollback path.
pub const FAULT_SITE_MANIFEST_WRITE: &str = "manifest.write";

/// One durable tenant definition: enough to re-run the factory on boot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Tenant name (validated by the registry before it gets here).
    pub name: String,
    /// Source spec the factory understands (e.g. a dataset path or the
    /// name of a built-in corpus).
    pub source: String,
    /// Free-form options string recorded at load time (compaction floor,
    /// durability flags). Informational: boot replay warns on mismatch
    /// with the current flags but the flags win.
    pub options: String,
}

/// The on-disk tenant catalog under a durable root. All mutation goes
/// through [`Manifest::record_load`] / [`Manifest::record_unload`],
/// which rewrite the file atomically *before* committing the change in
/// memory — a failed write leaves both file and catalog untouched.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    entries: BTreeMap<String, ManifestEntry>,
    faults: FaultPlan,
    default_options: String,
}

fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other), // includes '\\'
            None => out.push('\\'),
        }
    }
    out
}

/// Split one manifest line into fields on *unescaped* tabs.
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            cur.push('\\');
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '\t' {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if escaped {
        cur.push('\\');
    }
    fields.push(cur);
    fields.into_iter().map(|f| unescape(&f)).collect()
}

impl Manifest {
    /// Open (or start empty) the manifest under durable root `dir`.
    /// A malformed file is an error, not a silent reset — losing the
    /// catalog would lose tenants on the next boot.
    pub fn open(dir: &Path, faults: FaultPlan) -> Result<Manifest, String> {
        let path = dir.join(MANIFEST_FILE);
        let mut entries = BTreeMap::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for (i, line) in text.lines().enumerate() {
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    let fields = split_fields(line);
                    if fields.len() != 3 || fields[0].is_empty() {
                        return Err(format!("manifest {path:?} line {}: malformed", i + 1));
                    }
                    let entry = ManifestEntry {
                        name: fields[0].clone(),
                        source: fields[1].clone(),
                        options: fields[2].clone(),
                    };
                    entries.insert(entry.name.clone(), entry);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("read manifest {path:?}: {e}")),
        }
        Ok(Manifest { path, entries, faults, default_options: String::new() })
    }

    /// Set the options string recorded for subsequently loaded tenants
    /// (builder-style). Typically a summary of the serving flags, e.g.
    /// `compact_ops=4096 durable=1`.
    pub fn with_default_options(mut self, options: &str) -> Manifest {
        self.default_options = options.to_owned();
        self
    }

    /// The cataloged tenants, sorted by name. Boot replay iterates this.
    pub fn entries(&self) -> Vec<ManifestEntry> {
        self.entries.values().cloned().collect()
    }

    /// Where the manifest lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record a runtime-loaded tenant, durably. The file rewrite happens
    /// (and must succeed) before the in-memory catalog changes; a
    /// re-record of the same name updates its entry in place.
    pub fn record_load(&mut self, name: &str, source: &str) -> Result<(), String> {
        let mut next = self.entries.clone();
        next.insert(
            name.to_owned(),
            ManifestEntry {
                name: name.to_owned(),
                source: source.to_owned(),
                options: self.default_options.clone(),
            },
        );
        self.rewrite(&next)?;
        self.entries = next;
        Ok(())
    }

    /// Remove a tenant from the catalog, durably. Unknown names are a
    /// no-op (boot-flag tenants are never cataloged, but they are
    /// unloadable).
    pub fn record_unload(&mut self, name: &str) -> Result<(), String> {
        if !self.entries.contains_key(name) {
            return Ok(());
        }
        let mut next = self.entries.clone();
        next.remove(name);
        self.rewrite(&next)?;
        self.entries = next;
        Ok(())
    }

    /// Serialize `entries` and replace the file atomically (write-temp +
    /// fsync + rename + dir fsync): a crash at any instant leaves either
    /// the old complete catalog or the new one, never a torn mix.
    fn rewrite(&self, entries: &BTreeMap<String, ManifestEntry>) -> Result<(), String> {
        if let Err(f) = self.faults.fire(FAULT_SITE_MANIFEST_WRITE) {
            return Err(format!("manifest {:?}: {f}", self.path));
        }
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for entry in entries.values() {
            text.push_str(&escape(&entry.name));
            text.push('\t');
            text.push_str(&escape(&entry.source));
            text.push('\t');
            text.push_str(&escape(&entry.options));
            text.push('\n');
        }
        write_file_atomic(&self.path, text.as_bytes())
            .map_err(|e| format!("write manifest {:?}: {e}", self.path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gqa-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrips_entries_across_reopen() {
        let d = dir("roundtrip");
        let mut m = Manifest::open(&d, FaultPlan::none()).unwrap().with_default_options("k=v");
        m.record_load("beta", "data/beta.nt").unwrap();
        m.record_load("alpha", "mini").unwrap();

        let m2 = Manifest::open(&d, FaultPlan::none()).unwrap();
        let names: Vec<_> = m2.entries().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, ["alpha", "beta"], "sorted by name");
        assert_eq!(m2.entries()[1].source, "data/beta.nt");
        assert_eq!(m2.entries()[0].options, "k=v");
    }

    #[test]
    fn unload_removes_and_reload_updates() {
        let d = dir("unload");
        let mut m = Manifest::open(&d, FaultPlan::none()).unwrap();
        m.record_load("a", "one").unwrap();
        m.record_load("b", "two").unwrap();
        m.record_unload("a").unwrap();
        m.record_load("b", "three").unwrap();
        m.record_unload("never-loaded").unwrap(); // no-op, not an error

        let m2 = Manifest::open(&d, FaultPlan::none()).unwrap();
        let entries = m2.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!((entries[0].name.as_str(), entries[0].source.as_str()), ("b", "three"));
    }

    #[test]
    fn escapes_tabs_newlines_backslashes_in_sources() {
        let d = dir("escape");
        let hostile = "path\twith\nhostile\\chars";
        let mut m = Manifest::open(&d, FaultPlan::none()).unwrap();
        m.record_load("t", hostile).unwrap();

        let m2 = Manifest::open(&d, FaultPlan::none()).unwrap();
        assert_eq!(m2.entries()[0].source, hostile);
    }

    #[test]
    fn failed_write_leaves_catalog_and_file_untouched() {
        let d = dir("fault");
        let mut m = Manifest::open(&d, FaultPlan::none()).unwrap();
        m.record_load("keep", "mini").unwrap();

        let plan = FaultPlan::parse(&format!("{FAULT_SITE_MANIFEST_WRITE}:error:1.0"), 0).unwrap();
        let mut broken = Manifest::open(&d, plan).unwrap();
        assert!(broken.record_load("doomed", "mini").is_err());
        assert_eq!(broken.entries().len(), 1, "in-memory catalog rolled back");

        let m2 = Manifest::open(&d, FaultPlan::none()).unwrap();
        assert_eq!(m2.entries().len(), 1);
        assert_eq!(m2.entries()[0].name, "keep");
    }

    #[test]
    fn malformed_file_is_an_error_not_a_reset() {
        let d = dir("malformed");
        std::fs::write(d.join(MANIFEST_FILE), "just one field\n").unwrap();
        let err = Manifest::open(&d, FaultPlan::none()).unwrap_err();
        assert!(err.contains("malformed"), "got: {err}");
    }
}
