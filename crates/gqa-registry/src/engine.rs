//! The reloadable, incrementally-updatable engine behind one tenant.

use gqa_core::pipeline::GAnswer;
use gqa_rdf::overlay::{Delta, DeltaStats, OverlayStats};
use gqa_rdf::snapshot::{Snapshot, Stamped};
use gqa_rdf::Store;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Rebuild = Box<dyn Fn() -> Result<GAnswer<'static>, String> + Send + Sync>;
type Assemble = Box<dyn Fn(Store) -> Result<GAnswer<'static>, String> + Send + Sync>;

/// What one successful [`Engine::upsert`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpsertOutcome {
    /// The epoch under which the mutated store was published.
    pub epoch: u64,
    /// What the delta changed (adds / deletes / no-ops / new terms).
    pub stats: DeltaStats,
    /// Whether this upsert pushed the overlay past the compaction
    /// threshold and a background fold into a fresh CSR was scheduled.
    pub compaction_scheduled: bool,
}

/// A reloadable handle around the QA system: the current snapshot plus
/// the recipes to replace it. `POST /admin/reload` and SIGHUP call
/// [`Engine::reload`]: the rebuild runs *outside* any snapshot lock, the
/// swap is atomic, and in-flight requests keep the snapshot they loaded —
/// the epoch bump is what invalidates answer-cache entries computed
/// against the old store (each entry is stamped; see
/// [`gqa_core::cache::AnswerCache`]).
///
/// An engine built with [`Engine::with_assemble`] additionally supports
/// **incremental upserts**: [`Engine::upsert`] applies an N-Triples delta
/// as an overlay on the immutable CSR base ([`Store::apply_delta`]),
/// re-assembles the derived pipeline state (linker index, literal index,
/// schema) around the mutated store, and publishes the result as a new
/// epoch — no stop-the-world rebuild, no source re-read. Once the overlay
/// grows past a threshold relative to the base, a background thread folds
/// it into a fresh CSR ([`Store::compact`]) and publishes that as yet
/// another epoch.
///
/// All mutations (`reload`, `upsert`, `compact`) are serialized by a
/// write mutex so concurrent writers cannot lose each other's updates;
/// readers never touch that mutex — [`Engine::load`] stays wait-free.
pub struct Engine {
    snapshot: Snapshot<GAnswer<'static>>,
    rebuild: Rebuild,
    assemble: Option<Assemble>,
    /// Serializes reload/upsert/compact. Held across the (re)build so a
    /// compaction cannot interleave with an upsert and drop its delta.
    write: Mutex<()>,
    /// Overlay ops (adds + dels) that trigger a background compaction.
    compact_ops: usize,
    /// At most one background compaction in flight per engine.
    compacting: AtomicBool,
}

impl Engine {
    /// Overlay ops (adds + dels) floor before compaction kicks in.
    pub const DEFAULT_COMPACT_OPS: usize = 4096;

    /// An engine serving `initial` (epoch 1), reloading via `rebuild`.
    /// For metric continuity the rebuild closure should construct the new
    /// system over the *same* `Obs` handle as `initial`. An engine built
    /// this way rejects [`Engine::upsert`] (there is no assemble recipe).
    pub fn new(
        initial: GAnswer<'static>,
        rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
    ) -> Self {
        Engine {
            snapshot: Snapshot::new(initial),
            rebuild: Box::new(rebuild),
            assemble: None,
            write: Mutex::new(()),
            compact_ops: Self::DEFAULT_COMPACT_OPS,
            compacting: AtomicBool::new(false),
        }
    }

    /// Like [`Engine::new`] but also able to re-assemble the system
    /// around a mutated [`Store`], which is what makes [`Engine::upsert`]
    /// work. The assemble closure should be cheap relative to a full
    /// reload: typically `GAnswer::shared(Arc::new(store), dict.clone(),
    /// config.clone(), obs.clone())` — derived indexes are rebuilt, the
    /// source files are not re-read.
    pub fn with_assemble(
        initial: GAnswer<'static>,
        rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
        assemble: impl Fn(Store) -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
    ) -> Self {
        let mut engine = Engine::new(initial, rebuild);
        engine.assemble = Some(Box::new(assemble));
        engine
    }

    /// Override the compaction floor (before wrapping in an `Arc`).
    /// Mostly for tests; the default keeps small interactive upserts from
    /// ever paying a CSR rebuild.
    pub fn compact_after(mut self, ops: usize) -> Self {
        self.compact_ops = ops.max(1);
        self
    }

    /// The currently published system, pinned for the caller's lifetime.
    pub fn load(&self) -> Arc<Stamped<GAnswer<'static>>> {
        self.snapshot.load()
    }

    /// The current store epoch (starts at 1, +1 per successful reload,
    /// upsert, or compaction).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Whether this engine supports [`Engine::upsert`].
    pub fn supports_upsert(&self) -> bool {
        self.assemble.is_some()
    }

    /// Rebuild from source and atomically publish a fresh system; returns
    /// the new epoch. On error the current snapshot stays published
    /// untouched. A reload re-reads the source of truth, so any upserts
    /// applied since the last load are intentionally discarded.
    pub fn reload(&self) -> Result<u64, String> {
        let _w = self.write.lock();
        let fresh = (self.rebuild)()?;
        Ok(self.snapshot.swap(fresh))
    }

    /// Apply a parsed N-Triples delta to the current store and publish
    /// the result as a new epoch. Serialized with other mutations; readers
    /// pinned to older epochs are unaffected. When the overlay crosses the
    /// compaction threshold a background fold is scheduled (at most one at
    /// a time) — answers are correct either way, compaction only restores
    /// scan locality.
    pub fn upsert(self: &Arc<Self>, delta: Delta) -> Result<UpsertOutcome, String> {
        let assemble = self
            .assemble
            .as_ref()
            .ok_or_else(|| "store does not support incremental upserts".to_string())?;
        let overlay;
        let epoch;
        let stats;
        {
            let _w = self.write.lock();
            let current = self.snapshot.load();
            let (store, delta_stats) = current.value.store().apply_delta(delta);
            overlay = store.overlay_stats();
            let fresh = assemble(store)?;
            epoch = self.snapshot.swap(fresh);
            stats = delta_stats;
        }
        let compaction_scheduled = match overlay {
            Some(ov) if self.overlay_is_heavy(&ov) => self.spawn_compaction(),
            _ => false,
        };
        Ok(UpsertOutcome { epoch, stats, compaction_scheduled })
    }

    /// Fold the overlay into a fresh CSR base and publish it as a new
    /// epoch. Returns `Ok(None)` when there is no overlay to fold.
    /// Term ids and iteration order are preserved bit-for-bit
    /// ([`Store::compact`]), so answers cannot change — only layout does.
    pub fn compact(&self) -> Result<Option<u64>, String> {
        let assemble = self
            .assemble
            .as_ref()
            .ok_or_else(|| "store does not support incremental upserts".to_string())?;
        let _w = self.write.lock();
        let current = self.snapshot.load();
        if !current.value.store().has_overlay() {
            return Ok(None);
        }
        let folded = current.value.store().compact();
        let fresh = assemble(folded)?;
        Ok(Some(self.snapshot.swap(fresh)))
    }

    fn overlay_is_heavy(&self, ov: &OverlayStats) -> bool {
        ov.adds + ov.dels >= self.compact_ops
    }

    /// Schedule a background [`Engine::compact`]; returns whether a new
    /// one was actually spawned (false when one is already running or the
    /// thread could not be created).
    fn spawn_compaction(self: &Arc<Self>) -> bool {
        if self.compacting.swap(true, Ordering::AcqRel) {
            return false;
        }
        let engine = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("gqa-compact".to_owned())
            .spawn(move || {
                // A failed assemble leaves the overlay in place; the next
                // heavy upsert will retry. Nothing to surface here — the
                // published snapshot is still correct.
                let _ = engine.compact();
                engine.compacting.store(false, Ordering::Release);
            })
            .is_ok();
        if !spawned {
            self.compacting.store(false, Ordering::Release);
        }
        spawned
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("epoch", &self.epoch())
            .field("supports_upsert", &self.supports_upsert())
            .field("compact_ops", &self.compact_ops)
            .finish_non_exhaustive()
    }
}
