//! The reloadable, incrementally-updatable engine behind one tenant.

use gqa_core::pipeline::GAnswer;
use gqa_fault::FaultPlan;
use gqa_rdf::overlay::{Delta, DeltaStats, OverlayStats};
use gqa_rdf::snapshot::{Snapshot, Stamped};
use gqa_rdf::wal::{GroupWal, Wal};
use gqa_rdf::Store;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Rebuild = Box<dyn Fn() -> Result<GAnswer<'static>, String> + Send + Sync>;
type Assemble = Box<dyn Fn(Store) -> Result<GAnswer<'static>, String> + Send + Sync>;

/// Chaos site fired at the start of every [`Engine::compact`] on a
/// durable engine, *before* the write mutex is taken — a `latency` rule
/// here models a slow background fold (the unload-vs-compaction race),
/// an `error` rule a fold that aborts before touching durable state.
pub const FAULT_SITE_COMPACT: &str = "engine.compact";

/// Durable (write-ahead-logged) state for one engine. Lives inside the
/// write mutex so checkpoints, recovery, and bookkeeping are serialized
/// with the mutation path; the [`GroupWal`] itself is shared so the
/// expensive part of an upsert — the fsync — runs *outside* that mutex
/// and batches across concurrent writers.
struct Durable {
    dir: PathBuf,
    wal: Arc<GroupWal>,
    /// The epoch the next upsert will log and publish under. Kept
    /// strictly above every epoch ever published by this engine so acked
    /// epochs can never regress across recovery or compaction.
    next_epoch: u64,
    /// Upserts that have reserved an epoch + WAL slot (phase A).
    enqueued: u64,
    /// Upserts whose apply/publish phase has finished (phase C). When
    /// `applied == enqueued` no durable upsert is in flight.
    applied: u64,
    /// Set by [`Engine::retire`]: the tenant was unloaded. Later upserts
    /// are rejected and an in-flight compaction publishes nothing.
    retired: bool,
    /// Records replayed from the log at the last open/recovery.
    replayed_records: u64,
    /// Individual ops inside those records.
    replayed_ops: u64,
    /// Torn-tail bytes dropped at the last open/recovery.
    torn_bytes_dropped: u64,
    /// Checkpoints (snapshot + WAL rotation) taken by this engine.
    checkpoints: u64,
}

/// Point-in-time durability counters for `/admin/stores` and `/metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableStatus {
    /// Bytes of validated WAL on disk (header + complete records).
    pub wal_bytes: u64,
    /// Complete records in the current WAL generation.
    pub wal_records: u64,
    /// Records replayed at the last open/recovery.
    pub replayed_records: u64,
    /// Ops replayed at the last open/recovery.
    pub replayed_ops: u64,
    /// Torn-tail bytes truncated at the last open/recovery.
    pub torn_bytes_dropped: u64,
    /// Checkpoints (snapshot write + WAL rotation) taken so far.
    pub checkpoints: u64,
    /// Whether the WAL has poisoned itself after a failed repair (all
    /// further upserts fail until restart).
    pub poisoned: bool,
    /// `sync_data` calls performed by group-commit leaders.
    pub group_syncs: u64,
    /// Upserts acked durable through group commit. Under concurrent
    /// load `group_syncs` stays strictly below this — one fsync covers
    /// a whole batch.
    pub group_commits: u64,
    /// Largest number of records one sync covered.
    pub group_max_batch: u64,
}

/// File name of the checkpointed base store inside a durable dir.
const BASE_SNAPSHOT: &str = "base.snap";
/// File name of the write-ahead log inside a durable dir.
const WAL_LOG: &str = "wal.log";

/// What one successful [`Engine::upsert`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpsertOutcome {
    /// The epoch under which the mutated store was published.
    pub epoch: u64,
    /// What the delta changed (adds / deletes / no-ops / new terms).
    pub stats: DeltaStats,
    /// Whether this upsert pushed the overlay past the compaction
    /// threshold and a background fold into a fresh CSR was scheduled.
    pub compaction_scheduled: bool,
}

/// A reloadable handle around the QA system: the current snapshot plus
/// the recipes to replace it. `POST /admin/reload` and SIGHUP call
/// [`Engine::reload`]: the rebuild runs *outside* any snapshot lock, the
/// swap is atomic, and in-flight requests keep the snapshot they loaded —
/// the epoch bump is what invalidates answer-cache entries computed
/// against the old store (each entry is stamped; see
/// [`gqa_core::cache::AnswerCache`]).
///
/// An engine built with [`Engine::with_assemble`] additionally supports
/// **incremental upserts**: [`Engine::upsert`] applies an N-Triples delta
/// as an overlay on the immutable CSR base ([`Store::apply_delta`]),
/// re-assembles the derived pipeline state (linker index, literal index,
/// schema) around the mutated store, and publishes the result as a new
/// epoch — no stop-the-world rebuild, no source re-read. Once the overlay
/// grows past a threshold relative to the base, a background thread folds
/// it into a fresh CSR ([`Store::compact`]) and publishes that as yet
/// another epoch.
///
/// All mutations (`reload`, `upsert`, `compact`) are serialized by a
/// write mutex so concurrent writers cannot lose each other's updates;
/// readers never touch that mutex — [`Engine::load`] stays wait-free.
pub struct Engine {
    snapshot: Snapshot<GAnswer<'static>>,
    rebuild: Rebuild,
    assemble: Option<Assemble>,
    /// Serializes reload/upsert/compact, and owns the durable (WAL)
    /// state when [`Engine::with_durable`] enabled it. Held across the
    /// (re)build so a compaction cannot interleave with an upsert and
    /// drop its delta — and so a WAL append can never race a rotation.
    write: Mutex<Option<Durable>>,
    /// Signals each bump of `Durable::applied`: durable upserts wait
    /// here for their turn to apply, and quiescing paths (compaction,
    /// reload, retire) wait here for `applied == enqueued`.
    applied_cv: Condvar,
    /// Overlay ops (adds + dels) that trigger a background compaction.
    compact_ops: usize,
    /// At most one background compaction in flight per engine.
    compacting: AtomicBool,
}

impl Engine {
    /// Overlay ops (adds + dels) floor before compaction kicks in.
    pub const DEFAULT_COMPACT_OPS: usize = 4096;

    /// An engine serving `initial` (epoch 1), reloading via `rebuild`.
    /// For metric continuity the rebuild closure should construct the new
    /// system over the *same* `Obs` handle as `initial`. An engine built
    /// this way rejects [`Engine::upsert`] (there is no assemble recipe).
    pub fn new(
        initial: GAnswer<'static>,
        rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
    ) -> Self {
        Engine {
            snapshot: Snapshot::new(initial),
            rebuild: Box::new(rebuild),
            assemble: None,
            write: Mutex::new(None),
            applied_cv: Condvar::new(),
            compact_ops: Self::DEFAULT_COMPACT_OPS,
            compacting: AtomicBool::new(false),
        }
    }

    /// Like [`Engine::new`] but also able to re-assemble the system
    /// around a mutated [`Store`], which is what makes [`Engine::upsert`]
    /// work. The assemble closure should be cheap relative to a full
    /// reload: typically `GAnswer::shared(Arc::new(store), dict.clone(),
    /// config.clone(), obs.clone())` — derived indexes are rebuilt, the
    /// source files are not re-read.
    pub fn with_assemble(
        initial: GAnswer<'static>,
        rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
        assemble: impl Fn(Store) -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
    ) -> Self {
        let mut engine = Engine::new(initial, rebuild);
        engine.assemble = Some(Box::new(assemble));
        engine
    }

    /// Override the compaction floor (before wrapping in an `Arc`).
    /// Mostly for tests; the default keeps small interactive upserts from
    /// ever paying a CSR rebuild.
    pub fn compact_after(mut self, ops: usize) -> Self {
        self.compact_ops = ops.max(1);
        self
    }

    /// Turn on durability (builder-style, before wrapping in an `Arc`):
    /// upserts are write-ahead logged under `dir` and survive `kill -9`.
    ///
    /// This *is* crash recovery: if `dir` already holds a checkpointed
    /// base snapshot and/or a WAL, the base is loaded (falling back to
    /// the engine's initial system when there is no checkpoint yet),
    /// every logged op batch is re-applied as an overlay, and the result
    /// is published at an epoch no lower than the highest one the log
    /// attests to — so epochs acked before the crash stay meaningful.
    /// Replay is idempotent (re-upserting a present triple and deleting
    /// an absent one are no-ops), so a crash *during* recovery is itself
    /// recoverable. A torn final record is truncated, never a panic.
    ///
    /// `faults` arms the `wal.append` / `wal.fsync` chaos sites; pass
    /// [`FaultPlan::none()`] outside the chaos suite. Requires an
    /// assemble recipe ([`Engine::with_assemble`]) since durability only
    /// means something for upsertable engines.
    pub fn with_durable(self, dir: &Path, faults: FaultPlan) -> Result<Self, String> {
        let assemble = self.assemble.as_ref().ok_or("durable stores need an upsertable engine")?;
        std::fs::create_dir_all(dir).map_err(|e| format!("create durable dir {dir:?}: {e}"))?;
        let current = self.snapshot.load();
        let (mut durable, recovered) = Self::recover(assemble, current.value.store(), dir, faults)?;
        if let Some((fresh, at_least)) = recovered {
            self.snapshot.swap_at_least(fresh, at_least);
        }
        durable.next_epoch = self.snapshot.epoch() + 1;
        *self.write.lock() = Some(durable);
        Ok(self)
    }

    /// Open (or create) the durable state under `dir` and replay the log
    /// over the checkpointed base — or over `fallback_base` when no
    /// checkpoint exists yet. Returns the refreshed system to publish
    /// (`None` when the dir is fresh and there is nothing to recover).
    fn recover(
        assemble: &Assemble,
        fallback_base: &Store,
        dir: &Path,
        faults: FaultPlan,
    ) -> Result<(Durable, Option<(GAnswer<'static>, u64)>), String> {
        let base_path = dir.join(BASE_SNAPSHOT);
        let wal_path = dir.join(WAL_LOG);
        let checkpoint = match std::fs::read(&base_path) {
            Ok(bytes) => Some(
                gqa_rdf::read_snapshot(&bytes)
                    .map_err(|e| format!("checkpoint {base_path:?}: {e}"))?,
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("read checkpoint {base_path:?}: {e}")),
        };
        let (wal, scan) = if wal_path.exists() {
            let (wal, scan) = Wal::open(&wal_path, faults).map_err(|e| e.to_string())?;
            (wal, Some(scan))
        } else {
            // Fresh dir (or a hand-deleted log): start a new generation
            // whose base is whatever we are about to serve.
            (Wal::create(&wal_path, 1, faults).map_err(|e| e.to_string())?, None)
        };
        let mut durable = Durable {
            dir: dir.to_owned(),
            wal: Arc::new(GroupWal::new(wal)),
            next_epoch: 2, // callers overwrite with published epoch + 1
            enqueued: 0,
            applied: 0,
            retired: false,
            replayed_records: 0,
            replayed_ops: 0,
            torn_bytes_dropped: 0,
            checkpoints: 0,
        };
        let mut store = checkpoint;
        let mut at_least = 1;
        if let Some(scan) = scan {
            durable.replayed_records = scan.records.len() as u64;
            durable.torn_bytes_dropped = scan.truncated_bytes;
            at_least = scan.max_epoch();
            for record in scan.records {
                durable.replayed_ops += record.delta.ops.len() as u64;
                let base = store.as_ref().unwrap_or(fallback_base);
                store = Some(base.apply_delta(record.delta).0);
            }
        }
        // Publish when the durable dir actually held state; a fresh dir
        // keeps the engine's initial system (and epoch) untouched.
        let recovered = match store {
            Some(s) => Some((assemble(s)?, at_least)),
            None if at_least > 1 => Some((assemble(fallback_base.clone())?, at_least)),
            None => None,
        };
        Ok((durable, recovered))
    }

    /// The currently published system, pinned for the caller's lifetime.
    pub fn load(&self) -> Arc<Stamped<GAnswer<'static>>> {
        self.snapshot.load()
    }

    /// The current store epoch (starts at 1, +1 per successful reload,
    /// upsert, or compaction).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Whether this engine supports [`Engine::upsert`].
    pub fn supports_upsert(&self) -> bool {
        self.assemble.is_some()
    }

    /// Rebuild and atomically publish a fresh system; returns the new
    /// epoch. On error the current snapshot stays published untouched.
    ///
    /// For an in-memory engine a reload re-reads the source of truth, so
    /// any upserts applied since the last load are intentionally
    /// discarded. For a *durable* engine the durable dir **is** the
    /// source of truth: the checkpointed base (or the original source
    /// when no checkpoint exists yet) is re-read and the WAL replayed on
    /// top, so every acked upsert survives — a reload is an in-process
    /// crash-recovery drill.
    pub fn reload(&self) -> Result<u64, String> {
        let mut w = self.write.lock();
        w = self.quiesce(w);
        if let Some(d) = w.as_mut() {
            let assemble = self.assemble.as_ref().expect("durable engines have assemble");
            let source = (self.rebuild)()?;
            let faults = d.wal.faults();
            let retired = d.retired;
            let (mut durable, recovered) = Self::recover(assemble, source.store(), &d.dir, faults)?;
            let (fresh, at_least) = match recovered {
                Some(r) => r,
                None => (source, 1),
            };
            let epoch = self.snapshot.swap_at_least(fresh, at_least);
            durable.retired = retired;
            durable.next_epoch = epoch + 1;
            *d = durable;
            return Ok(epoch);
        }
        let fresh = (self.rebuild)()?;
        Ok(self.snapshot.swap(fresh))
    }

    /// Block until no durable upsert is between its WAL reservation and
    /// its publish (phases A–C). Callers that are about to replace or
    /// tear down durable state must hold the write lock across this.
    fn quiesce<'a>(
        &self,
        mut w: MutexGuard<'a, Option<Durable>>,
    ) -> MutexGuard<'a, Option<Durable>> {
        while w.as_ref().is_some_and(|d| d.applied != d.enqueued) {
            w = self.applied_cv.wait(w);
        }
        w
    }

    /// Mark the engine as unloaded: wait out in-flight durable upserts,
    /// then flag the durable state so later upserts are rejected and an
    /// in-flight background compaction publishes nothing into the (now
    /// ownerless) durable dir. Idempotent; a no-op for in-memory engines.
    pub fn retire(&self) {
        let mut w = self.write.lock();
        w = self.quiesce(w);
        if let Some(d) = w.as_mut() {
            d.retired = true;
        }
    }

    /// Apply a parsed N-Triples delta to the current store and publish
    /// the result as a new epoch. Serialized with other mutations; readers
    /// pinned to older epochs are unaffected. When the overlay crosses the
    /// compaction threshold a background fold is scheduled (at most one at
    /// a time) — answers are correct either way, compaction only restores
    /// scan locality.
    ///
    /// On a durable engine the write is three-phased so concurrent
    /// upserts share fsyncs instead of serializing on them:
    ///
    /// 1. under the write mutex, reserve the next epoch and enqueue the
    ///    record into the [`GroupWal`] (WAL order == epoch order);
    /// 2. with the mutex *released*, group-commit the record — one
    ///    leader's `sync_data` acks the whole concurrent batch;
    /// 3. re-acquire the mutex and apply/publish in reservation order
    ///    (overlay deltas do not commute, so apply order must equal
    ///    replay order).
    ///
    /// Write-ahead holds as before: the record is synced under the epoch
    /// about to be published before any caller can see a success — that
    /// ordering is the entire 200-ack durability contract.
    pub fn upsert(self: &Arc<Self>, delta: Delta) -> Result<UpsertOutcome, String> {
        let assemble = self
            .assemble
            .as_ref()
            .ok_or_else(|| "store does not support incremental upserts".to_string())?;
        let overlay;
        let epoch;
        let stats;
        {
            let mut w = self.write.lock();
            if w.is_some() {
                // Phase A: reserve an epoch + WAL slot under the lock.
                let (my_epoch, seq, wal, ticket) = {
                    let d = w.as_mut().expect("checked is_some");
                    if d.retired {
                        return Err("store has been unloaded".to_string());
                    }
                    let my_epoch = d.next_epoch;
                    let wal = Arc::clone(&d.wal);
                    // A failed enqueue consumes nothing: no epoch, no
                    // apply turn, no bytes claimed past `known_good`.
                    let ticket = wal.enqueue(my_epoch, &delta).map_err(|e| e.to_string())?;
                    d.next_epoch += 1;
                    let seq = d.enqueued;
                    d.enqueued += 1;
                    (my_epoch, seq, wal, ticket)
                };
                drop(w);

                // Phase B: make it durable. No engine lock held — this is
                // where concurrent writers batch into one fsync.
                let committed = wal.commit(ticket).map_err(|e| e.to_string());

                // Phase C: apply and publish in reservation order.
                w = self.write.lock();
                while w.as_ref().is_some_and(|d| d.applied != seq) {
                    w = self.applied_cv.wait(w);
                }
                let retired = w.as_ref().is_some_and(|d| d.retired);
                let applied = match committed {
                    Err(e) => Err(e),
                    // The record is durable (it will replay on a future
                    // load of this dir) but the tenant is gone — don't
                    // publish into a snapshot nobody owns.
                    Ok(()) if retired => Err("store has been unloaded".to_string()),
                    Ok(()) => {
                        let current = self.snapshot.load();
                        let (store, delta_stats) = current.value.store().apply_delta(delta);
                        let ov = store.overlay_stats();
                        match assemble(store) {
                            // `my_epoch` always exceeds the published
                            // epoch (earlier reservations published
                            // strictly smaller ones), so this publishes
                            // exactly the epoch the WAL record carries.
                            Ok(fresh) => {
                                Ok((self.snapshot.swap_at_least(fresh, my_epoch), delta_stats, ov))
                            }
                            Err(e) => Err(e),
                        }
                    }
                };
                // Always pass the turn, even on failure — later
                // reservations (and quiescing paths) are waiting on it.
                if let Some(d) = w.as_mut() {
                    d.applied += 1;
                }
                self.applied_cv.notify_all();
                drop(w);
                let (e, s, ov) = applied?;
                epoch = e;
                stats = s;
                overlay = ov;
            } else {
                let current = self.snapshot.load();
                let (store, delta_stats) = current.value.store().apply_delta(delta);
                overlay = store.overlay_stats();
                let fresh = assemble(store)?;
                epoch = self.snapshot.swap(fresh);
                stats = delta_stats;
            }
        }
        let compaction_scheduled = match overlay {
            Some(ov) if self.overlay_is_heavy(&ov) => self.spawn_compaction(),
            _ => false,
        };
        Ok(UpsertOutcome { epoch, stats, compaction_scheduled })
    }

    /// Fold the overlay into a fresh CSR base and publish it as a new
    /// epoch. Returns `Ok(None)` when there is no overlay to fold.
    /// Term ids and iteration order are preserved bit-for-bit
    /// ([`Store::compact`]), so answers cannot change — only layout does.
    ///
    /// On a durable engine this is also the **checkpoint**: the folded
    /// store is written (write-temp + fsync + atomic rename) as the new
    /// base snapshot *before* anything else, then the fresh system is
    /// published, then the WAL is rotated to an empty generation whose
    /// header claims the published epoch. A crash between any two steps
    /// is safe: the checkpoint already contains every logged op, so
    /// replaying a stale log over it is an idempotent no-op. A failed
    /// snapshot write aborts the checkpoint entirely (overlay and log
    /// stay; a later compaction retries); a failed rotation is tolerated
    /// for the same idempotence reason.
    pub fn compact(&self) -> Result<Option<u64>, String> {
        let assemble = self
            .assemble
            .as_ref()
            .ok_or_else(|| "store does not support incremental upserts".to_string())?;
        // Chaos site, fired *before* the write lock so a latency rule
        // models a slow fold without stalling upserts or unload.
        let faults = self.write.lock().as_ref().map(|d| d.wal.faults());
        if let Some(f) = &faults {
            if let Err(e) = f.fire(FAULT_SITE_COMPACT) {
                return Err(format!("compact aborted: {e}"));
            }
        }
        let mut w = self.write.lock();
        // Wait out in-flight durable upserts so the fold sees every
        // applied record and the rotation cannot drop an unapplied one.
        w = self.quiesce(w);
        if w.as_ref().is_some_and(|d| d.retired) {
            // Unloaded while we were folding/waiting: the durable dir is
            // no longer ours to checkpoint into. Publish nothing.
            return Ok(None);
        }
        let current = self.snapshot.load();
        if !current.value.store().has_overlay() {
            return Ok(None);
        }
        let folded = current.value.store().compact();
        if let Some(d) = w.as_mut() {
            let base_path = d.dir.join(BASE_SNAPSHOT);
            gqa_rdf::write_snapshot_file(&folded, &base_path)
                .map_err(|e| format!("checkpoint {base_path:?}: {e}"))?;
        }
        let fresh = assemble(folded)?;
        let epoch = self.snapshot.swap(fresh);
        if let Some(d) = w.as_mut() {
            if d.wal.rotate(epoch).is_ok() {
                d.checkpoints += 1;
            }
            d.next_epoch = d.next_epoch.max(epoch + 1);
        }
        Ok(Some(epoch))
    }

    /// Durability counters, or `None` for an in-memory engine. Takes the
    /// write mutex briefly; meant for status/metrics paths, not hot ones.
    pub fn durable_status(&self) -> Option<DurableStatus> {
        self.write.lock().as_ref().map(|d| {
            let group = d.wal.group_stats();
            DurableStatus {
                wal_bytes: d.wal.bytes(),
                wal_records: d.wal.records(),
                replayed_records: d.replayed_records,
                replayed_ops: d.replayed_ops,
                torn_bytes_dropped: d.torn_bytes_dropped,
                checkpoints: d.checkpoints,
                poisoned: d.wal.poisoned(),
                group_syncs: group.syncs,
                group_commits: group.commits,
                group_max_batch: group.max_batch,
            }
        })
    }

    /// Whether this engine write-ahead-logs its upserts.
    pub fn is_durable(&self) -> bool {
        self.write.lock().is_some()
    }

    fn overlay_is_heavy(&self, ov: &OverlayStats) -> bool {
        ov.adds + ov.dels >= self.compact_ops
    }

    /// Schedule a background [`Engine::compact`]; returns whether a new
    /// one was actually spawned (false when one is already running or the
    /// thread could not be created).
    fn spawn_compaction(self: &Arc<Self>) -> bool {
        if self.compacting.swap(true, Ordering::AcqRel) {
            return false;
        }
        let engine = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("gqa-compact".to_owned())
            .spawn(move || {
                // A failed assemble leaves the overlay in place; the next
                // heavy upsert will retry. Nothing to surface here — the
                // published snapshot is still correct.
                let _ = engine.compact();
                engine.compacting.store(false, Ordering::Release);
            })
            .is_ok();
        if !spawned {
            self.compacting.store(false, Ordering::Release);
        }
        spawned
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("epoch", &self.epoch())
            .field("supports_upsert", &self.supports_upsert())
            .field("compact_ops", &self.compact_ops)
            .finish_non_exhaustive()
    }
}
