//! The reloadable, incrementally-updatable engine behind one tenant.

use gqa_core::pipeline::GAnswer;
use gqa_fault::FaultPlan;
use gqa_rdf::overlay::{Delta, DeltaStats, OverlayStats};
use gqa_rdf::snapshot::{Snapshot, Stamped};
use gqa_rdf::wal::Wal;
use gqa_rdf::Store;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Rebuild = Box<dyn Fn() -> Result<GAnswer<'static>, String> + Send + Sync>;
type Assemble = Box<dyn Fn(Store) -> Result<GAnswer<'static>, String> + Send + Sync>;

/// Durable (write-ahead-logged) state for one engine. Lives inside the
/// write mutex so the WAL is only ever touched by the serialized
/// mutation path — appends, checkpoints, and recovery can never race.
struct Durable {
    dir: PathBuf,
    wal: Wal,
    /// Records replayed from the log at the last open/recovery.
    replayed_records: u64,
    /// Individual ops inside those records.
    replayed_ops: u64,
    /// Torn-tail bytes dropped at the last open/recovery.
    torn_bytes_dropped: u64,
    /// Checkpoints (snapshot + WAL rotation) taken by this engine.
    checkpoints: u64,
}

/// Point-in-time durability counters for `/admin/stores` and `/metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableStatus {
    /// Bytes of validated WAL on disk (header + complete records).
    pub wal_bytes: u64,
    /// Complete records in the current WAL generation.
    pub wal_records: u64,
    /// Records replayed at the last open/recovery.
    pub replayed_records: u64,
    /// Ops replayed at the last open/recovery.
    pub replayed_ops: u64,
    /// Torn-tail bytes truncated at the last open/recovery.
    pub torn_bytes_dropped: u64,
    /// Checkpoints (snapshot write + WAL rotation) taken so far.
    pub checkpoints: u64,
    /// Whether the WAL has poisoned itself after a failed repair (all
    /// further upserts fail until restart).
    pub poisoned: bool,
}

/// File name of the checkpointed base store inside a durable dir.
const BASE_SNAPSHOT: &str = "base.snap";
/// File name of the write-ahead log inside a durable dir.
const WAL_LOG: &str = "wal.log";

/// What one successful [`Engine::upsert`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpsertOutcome {
    /// The epoch under which the mutated store was published.
    pub epoch: u64,
    /// What the delta changed (adds / deletes / no-ops / new terms).
    pub stats: DeltaStats,
    /// Whether this upsert pushed the overlay past the compaction
    /// threshold and a background fold into a fresh CSR was scheduled.
    pub compaction_scheduled: bool,
}

/// A reloadable handle around the QA system: the current snapshot plus
/// the recipes to replace it. `POST /admin/reload` and SIGHUP call
/// [`Engine::reload`]: the rebuild runs *outside* any snapshot lock, the
/// swap is atomic, and in-flight requests keep the snapshot they loaded —
/// the epoch bump is what invalidates answer-cache entries computed
/// against the old store (each entry is stamped; see
/// [`gqa_core::cache::AnswerCache`]).
///
/// An engine built with [`Engine::with_assemble`] additionally supports
/// **incremental upserts**: [`Engine::upsert`] applies an N-Triples delta
/// as an overlay on the immutable CSR base ([`Store::apply_delta`]),
/// re-assembles the derived pipeline state (linker index, literal index,
/// schema) around the mutated store, and publishes the result as a new
/// epoch — no stop-the-world rebuild, no source re-read. Once the overlay
/// grows past a threshold relative to the base, a background thread folds
/// it into a fresh CSR ([`Store::compact`]) and publishes that as yet
/// another epoch.
///
/// All mutations (`reload`, `upsert`, `compact`) are serialized by a
/// write mutex so concurrent writers cannot lose each other's updates;
/// readers never touch that mutex — [`Engine::load`] stays wait-free.
pub struct Engine {
    snapshot: Snapshot<GAnswer<'static>>,
    rebuild: Rebuild,
    assemble: Option<Assemble>,
    /// Serializes reload/upsert/compact, and owns the durable (WAL)
    /// state when [`Engine::with_durable`] enabled it. Held across the
    /// (re)build so a compaction cannot interleave with an upsert and
    /// drop its delta — and so a WAL append can never race a rotation.
    write: Mutex<Option<Durable>>,
    /// Overlay ops (adds + dels) that trigger a background compaction.
    compact_ops: usize,
    /// At most one background compaction in flight per engine.
    compacting: AtomicBool,
}

impl Engine {
    /// Overlay ops (adds + dels) floor before compaction kicks in.
    pub const DEFAULT_COMPACT_OPS: usize = 4096;

    /// An engine serving `initial` (epoch 1), reloading via `rebuild`.
    /// For metric continuity the rebuild closure should construct the new
    /// system over the *same* `Obs` handle as `initial`. An engine built
    /// this way rejects [`Engine::upsert`] (there is no assemble recipe).
    pub fn new(
        initial: GAnswer<'static>,
        rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
    ) -> Self {
        Engine {
            snapshot: Snapshot::new(initial),
            rebuild: Box::new(rebuild),
            assemble: None,
            write: Mutex::new(None),
            compact_ops: Self::DEFAULT_COMPACT_OPS,
            compacting: AtomicBool::new(false),
        }
    }

    /// Like [`Engine::new`] but also able to re-assemble the system
    /// around a mutated [`Store`], which is what makes [`Engine::upsert`]
    /// work. The assemble closure should be cheap relative to a full
    /// reload: typically `GAnswer::shared(Arc::new(store), dict.clone(),
    /// config.clone(), obs.clone())` — derived indexes are rebuilt, the
    /// source files are not re-read.
    pub fn with_assemble(
        initial: GAnswer<'static>,
        rebuild: impl Fn() -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
        assemble: impl Fn(Store) -> Result<GAnswer<'static>, String> + Send + Sync + 'static,
    ) -> Self {
        let mut engine = Engine::new(initial, rebuild);
        engine.assemble = Some(Box::new(assemble));
        engine
    }

    /// Override the compaction floor (before wrapping in an `Arc`).
    /// Mostly for tests; the default keeps small interactive upserts from
    /// ever paying a CSR rebuild.
    pub fn compact_after(mut self, ops: usize) -> Self {
        self.compact_ops = ops.max(1);
        self
    }

    /// Turn on durability (builder-style, before wrapping in an `Arc`):
    /// upserts are write-ahead logged under `dir` and survive `kill -9`.
    ///
    /// This *is* crash recovery: if `dir` already holds a checkpointed
    /// base snapshot and/or a WAL, the base is loaded (falling back to
    /// the engine's initial system when there is no checkpoint yet),
    /// every logged op batch is re-applied as an overlay, and the result
    /// is published at an epoch no lower than the highest one the log
    /// attests to — so epochs acked before the crash stay meaningful.
    /// Replay is idempotent (re-upserting a present triple and deleting
    /// an absent one are no-ops), so a crash *during* recovery is itself
    /// recoverable. A torn final record is truncated, never a panic.
    ///
    /// `faults` arms the `wal.append` / `wal.fsync` chaos sites; pass
    /// [`FaultPlan::none()`] outside the chaos suite. Requires an
    /// assemble recipe ([`Engine::with_assemble`]) since durability only
    /// means something for upsertable engines.
    pub fn with_durable(self, dir: &Path, faults: FaultPlan) -> Result<Self, String> {
        let assemble = self.assemble.as_ref().ok_or("durable stores need an upsertable engine")?;
        std::fs::create_dir_all(dir).map_err(|e| format!("create durable dir {dir:?}: {e}"))?;
        let current = self.snapshot.load();
        let (durable, recovered) = Self::recover(assemble, current.value.store(), dir, faults)?;
        if let Some((fresh, at_least)) = recovered {
            self.snapshot.swap_at_least(fresh, at_least);
        }
        *self.write.lock() = Some(durable);
        Ok(self)
    }

    /// Open (or create) the durable state under `dir` and replay the log
    /// over the checkpointed base — or over `fallback_base` when no
    /// checkpoint exists yet. Returns the refreshed system to publish
    /// (`None` when the dir is fresh and there is nothing to recover).
    fn recover(
        assemble: &Assemble,
        fallback_base: &Store,
        dir: &Path,
        faults: FaultPlan,
    ) -> Result<(Durable, Option<(GAnswer<'static>, u64)>), String> {
        let base_path = dir.join(BASE_SNAPSHOT);
        let wal_path = dir.join(WAL_LOG);
        let checkpoint = match std::fs::read(&base_path) {
            Ok(bytes) => Some(
                gqa_rdf::read_snapshot(&bytes)
                    .map_err(|e| format!("checkpoint {base_path:?}: {e}"))?,
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(format!("read checkpoint {base_path:?}: {e}")),
        };
        let (wal, scan) = if wal_path.exists() {
            let (wal, scan) = Wal::open(&wal_path, faults).map_err(|e| e.to_string())?;
            (wal, Some(scan))
        } else {
            // Fresh dir (or a hand-deleted log): start a new generation
            // whose base is whatever we are about to serve.
            (Wal::create(&wal_path, 1, faults).map_err(|e| e.to_string())?, None)
        };
        let mut durable = Durable {
            dir: dir.to_owned(),
            wal,
            replayed_records: 0,
            replayed_ops: 0,
            torn_bytes_dropped: 0,
            checkpoints: 0,
        };
        let mut store = checkpoint;
        let mut at_least = 1;
        if let Some(scan) = scan {
            durable.replayed_records = scan.records.len() as u64;
            durable.torn_bytes_dropped = scan.truncated_bytes;
            at_least = scan.max_epoch();
            for record in scan.records {
                durable.replayed_ops += record.delta.ops.len() as u64;
                let base = store.as_ref().unwrap_or(fallback_base);
                store = Some(base.apply_delta(record.delta).0);
            }
        }
        // Publish when the durable dir actually held state; a fresh dir
        // keeps the engine's initial system (and epoch) untouched.
        let recovered = match store {
            Some(s) => Some((assemble(s)?, at_least)),
            None if at_least > 1 => Some((assemble(fallback_base.clone())?, at_least)),
            None => None,
        };
        Ok((durable, recovered))
    }

    /// The currently published system, pinned for the caller's lifetime.
    pub fn load(&self) -> Arc<Stamped<GAnswer<'static>>> {
        self.snapshot.load()
    }

    /// The current store epoch (starts at 1, +1 per successful reload,
    /// upsert, or compaction).
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Whether this engine supports [`Engine::upsert`].
    pub fn supports_upsert(&self) -> bool {
        self.assemble.is_some()
    }

    /// Rebuild and atomically publish a fresh system; returns the new
    /// epoch. On error the current snapshot stays published untouched.
    ///
    /// For an in-memory engine a reload re-reads the source of truth, so
    /// any upserts applied since the last load are intentionally
    /// discarded. For a *durable* engine the durable dir **is** the
    /// source of truth: the checkpointed base (or the original source
    /// when no checkpoint exists yet) is re-read and the WAL replayed on
    /// top, so every acked upsert survives — a reload is an in-process
    /// crash-recovery drill.
    pub fn reload(&self) -> Result<u64, String> {
        let mut w = self.write.lock();
        if let Some(d) = w.as_mut() {
            let assemble = self.assemble.as_ref().expect("durable engines have assemble");
            let source = (self.rebuild)()?;
            let faults = d.wal.faults().clone();
            let (durable, recovered) = Self::recover(assemble, source.store(), &d.dir, faults)?;
            let (fresh, at_least) = match recovered {
                Some(r) => r,
                None => (source, 1),
            };
            *d = durable;
            return Ok(self.snapshot.swap_at_least(fresh, at_least));
        }
        let fresh = (self.rebuild)()?;
        Ok(self.snapshot.swap(fresh))
    }

    /// Apply a parsed N-Triples delta to the current store and publish
    /// the result as a new epoch. Serialized with other mutations; readers
    /// pinned to older epochs are unaffected. When the overlay crosses the
    /// compaction threshold a background fold is scheduled (at most one at
    /// a time) — answers are correct either way, compaction only restores
    /// scan locality.
    pub fn upsert(self: &Arc<Self>, delta: Delta) -> Result<UpsertOutcome, String> {
        let assemble = self
            .assemble
            .as_ref()
            .ok_or_else(|| "store does not support incremental upserts".to_string())?;
        let overlay;
        let epoch;
        let stats;
        {
            let mut w = self.write.lock();
            let current = self.snapshot.load();
            if let Some(d) = w.as_mut() {
                // Write-ahead: the batch must be on disk (synced) under
                // the epoch about to be published *before* any caller
                // can see a success — that ordering is the entire 200-ack
                // durability contract.
                d.wal.append(current.epoch + 1, &delta).map_err(|e| e.to_string())?;
            }
            let (store, delta_stats) = current.value.store().apply_delta(delta);
            overlay = store.overlay_stats();
            let fresh = assemble(store)?;
            epoch = self.snapshot.swap(fresh);
            stats = delta_stats;
        }
        let compaction_scheduled = match overlay {
            Some(ov) if self.overlay_is_heavy(&ov) => self.spawn_compaction(),
            _ => false,
        };
        Ok(UpsertOutcome { epoch, stats, compaction_scheduled })
    }

    /// Fold the overlay into a fresh CSR base and publish it as a new
    /// epoch. Returns `Ok(None)` when there is no overlay to fold.
    /// Term ids and iteration order are preserved bit-for-bit
    /// ([`Store::compact`]), so answers cannot change — only layout does.
    ///
    /// On a durable engine this is also the **checkpoint**: the folded
    /// store is written (write-temp + fsync + atomic rename) as the new
    /// base snapshot *before* anything else, then the fresh system is
    /// published, then the WAL is rotated to an empty generation whose
    /// header claims the published epoch. A crash between any two steps
    /// is safe: the checkpoint already contains every logged op, so
    /// replaying a stale log over it is an idempotent no-op. A failed
    /// snapshot write aborts the checkpoint entirely (overlay and log
    /// stay; a later compaction retries); a failed rotation is tolerated
    /// for the same idempotence reason.
    pub fn compact(&self) -> Result<Option<u64>, String> {
        let assemble = self
            .assemble
            .as_ref()
            .ok_or_else(|| "store does not support incremental upserts".to_string())?;
        let mut w = self.write.lock();
        let current = self.snapshot.load();
        if !current.value.store().has_overlay() {
            return Ok(None);
        }
        let folded = current.value.store().compact();
        if let Some(d) = w.as_mut() {
            let base_path = d.dir.join(BASE_SNAPSHOT);
            gqa_rdf::write_snapshot_file(&folded, &base_path)
                .map_err(|e| format!("checkpoint {base_path:?}: {e}"))?;
        }
        let fresh = assemble(folded)?;
        let epoch = self.snapshot.swap(fresh);
        if let Some(d) = w.as_mut() {
            if d.wal.rotate(epoch).is_ok() {
                d.checkpoints += 1;
            }
        }
        Ok(Some(epoch))
    }

    /// Durability counters, or `None` for an in-memory engine. Takes the
    /// write mutex briefly; meant for status/metrics paths, not hot ones.
    pub fn durable_status(&self) -> Option<DurableStatus> {
        self.write.lock().as_ref().map(|d| DurableStatus {
            wal_bytes: d.wal.bytes(),
            wal_records: d.wal.records(),
            replayed_records: d.replayed_records,
            replayed_ops: d.replayed_ops,
            torn_bytes_dropped: d.torn_bytes_dropped,
            checkpoints: d.checkpoints,
            poisoned: d.wal.poisoned(),
        })
    }

    /// Whether this engine write-ahead-logs its upserts.
    pub fn is_durable(&self) -> bool {
        self.write.lock().is_some()
    }

    fn overlay_is_heavy(&self, ov: &OverlayStats) -> bool {
        ov.adds + ov.dels >= self.compact_ops
    }

    /// Schedule a background [`Engine::compact`]; returns whether a new
    /// one was actually spawned (false when one is already running or the
    /// thread could not be created).
    fn spawn_compaction(self: &Arc<Self>) -> bool {
        if self.compacting.swap(true, Ordering::AcqRel) {
            return false;
        }
        let engine = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("gqa-compact".to_owned())
            .spawn(move || {
                // A failed assemble leaves the overlay in place; the next
                // heavy upsert will retry. Nothing to surface here — the
                // published snapshot is still correct.
                let _ = engine.compact();
                engine.compacting.store(false, Ordering::Release);
            })
            .is_ok();
        if !spawned {
            self.compacting.store(false, Ordering::Release);
        }
        spawned
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("epoch", &self.epoch())
            .field("supports_upsert", &self.supports_upsert())
            .field("compact_ops", &self.compact_ops)
            .finish_non_exhaustive()
    }
}
