//! Named tenants and the registry that routes requests to them.

use crate::engine::{DurableStatus, Engine, UpsertOutcome};
use crate::manifest::Manifest;
use gqa_core::cache::{AnswerCache, AnswerCacheStats};
use gqa_obs::Obs;
use gqa_rdf::overlay::{Delta, OverlayStats};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Builds a brand-new engine for `POST /admin/stores/load`: receives the
/// tenant name (for metric scoping) and an operator-supplied source spec
/// (e.g. `data.nt` or `data.nt,dict.tsv`). `None` means live loading is
/// not wired up (embedding APIs, tests) and load requests get
/// [`TenantError::NoFactory`].
pub type Factory = Box<dyn Fn(&str, &str) -> Result<Engine, String> + Send + Sync>;

/// Tenant names are path-safe identifiers: `[A-Za-z0-9._-]{1,64}`, and
/// not `.` or `..` (the charset already excludes `/`, so a valid name can
/// never traverse anywhere if an operator uses it in a path).
pub fn valid_tenant_name(name: &str) -> bool {
    (1..=64).contains(&name.len())
        && name != "."
        && name != ".."
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Why a tenant operation failed. The HTTP layer maps these onto
/// statuses; none of them is ever a panic or a blanket 500.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// The name fails [`valid_tenant_name`].
    InvalidName(String),
    /// No tenant registered under this name.
    Unknown(String),
    /// The tenant is mid-load; try again shortly.
    Loading(String),
    /// The tenant's last (re)load failed; the error is kept for `/healthz`.
    Failed { name: String, error: String },
    /// `load` of a name that is already serving or loading.
    AlreadyExists(String),
    /// `load` without a configured [`Factory`].
    NoFactory,
    /// The default tenant cannot be unloaded (requests without a `store`
    /// field route to it).
    DefaultUnload(String),
    /// A reload/upsert/compact on a live tenant failed; the previous
    /// snapshot is still being served.
    Engine { name: String, error: String },
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::InvalidName(n) => write!(
                f,
                "invalid store name {n:?}: want 1-64 chars of [A-Za-z0-9._-], not '.' or '..'"
            ),
            TenantError::Unknown(n) => write!(f, "unknown store {n:?}"),
            TenantError::Loading(n) => write!(f, "store {n:?} is still loading"),
            TenantError::Failed { name, error } => {
                write!(f, "store {name:?} failed to load: {error}")
            }
            TenantError::AlreadyExists(n) => write!(f, "store {n:?} already exists"),
            TenantError::NoFactory => write!(f, "live store loading is not enabled"),
            TenantError::DefaultUnload(n) => {
                write!(f, "store {n:?} is the default store and cannot be unloaded")
            }
            TenantError::Engine { name, error } => write!(f, "store {name:?}: {error}"),
        }
    }
}

impl std::error::Error for TenantError {}

/// One tenant's serving stack: a named engine, its answer cache, and the
/// scoped observability handle stamping its series with `store="<name>"`.
pub struct Tenant {
    name: String,
    engine: Arc<Engine>,
    cache: Option<AnswerCache>,
    obs: Obs,
}

impl Tenant {
    fn new(name: &str, engine: Arc<Engine>, cache_capacity: usize, base_obs: &Obs) -> Arc<Self> {
        let obs = base_obs.scoped("store", name);
        let cache = (cache_capacity > 0).then(|| AnswerCache::with_capacity(cache_capacity));
        if cache.is_some() {
            // Pre-register so a scrape is never missing the series.
            obs.counter("gqa_server_cache_hits_total", &[]);
            obs.counter("gqa_server_cache_misses_total", &[]);
            obs.counter("gqa_server_cache_stale_total", &[]);
            obs.counter("gqa_server_cache_evictions_total", &[]);
            obs.histogram("gqa_server_cache_hit_duration_seconds", &[], gqa_obs::DURATION_BUCKETS);
        }
        Arc::new(Tenant { name: name.to_owned(), engine, cache, obs })
    }

    /// The tenant's name (also its `store` metric label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reloadable engine behind this tenant.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// This tenant's answer cache, if caching is enabled.
    pub fn cache(&self) -> Option<&AnswerCache> {
        self.cache.as_ref()
    }

    /// The tenant-scoped observability handle (`store="<name>"`).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Copy cache counters into the metric registry (scrape-time) and
    /// publish the pinned system's store/linker series through the
    /// tenant-scoped handle.
    pub fn publish_metrics(&self) {
        self.engine.load().value.publish_metrics_to(&self.obs);
        if let Some(cache) = &self.cache {
            let s = cache.stats();
            self.obs.set_counter("gqa_server_cache_hits_total", &[], s.hits);
            self.obs.set_counter("gqa_server_cache_misses_total", &[], s.misses);
            self.obs.set_counter("gqa_server_cache_stale_total", &[], s.stale);
            self.obs.set_counter("gqa_server_cache_evictions_total", &[], s.evictions);
        }
        if let Some(d) = self.engine.durable_status() {
            self.obs.gauge("gqa_wal_bytes", &[]).set(d.wal_bytes as i64);
            self.obs.gauge("gqa_wal_records", &[]).set(d.wal_records as i64);
            self.obs.gauge("gqa_wal_poisoned", &[]).set(d.poisoned as i64);
            self.obs.set_counter("gqa_wal_replayed_records_total", &[], d.replayed_records);
            self.obs.set_counter("gqa_wal_replayed_ops_total", &[], d.replayed_ops);
            self.obs.set_counter("gqa_wal_torn_bytes_dropped_total", &[], d.torn_bytes_dropped);
            self.obs.set_counter("gqa_wal_checkpoints_total", &[], d.checkpoints);
            self.obs.set_counter("gqa_wal_group_syncs_total", &[], d.group_syncs);
            self.obs.set_counter("gqa_wal_group_commits_total", &[], d.group_commits);
            self.obs.gauge("gqa_wal_group_max_batch", &[]).set(d.group_max_batch as i64);
        }
    }

    /// A point-in-time summary for `GET /admin/stores`. A serving tenant
    /// whose WAL has poisoned itself reports `degraded`: reads still
    /// work, but every durable upsert will 503 until a restart.
    pub fn status(&self) -> TenantStatus {
        let pinned = self.engine.load();
        let store = pinned.value.store();
        let durable = self.engine.durable_status();
        let state = if durable.as_ref().is_some_and(|d| d.poisoned) {
            TenantState::Degraded
        } else {
            TenantState::Ready
        };
        TenantStatus {
            name: self.name.clone(),
            state,
            epoch: pinned.epoch,
            triples: store.len(),
            terms: store.term_count(),
            bytes: store.section_bytes().total(),
            overlay: store.overlay_stats(),
            cache: self.cache.as_ref().map(|c| (c.stats(), c.len())),
            durable,
        }
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("epoch", &self.engine.epoch())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

/// Lifecycle state of a registry slot, as reported by `/healthz` and
/// `GET /admin/stores`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// Serving.
    Ready,
    /// Serving reads, but the WAL has poisoned itself — durable upserts
    /// 503 until a restart replays the log into a fresh generation.
    Degraded,
    /// A `load` is running; the slot is reserved.
    Loading,
    /// The last `load` failed; kept so health checks can surface why.
    Failed(String),
}

impl TenantState {
    /// Lower-case wire name (`ready` / `degraded` / `loading` / `failed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TenantState::Ready => "ready",
            TenantState::Degraded => "degraded",
            TenantState::Loading => "loading",
            TenantState::Failed(_) => "failed",
        }
    }

    /// Whether a tenant in this state answers queries (`ready` or
    /// `degraded` — a poisoned WAL only blocks writes).
    pub fn serving(&self) -> bool {
        matches!(self, TenantState::Ready | TenantState::Degraded)
    }
}

/// One row of `GET /admin/stores` / `/healthz`.
#[derive(Clone, Debug)]
pub struct TenantStatus {
    pub name: String,
    pub state: TenantState,
    /// 0 while loading/failed (epochs start at 1).
    pub epoch: u64,
    pub triples: usize,
    pub terms: usize,
    /// Estimated resident bytes of the store (dict + triples + indexes +
    /// overlay).
    pub bytes: usize,
    /// Present when the store carries an unfolded delta overlay.
    pub overlay: Option<OverlayStats>,
    /// Cache counters and current entry count, when caching is on.
    pub cache: Option<(AnswerCacheStats, usize)>,
    /// WAL counters, when the tenant is durable.
    pub durable: Option<DurableStatus>,
}

enum Slot {
    Ready(Arc<Tenant>),
    Loading,
    Failed(String),
}

/// The name → tenant map. The `RwLock` guards only the `HashMap`; engine
/// (re)builds run outside it, so operating on one tenant never blocks
/// requests to the others. All methods validate names first — an
/// arbitrary `store` string from a request body can reach every public
/// method safely.
pub struct Registry {
    slots: RwLock<HashMap<String, Slot>>,
    default_name: String,
    factory: Option<Factory>,
    cache_capacity: usize,
    /// Unscoped handle: the tenant-count gauge has no `store` label, and
    /// each tenant's scoped handle is derived from this one.
    obs: Obs,
    /// The on-disk tenant catalog (durable deployments only): every
    /// runtime `load`/`unload` is recorded here *before* it is acked, so
    /// a `kill -9` cannot forget a tenant. Its own mutex — the slot lock
    /// must not be held across a file write.
    manifest: Option<Mutex<Manifest>>,
}

impl Registry {
    /// A registry serving `default_engine` under `default_name`. Requests
    /// without a `store` field route here; this tenant cannot be
    /// unloaded. `cache_capacity` applies per tenant (0 disables
    /// caching). `obs` should be the *unscoped* serving handle — tenants
    /// derive their `store="<name>"` scopes from it.
    pub fn new(
        default_name: &str,
        default_engine: Arc<Engine>,
        cache_capacity: usize,
        obs: Obs,
    ) -> Result<Self, TenantError> {
        if !valid_tenant_name(default_name) {
            return Err(TenantError::InvalidName(default_name.to_owned()));
        }
        let registry = Registry {
            slots: RwLock::new(HashMap::new()),
            default_name: default_name.to_owned(),
            factory: None,
            cache_capacity,
            obs,
            manifest: None,
        };
        let tenant = Tenant::new(default_name, default_engine, cache_capacity, &registry.obs);
        registry.slots.write().insert(default_name.to_owned(), Slot::Ready(tenant));
        registry.publish_count();
        Ok(registry)
    }

    /// Enable `POST /admin/stores/load` (builder-style, before sharing).
    pub fn with_factory(mut self, factory: Factory) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Attach the on-disk tenant catalog (builder-style, durable
    /// deployments). From here on every successful runtime `load` and
    /// `unload` rewrites the manifest before acking, and the serving
    /// binary replays it on boot ([`Manifest::entries`]).
    pub fn with_manifest(mut self, manifest: Manifest) -> Self {
        self.manifest = Some(Mutex::new(manifest));
        self
    }

    /// Register an additional pre-built tenant at boot (e.g. one
    /// `--store NAME=SPEC` flag). Fails on invalid or duplicate names.
    pub fn insert(&self, name: &str, engine: Arc<Engine>) -> Result<Arc<Tenant>, TenantError> {
        if !valid_tenant_name(name) {
            return Err(TenantError::InvalidName(name.to_owned()));
        }
        let tenant = Tenant::new(name, engine, self.cache_capacity, &self.obs);
        {
            let mut slots = self.slots.write();
            if slots.contains_key(name) {
                return Err(TenantError::AlreadyExists(name.to_owned()));
            }
            slots.insert(name.to_owned(), Slot::Ready(Arc::clone(&tenant)));
        }
        self.publish_count();
        Ok(tenant)
    }

    /// The name requests without a `store` field route to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The unscoped serving handle this registry was built over.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Resolve a request's optional `store` field to a serving tenant.
    /// `None` or the default name always succeeds (the default tenant is
    /// pinned at construction and cannot be unloaded).
    pub fn get(&self, name: Option<&str>) -> Result<Arc<Tenant>, TenantError> {
        let name = name.unwrap_or(&self.default_name);
        if !valid_tenant_name(name) {
            return Err(TenantError::InvalidName(name.to_owned()));
        }
        match self.slots.read().get(name) {
            Some(Slot::Ready(t)) => Ok(Arc::clone(t)),
            Some(Slot::Loading) => Err(TenantError::Loading(name.to_owned())),
            Some(Slot::Failed(e)) => {
                Err(TenantError::Failed { name: name.to_owned(), error: e.clone() })
            }
            None => Err(TenantError::Unknown(name.to_owned())),
        }
    }

    /// The default tenant (always present and ready).
    pub fn default_tenant(&self) -> Arc<Tenant> {
        self.get(None).expect("default tenant is pinned at construction")
    }

    /// Build and register a new tenant from an operator source spec. The
    /// factory runs *outside* the map lock — the slot is parked as
    /// `Loading` meanwhile, so concurrent loads of the same name race
    /// cleanly ([`TenantError::AlreadyExists`]) and requests to other
    /// tenants proceed undisturbed. A failed load leaves a `Failed` slot
    /// (visible in `/healthz`) that a retry may overwrite.
    pub fn load(&self, name: &str, source: &str) -> Result<Arc<Tenant>, TenantError> {
        if !valid_tenant_name(name) {
            return Err(TenantError::InvalidName(name.to_owned()));
        }
        let factory = self.factory.as_ref().ok_or(TenantError::NoFactory)?;
        {
            let mut slots = self.slots.write();
            match slots.get(name) {
                Some(Slot::Ready(_)) | Some(Slot::Loading) => {
                    return Err(TenantError::AlreadyExists(name.to_owned()));
                }
                Some(Slot::Failed(_)) | None => {
                    slots.insert(name.to_owned(), Slot::Loading);
                }
            }
        }
        self.publish_count();
        match factory(name, source) {
            Ok(engine) => {
                // Catalog the tenant *before* acking: once load returns
                // Ok, a kill -9 must not forget the store. A failed
                // manifest write fails the load — the slot reverts so a
                // retry is clean and no unrecorded tenant serves.
                if let Some(manifest) = &self.manifest {
                    if let Err(error) = manifest.lock().record_load(name, source) {
                        self.slots.write().remove(name);
                        self.publish_count();
                        return Err(TenantError::Failed { name: name.to_owned(), error });
                    }
                }
                let tenant = Tenant::new(name, Arc::new(engine), self.cache_capacity, &self.obs);
                self.slots.write().insert(name.to_owned(), Slot::Ready(Arc::clone(&tenant)));
                Ok(tenant)
            }
            Err(error) => {
                self.slots.write().insert(name.to_owned(), Slot::Failed(error.clone()));
                Err(TenantError::Failed { name: name.to_owned(), error })
            }
        }
    }

    /// Drop a tenant. In-flight requests holding its `Arc` finish
    /// normally; the memory goes away when the last of them drops. The
    /// tenant's `store="<name>"` metric series are removed from the
    /// registry so `/metrics` stops reporting a ghost of it.
    ///
    /// A durable tenant is *retired* first ([`Engine::retire`]): unload
    /// waits out in-flight durable upserts and flags the engine so a
    /// background compaction still running cannot write a checkpoint or
    /// rotate the WAL inside the removed tenant's durable dir. Then the
    /// manifest forgets the name, so the next boot doesn't resurrect it.
    pub fn unload(&self, name: &str) -> Result<(), TenantError> {
        if !valid_tenant_name(name) {
            return Err(TenantError::InvalidName(name.to_owned()));
        }
        if name == self.default_name {
            return Err(TenantError::DefaultUnload(name.to_owned()));
        }
        let removed = self.slots.write().remove(name);
        match removed {
            Some(slot) => {
                if let Slot::Ready(tenant) = &slot {
                    tenant.engine().retire();
                }
                self.obs.remove_scoped("store", name);
                self.publish_count();
                if let Some(manifest) = &self.manifest {
                    manifest.lock().record_unload(name).map_err(|error| {
                        // The tenant is gone from memory but still
                        // cataloged: surface it so the operator knows the
                        // next boot will bring the store back.
                        TenantError::Engine { name: name.to_owned(), error }
                    })?;
                }
                Ok(())
            }
            None => Err(TenantError::Unknown(name.to_owned())),
        }
    }

    /// Reload one tenant from its sources; returns the new epoch. Runs
    /// outside the map lock — only that tenant's writers serialize.
    pub fn reload(&self, name: Option<&str>) -> Result<u64, TenantError> {
        let tenant = self.get(name)?;
        tenant
            .engine()
            .reload()
            .map_err(|error| TenantError::Engine { name: tenant.name().to_owned(), error })
    }

    /// Apply a parsed delta to one tenant; returns the upsert outcome.
    pub fn upsert(&self, name: Option<&str>, delta: Delta) -> Result<UpsertOutcome, TenantError> {
        let tenant = self.get(name)?;
        tenant
            .engine()
            .upsert(delta)
            .map_err(|error| TenantError::Engine { name: tenant.name().to_owned(), error })
    }

    /// Every slot's status, sorted by name (deterministic output for
    /// `GET /admin/stores` and tests).
    pub fn list(&self) -> Vec<TenantStatus> {
        let mut rows: Vec<TenantStatus> = self
            .slots
            .read()
            .iter()
            .map(|(name, slot)| match slot {
                Slot::Ready(t) => t.status(),
                Slot::Loading => TenantStatus {
                    name: name.clone(),
                    state: TenantState::Loading,
                    epoch: 0,
                    triples: 0,
                    terms: 0,
                    bytes: 0,
                    overlay: None,
                    cache: None,
                    durable: None,
                },
                Slot::Failed(e) => TenantStatus {
                    name: name.clone(),
                    state: TenantState::Failed(e.clone()),
                    epoch: 0,
                    triples: 0,
                    terms: 0,
                    bytes: 0,
                    overlay: None,
                    cache: None,
                    durable: None,
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// All ready tenants (for scrape-time metric publication).
    pub fn ready(&self) -> Vec<Arc<Tenant>> {
        let mut tenants: Vec<Arc<Tenant>> = self
            .slots
            .read()
            .values()
            .filter_map(|slot| match slot {
                Slot::Ready(t) => Some(Arc::clone(t)),
                _ => None,
            })
            .collect();
        tenants.sort_by(|a, b| a.name().cmp(b.name()));
        tenants
    }

    /// Number of registered slots (any state).
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Never — the default tenant is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the default tenant is serving (it always is — pinned at
    /// construction; a `degraded` default still answers reads) and
    /// every slot's status. `/healthz` reports 200 on the former and
    /// lists the laggards from the latter.
    pub fn health(&self) -> (bool, Vec<TenantStatus>) {
        let rows = self.list();
        let default_ready = rows.iter().any(|r| r.name == self.default_name && r.state.serving());
        (default_ready, rows)
    }

    fn publish_count(&self) {
        self.obs.gauge("gqa_server_stores", &[]).set(self.slots.read().len() as i64);
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("default", &self.default_name)
            .field("stores", &self.len())
            .field("cache_capacity", &self.cache_capacity)
            .field("has_factory", &self.factory.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_core::concurrency::Concurrency;
    use gqa_core::pipeline::{GAnswer, GAnswerConfig};
    use gqa_datagen::minidbp::mini_dbpedia;
    use gqa_datagen::patty::mini_dict;
    use gqa_rdf::ntriples::parse_delta;
    use std::sync::Arc;

    fn engine(obs: &Obs) -> Engine {
        let obs = obs.clone();
        let build = move || {
            let store = Arc::new(mini_dbpedia());
            let dict = mini_dict(&store);
            let config =
                GAnswerConfig { concurrency: Concurrency::serial(), ..GAnswerConfig::default() };
            Ok(GAnswer::shared(store, dict, config, obs.clone()))
        };
        let initial = build().unwrap();
        let (dict, config, aobs) =
            (initial.dict().clone(), initial.config.clone(), initial.obs().clone());
        let assemble = move |store: gqa_rdf::Store| {
            Ok(GAnswer::shared(Arc::new(store), dict.clone(), config.clone(), aobs.clone()))
        };
        Engine::with_assemble(initial, build, assemble)
    }

    fn registry() -> Registry {
        let obs = Obs::new();
        Registry::new("default", Arc::new(engine(&obs)), 8, obs).unwrap()
    }

    #[test]
    fn names_are_validated() {
        for good in ["default", "a", "Tenant-2", "v1.2_x", &"x".repeat(64)] {
            assert!(valid_tenant_name(good), "{good:?} should be valid");
        }
        for bad in ["", ".", "..", "a/b", "a b", "na\u{e9}me", &"x".repeat(65), "a\nb"] {
            assert!(!valid_tenant_name(bad), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn get_routes_default_and_rejects_unknown() {
        let reg = registry();
        assert_eq!(reg.get(None).unwrap().name(), "default");
        assert_eq!(reg.get(Some("default")).unwrap().name(), "default");
        assert!(matches!(reg.get(Some("nope")), Err(TenantError::Unknown(n)) if n == "nope"));
        assert!(matches!(reg.get(Some("../etc")), Err(TenantError::InvalidName(_))));
    }

    #[test]
    fn insert_unload_and_default_protection() {
        let reg = registry();
        let obs = Obs::new();
        reg.insert("beta", Arc::new(engine(&obs))).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(matches!(
            reg.insert("beta", Arc::new(engine(&obs))),
            Err(TenantError::AlreadyExists(_))
        ));
        assert!(matches!(reg.unload("default"), Err(TenantError::DefaultUnload(_))));
        reg.unload("beta").unwrap();
        assert!(matches!(reg.unload("beta"), Err(TenantError::Unknown(_))));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn load_without_factory_is_rejected_and_with_factory_works() {
        let reg = registry();
        assert!(matches!(reg.load("t2", "ignored"), Err(TenantError::NoFactory)));

        let obs = Obs::new();
        let factory_obs = obs.clone();
        let reg = Registry::new("default", Arc::new(engine(&obs)), 8, obs).unwrap().with_factory(
            Box::new(move |name, source| {
                if source == "boom" {
                    return Err("no such file".to_owned());
                }
                Ok(engine(&factory_obs.scoped("store", name)))
            }),
        );
        let t = reg.load("t2", "whatever").unwrap();
        assert_eq!(t.name(), "t2");
        assert_eq!(reg.get(Some("t2")).unwrap().engine().epoch(), 1);
        // A failed load parks a Failed slot that shows up in health()...
        let err = reg.load("t3", "boom").unwrap_err();
        assert!(matches!(err, TenantError::Failed { .. }), "{err}");
        let (default_ready, rows) = reg.health();
        assert!(default_ready);
        let t3 = rows.iter().find(|r| r.name == "t3").unwrap();
        assert_eq!(t3.state.as_str(), "failed");
        // ...and a retry can replace it.
        reg.load("t3", "ok now").unwrap();
        assert_eq!(reg.get(Some("t3")).unwrap().name(), "t3");
    }

    #[test]
    fn upsert_bumps_only_that_tenants_epoch_and_answers_change() {
        let reg = registry();
        let obs = Obs::new();
        reg.insert("beta", Arc::new(engine(&obs))).unwrap();

        let alpha_before = reg.get(None).unwrap().engine().epoch();
        let delta = parse_delta(
            "<http://dbpedia.org/resource/Novel_City> <http://xmlns.com/foaf/0.1/name> \"Novel City\" .\n",
        )
        .unwrap();
        let outcome = reg.upsert(Some("beta"), delta).unwrap();
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.stats.added, 1);
        assert!(!outcome.compaction_scheduled, "one triple must not trigger compaction");
        // Isolation: default tenant untouched.
        assert_eq!(reg.get(None).unwrap().engine().epoch(), alpha_before);
        // The new fact is really in beta's published store.
        let beta = reg.get(Some("beta")).unwrap();
        let pinned = beta.engine().load();
        assert!(pinned.value.store().iri("http://dbpedia.org/resource/Novel_City").is_some());
        assert!(pinned.value.store().has_overlay());
    }

    #[test]
    fn engine_without_assemble_rejects_upserts() {
        let obs = Obs::new();
        let store = Arc::new(mini_dbpedia());
        let dict = mini_dict(&store);
        let config =
            GAnswerConfig { concurrency: Concurrency::serial(), ..GAnswerConfig::default() };
        let initial = GAnswer::shared(store, dict, config, obs.clone());
        let plain = Engine::new(initial, move || Err("no rebuild".to_owned()));
        let reg = Registry::new("default", Arc::new(plain), 0, obs).unwrap();
        let delta = parse_delta("<a> <b> <c> .\n").unwrap();
        let err = reg.upsert(None, delta).unwrap_err();
        assert!(matches!(err, TenantError::Engine { .. }), "{err}");
    }

    #[test]
    fn heavy_overlay_schedules_background_compaction() {
        let obs = Obs::new();
        let eng = Arc::new(engine(&obs).compact_after(2));
        let reg = Registry::new("default", Arc::clone(&eng), 0, obs).unwrap();
        let delta = parse_delta("<x:a> <x:p> <x:b> .\n<x:a> <x:p> <x:c> .\n").unwrap();
        let outcome = reg.upsert(None, delta).unwrap();
        assert!(outcome.compaction_scheduled);
        // The fold publishes a further epoch with the overlay gone.
        for _ in 0..200 {
            if eng.epoch() > outcome.epoch {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let pinned = eng.load();
        assert!(pinned.epoch > outcome.epoch, "compaction never landed");
        assert!(!pinned.value.store().has_overlay());
        assert!(pinned.value.store().iri("x:a").is_some());
    }

    #[test]
    fn tenant_metrics_carry_the_store_label() {
        let reg = registry();
        let tenant = reg.default_tenant();
        tenant.publish_metrics();
        let text = tenant.obs().prometheus();
        assert!(text.contains("gqa_rdf_store_bytes{section=\"dict\",store=\"default\"}"), "{text}");
        assert!(text.contains("gqa_server_cache_hits_total{store=\"default\"} 0"), "{text}");
        assert!(text.contains("gqa_server_stores 1"), "{text}");
    }

    #[test]
    fn unload_removes_the_tenants_metric_series() {
        let reg = registry();
        let obs = reg.obs().clone();
        let beta = reg.insert("beta", Arc::new(engine(&obs))).unwrap();
        beta.publish_metrics();
        reg.default_tenant().publish_metrics();
        assert!(obs.prometheus().contains("store=\"beta\""));
        reg.unload("beta").unwrap();
        let text = obs.prometheus();
        assert!(!text.contains("store=\"beta\""), "ghost series survived unload: {text}");
        assert!(text.contains("store=\"default\""), "{text}");
        assert!(text.contains("gqa_server_stores 1"), "{text}");
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gqa-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fact_delta(n: u64) -> Delta {
        parse_delta(&format!("<up:s{n}> <up:grew> <up:o{n}> .\n")).unwrap()
    }

    fn has_fact(eng: &Engine, n: u64) -> bool {
        eng.load().value.store().iri(&format!("up:s{n}")).is_some()
    }

    #[test]
    fn in_memory_engines_report_no_durable_state() {
        let reg = registry();
        let eng = reg.default_tenant().engine().clone();
        assert!(!eng.is_durable());
        assert!(eng.durable_status().is_none());
        assert!(reg.list()[0].durable.is_none());
    }

    #[test]
    fn durable_upserts_survive_a_simulated_crash() {
        let dir = durable_dir("crash");
        let obs = Obs::new();
        let eng = Arc::new(engine(&obs).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        assert!(eng.is_durable());
        let mut last_epoch = 0;
        for n in 0..4 {
            last_epoch = eng.upsert(fact_delta(n)).unwrap().epoch;
        }
        let status = eng.durable_status().unwrap();
        assert_eq!(status.wal_records, 4);
        assert!(status.wal_bytes > 0);
        assert!(!status.poisoned);
        // kill -9: the engine is dropped with no shutdown path at all.
        drop(eng);

        // Restart: a fresh engine over the same dir replays the log.
        let obs2 = Obs::new();
        let eng2 =
            Arc::new(engine(&obs2).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        assert_eq!(eng2.epoch(), last_epoch, "recovered epoch must match the last ack");
        for n in 0..4 {
            assert!(has_fact(&eng2, n), "acked fact {n} lost across restart");
        }
        let status = eng2.durable_status().unwrap();
        assert_eq!(status.replayed_records, 4);
        assert_eq!(status.replayed_ops, 4);
        assert_eq!(status.torn_bytes_dropped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_recovers_without_panic_and_keeps_acked_records() {
        let dir = durable_dir("torntail");
        let obs = Obs::new();
        let eng = Arc::new(engine(&obs).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        eng.upsert(fact_delta(0)).unwrap();
        eng.upsert(fact_delta(1)).unwrap();
        drop(eng);
        // The crash tore the final record: chop off its second half and
        // smear garbage after it.
        let wal_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let keep = bytes.len() - 9;
        bytes.truncate(keep);
        bytes.extend_from_slice(&[0xde, 0xad]);
        std::fs::write(&wal_path, &bytes).unwrap();

        let obs2 = Obs::new();
        let eng2 =
            Arc::new(engine(&obs2).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        let status = eng2.durable_status().unwrap();
        assert_eq!(status.replayed_records, 1, "only the intact record replays");
        assert!(status.torn_bytes_dropped > 0);
        assert!(has_fact(&eng2, 0));
        assert!(!has_fact(&eng2, 1), "the torn (unacked) record must not resurrect");
        // The repaired log accepts new appends on the clean boundary.
        eng2.upsert(fact_delta(2)).unwrap();
        assert!(has_fact(&eng2, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_reload_replays_instead_of_discarding() {
        let dir = durable_dir("reload");
        let obs = Obs::new();
        let eng = Arc::new(engine(&obs).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        let acked = eng.upsert(fact_delta(0)).unwrap().epoch;
        let reloaded = eng.reload().unwrap();
        assert!(reloaded > acked);
        assert!(has_fact(&eng, 0), "durable reload must not discard acked upserts");
        assert_eq!(eng.durable_status().unwrap().replayed_records, 1);
        // A second reload is idempotent — replaying the same log again
        // changes nothing but the epoch.
        eng.reload().unwrap();
        assert!(has_fact(&eng, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_checkpoints_and_rotates_the_wal() {
        let dir = durable_dir("checkpoint");
        let obs = Obs::new();
        let eng = Arc::new(engine(&obs).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        eng.upsert(fact_delta(0)).unwrap();
        eng.upsert(fact_delta(1)).unwrap();
        let epoch = eng.compact().unwrap().expect("overlay to fold");
        let status = eng.durable_status().unwrap();
        assert_eq!(status.checkpoints, 1);
        assert_eq!(status.wal_records, 0, "checkpoint must rotate the log empty");
        assert!(dir.join("base.snap").exists());
        drop(eng);

        // Restart recovers from the checkpoint alone — no replay needed.
        let obs2 = Obs::new();
        let eng2 =
            Arc::new(engine(&obs2).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        assert_eq!(eng2.epoch(), epoch);
        assert!(has_fact(&eng2, 0) && has_fact(&eng2, 1));
        let status = eng2.durable_status().unwrap();
        assert_eq!(status.replayed_records, 0);
        // And post-checkpoint upserts land in the fresh generation.
        eng2.upsert(fact_delta(2)).unwrap();
        drop(eng2);
        let obs3 = Obs::new();
        let eng3 =
            Arc::new(engine(&obs3).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        assert!(has_fact(&eng3, 0) && has_fact(&eng3, 1) && has_fact(&eng3, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_wal_faults_fail_the_upsert_but_never_lose_acked_data() {
        let dir = durable_dir("walfault");
        let obs = Obs::new();
        // Every other fsync fails (deterministic seeded coin).
        let plan = gqa_fault::FaultPlan::parse("wal.fsync:error:0.5", 7).unwrap();
        let eng = Arc::new(engine(&obs).with_durable(&dir, plan).unwrap());
        let mut acked = Vec::new();
        for n in 0..12 {
            if eng.upsert(fact_delta(n)).is_ok() {
                acked.push(n);
            }
        }
        assert!(!acked.is_empty(), "the seeded coin should let some appends through");
        assert!(acked.len() < 12, "the seeded coin should fail some appends");
        drop(eng);
        let obs2 = Obs::new();
        let eng2 =
            Arc::new(engine(&obs2).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        for n in acked {
            assert!(has_fact(&eng2, n), "acked fact {n} lost despite fsync chaos");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_durable_upserts_group_commit_and_all_replay() {
        let dir = durable_dir("groupcommit");
        let obs = Obs::new();
        // A 2ms sync latency forces enqueues to pile up behind the
        // leader — on tmpfs a real fsync is too fast to ever batch.
        let plan = gqa_fault::FaultPlan::parse("wal.fsync:latency:1.0:2", 0).unwrap();
        let eng = Arc::new(engine(&obs).with_durable(&dir, plan).unwrap());
        let threads = 4;
        let per_thread = 10u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let eng = Arc::clone(&eng);
                s.spawn(move || {
                    for i in 0..per_thread {
                        eng.upsert(fact_delta(t * 100 + i)).unwrap();
                    }
                });
            }
        });
        let total = threads * per_thread;
        let status = eng.durable_status().unwrap();
        assert_eq!(status.wal_records, total);
        assert_eq!(status.group_commits, total, "every upsert must be group-acked");
        assert!(
            status.group_syncs < status.group_commits,
            "no batching happened: {} syncs for {} acks",
            status.group_syncs,
            status.group_commits
        );
        assert_eq!(eng.epoch(), 1 + total, "epochs must be dense in reservation order");
        drop(eng);

        let obs2 = Obs::new();
        let eng2 =
            Arc::new(engine(&obs2).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap());
        assert_eq!(eng2.epoch(), 1 + total, "recovered epoch below the last ack");
        for t in 0..threads {
            for i in 0..per_thread {
                assert!(has_fact(&eng2, t * 100 + i), "acked fact {t}/{i} lost across restart");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unload_mid_compaction_leaves_the_durable_dir_untouched() {
        let dir = durable_dir("unloadrace");
        let obs = Obs::new();
        // Pin the background fold at its chaos site for 250ms so the
        // unload always wins the race.
        let plan = gqa_fault::FaultPlan::parse("engine.compact:latency:1.0:250", 0).unwrap();
        let eng = Arc::new(engine(&obs).with_durable(&dir, plan).unwrap().compact_after(2));
        let reg = Registry::new("default", Arc::new(engine(&obs)), 0, obs.clone()).unwrap();
        reg.insert("beta", Arc::clone(&eng)).unwrap();

        let delta =
            parse_delta("<up:s1> <up:grew> <up:o1> .\n<up:s2> <up:grew> <up:o2> .\n").unwrap();
        let outcome = reg.upsert(Some("beta"), delta).unwrap();
        assert!(outcome.compaction_scheduled, "two ops must cross the floor");
        let records_before = eng.durable_status().unwrap().wal_records;
        reg.unload("beta").unwrap();

        // Let the pinned compaction run to completion against the
        // retired engine.
        std::thread::sleep(std::time::Duration::from_millis(600));
        let status = eng.durable_status().unwrap();
        assert_eq!(status.checkpoints, 0, "retired engine must not checkpoint");
        assert!(!dir.join("base.snap").exists(), "base.snap written into an unloaded dir");
        assert_eq!(status.wal_records, records_before, "WAL rotated after unload");
        assert_eq!(eng.epoch(), outcome.epoch, "compaction published into a removed tenant");
        // And the retired engine refuses further durable writes.
        let err = eng.upsert(fact_delta(9)).unwrap_err();
        assert!(err.contains("unloaded"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_records_runtime_loads_but_not_boot_tenants() {
        let dir = durable_dir("manifest");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::new();
        let factory_obs = obs.clone();
        let manifest = Manifest::open(&dir, gqa_fault::FaultPlan::none()).unwrap();
        let reg = Registry::new("default", Arc::new(engine(&obs)), 0, obs.clone())
            .unwrap()
            .with_factory(Box::new(move |name, _| Ok(engine(&factory_obs.scoped("store", name)))))
            .with_manifest(manifest);

        // Boot-flag tenants never enter the catalog.
        reg.insert("bootflag", Arc::new(engine(&obs))).unwrap();
        reg.load("runtime", "mini").unwrap();

        let read = Manifest::open(&dir, gqa_fault::FaultPlan::none()).unwrap();
        let names: Vec<_> = read.entries().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, ["runtime"], "only runtime loads belong in the manifest");
        assert_eq!(read.entries()[0].source, "mini");

        reg.unload("runtime").unwrap();
        let read = Manifest::open(&dir, gqa_fault::FaultPlan::none()).unwrap();
        assert!(read.entries().is_empty(), "unload must forget the tenant durably");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_manifest_write_fails_the_load_and_frees_the_slot() {
        let dir = durable_dir("manifestfault");
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::new();
        let factory_obs = obs.clone();
        let plan = gqa_fault::FaultPlan::parse("manifest.write:error:1.0", 0).unwrap();
        let manifest = Manifest::open(&dir, plan).unwrap();
        let reg = Registry::new("default", Arc::new(engine(&obs)), 0, obs.clone())
            .unwrap()
            .with_factory(Box::new(move |name, _| Ok(engine(&factory_obs.scoped("store", name)))))
            .with_manifest(manifest);

        let err = reg.load("runtime", "mini").unwrap_err();
        assert!(matches!(err, TenantError::Failed { .. }), "{err}");
        // The slot reverted: the name is unknown, not parked as Failed,
        // so the tenant can't serve unrecorded.
        assert!(matches!(reg.get(Some("runtime")), Err(TenantError::Unknown(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_upsert_chaos_acked_facts_replay_failed_ones_absent() {
        // Engine-level version of the GroupWal chaos property: under
        // seeded fsync error/torn faults, every acked upsert survives
        // reopen and every failed one is absent — at 1 and 4 writers.
        for &threads in &[1u64, 4] {
            for (kind, prob) in [("error", 0.4), ("torn", 0.15)] {
                for seed in 0..2u64 {
                    let tag = format!("upchaos-{threads}-{kind}-{seed}");
                    let dir = durable_dir(&tag);
                    let obs = Obs::new();
                    let plan =
                        gqa_fault::FaultPlan::parse(&format!("wal.fsync:{kind}:{prob}"), seed)
                            .unwrap();
                    let eng = Arc::new(engine(&obs).with_durable(&dir, plan).unwrap());
                    let acked = Mutex::new(Vec::new());
                    let failed = Mutex::new(Vec::new());
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let eng = Arc::clone(&eng);
                            let (acked, failed) = (&acked, &failed);
                            s.spawn(move || {
                                for i in 0..8 {
                                    let n = t * 100 + i;
                                    match eng.upsert(fact_delta(n)) {
                                        Ok(_) => acked.lock().push(n),
                                        Err(_) => failed.lock().push(n),
                                    }
                                }
                            });
                        }
                    });
                    drop(eng);
                    let obs2 = Obs::new();
                    let eng2 = Arc::new(
                        engine(&obs2).with_durable(&dir, gqa_fault::FaultPlan::none()).unwrap(),
                    );
                    for &n in acked.lock().iter() {
                        assert!(has_fact(&eng2, n), "acked fact {n} lost ({tag})");
                    }
                    for &n in failed.lock().iter() {
                        assert!(!has_fact(&eng2, n), "failed fact {n} resurrected ({tag})");
                    }
                    std::fs::remove_dir_all(&dir).unwrap();
                }
            }
        }
    }

    #[test]
    fn poisoned_wal_degrades_health_but_keeps_serving_reads() {
        let dir = durable_dir("degraded");
        let obs = Obs::new();
        // Every sync "tears": the first durable upsert fails and poisons
        // the log.
        let plan = gqa_fault::FaultPlan::parse("wal.fsync:torn:1.0", 0).unwrap();
        let eng = Arc::new(engine(&obs).with_durable(&dir, plan).unwrap());
        let reg = Registry::new("default", Arc::clone(&eng), 8, obs).unwrap();
        assert!(reg.upsert(None, fact_delta(0)).is_err());
        assert!(eng.durable_status().unwrap().poisoned);

        let (default_ready, rows) = reg.health();
        assert!(default_ready, "a degraded default still answers reads");
        assert_eq!(rows[0].state, TenantState::Degraded);
        assert_eq!(rows[0].state.as_str(), "degraded");
        // Reads are unharmed: the pinned snapshot still answers.
        assert!(!reg.default_tenant().engine().load().value.store().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn status_reports_store_shape() {
        let reg = registry();
        let rows = reg.list();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.name, "default");
        assert_eq!(row.state, TenantState::Ready);
        assert_eq!(row.epoch, 1);
        assert!(row.triples > 0);
        assert!(row.terms > 0);
        assert!(row.bytes > 0);
        assert!(row.overlay.is_none());
        let (stats, len) = row.cache.unwrap();
        assert_eq!(stats, AnswerCacheStats::default());
        assert_eq!(len, 0);
    }
}
