//! Per-request tracing: request ids and the tail-sampling flight recorder.
//!
//! Aggregate metrics (the [`crate::metrics`] registry) can say *that* p99
//! regressed; the flight recorder says *which* request, by keeping a
//! fixed-capacity in-memory ring of completed [`RequestTrace`] records
//! behind the `/debug/requests` endpoints. Retention is **tail-sampled**:
//! interesting requests (non-2xx status, a degraded/budget cause, a
//! pipeline failure, a fired fault injection, or latency above a rolling
//! p95 estimate) are *pinned*, while healthy fast requests are sampled
//! 1-in-N once their half of the ring has filled. Pinned and sampled
//! records live in separate rings, so a flood of healthy traffic can
//! never evict the errors — the property the recorder proptest checks.
//!
//! The write path is designed for the serving hot path: a ring push is
//! one relaxed `fetch_add` to claim a slot plus one uncontended per-slot
//! mutex for the pointer swap; the rolling p95 is a small fixed-bucket
//! latency sketch on relaxed atomics. Nothing blocks and memory is
//! bounded by construction (`capacity` × `Arc<RequestTrace>`).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// splitmix64 finalizer: decorrelates the (seed, counter) word into 64
/// uniform bits for request-id generation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Milliseconds since the Unix epoch, for access-log timestamps.
pub fn unix_ms_now() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// Generates request ids: 16 lowercase hex chars from a seeded
/// per-process counter + mixer. Unique within a process by construction
/// (the counter), random-enough across processes (the seed folds in the
/// clock and pid). Not cryptographic — these are correlation handles,
/// not capabilities.
#[derive(Debug)]
pub struct RequestIdGen {
    seed: u64,
    counter: AtomicU64,
}

impl RequestIdGen {
    /// A generator seeded from the clock and process id.
    pub fn new() -> Self {
        let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_nanos() as u64);
        RequestIdGen::with_seed(nanos ^ (u64::from(std::process::id()) << 32))
    }

    /// A generator with a fixed seed (deterministic ids, for tests).
    pub fn with_seed(seed: u64) -> Self {
        RequestIdGen { seed: splitmix64(seed), counter: AtomicU64::new(0) }
    }

    /// The next id: 16 lowercase hex chars.
    pub fn next_id(&self) -> String {
        let n = self.counter.fetch_add(1, Relaxed);
        format!("{:016x}", splitmix64(self.seed.wrapping_add(n)))
    }
}

impl Default for RequestIdGen {
    fn default() -> Self {
        RequestIdGen::new()
    }
}

/// Whether a client-supplied `X-Request-Id` value is acceptable to echo
/// and index: non-empty, at most 64 bytes, and limited to a charset that
/// is safe inside headers, JSON log lines, and Prometheus exemplar
/// labels without escaping surprises.
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

/// Everything recorded about one completed HTTP request. Built by the
/// server after the response is written, then rendered as an access-log
/// line and retained (maybe) by the [`Recorder`].
#[derive(Clone, Debug, Default)]
pub struct RequestTrace {
    /// The request id (generated or client-supplied).
    pub id: String,
    /// Endpoint label (`answer`, `metrics`, `healthz`, `admin`, `debug`,
    /// `other`, `none`).
    pub route: String,
    /// HTTP status written to the client.
    pub status: u16,
    /// Response body bytes.
    pub bytes: u64,
    /// Time from accept to worker pickup (first request on a
    /// connection; 0 for keep-alive successors).
    pub queue_wait_ms: f64,
    /// Accept/first-byte to response-written wall time.
    pub total_ms: f64,
    /// Per-pipeline-stage wall times, in pipeline order
    /// (`understand`/`map`/`topk` for computed answers; empty for cache
    /// hits and non-answer routes).
    pub stages: Vec<(String, f64)>,
    /// Answer-cache outcome (`hit`/`miss`), when the cache was consulted.
    pub cache: Option<String>,
    /// Snapshot epoch that served the request.
    pub epoch: u64,
    /// Budget that degraded the answer, if any (`frontier`, …).
    pub degraded: Option<String>,
    /// Pipeline failure reason, if unanswered.
    pub failure: Option<String>,
    /// Fault injections that fired while serving this request.
    pub faults_fired: u64,
    /// Index of the worker thread that served the request.
    pub worker: usize,
    /// Zero-based sequence number of the request on its keep-alive
    /// connection.
    pub conn_seq: u64,
    /// Wall-clock completion time (ms since the Unix epoch).
    pub unix_ms: u64,
    /// Rendered EXPLAIN trace, when the request asked for one.
    pub explain: Option<String>,
    /// Set by the recorder: retained because interesting/slow rather
    /// than sampled.
    pub pinned: bool,
    /// Set by the recorder: global record sequence number (newest-first
    /// ordering key for `/debug/requests`).
    pub seq: u64,
}

fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

impl RequestTrace {
    /// Whether this request is unconditionally retained by the
    /// recorder's tail sampler (independent of the latency criterion):
    /// an error status, a degraded/budget cause, a pipeline failure, or
    /// a fired fault injection.
    pub fn interesting(&self) -> bool {
        self.status >= 400
            || self.degraded.is_some()
            || self.failure.is_some()
            || self.faults_fired > 0
    }

    fn stages_json(&self) -> String {
        let inner: Vec<String> = self
            .stages
            .iter()
            .map(|(name, ms)| format!("\"{}\":{:.3}", escape(name), ms))
            .collect();
        format!("{{{}}}", inner.join(","))
    }

    /// One structured access-log line (compact JSON, no trailing
    /// newline, never includes the EXPLAIN payload).
    pub fn access_log_line(&self) -> String {
        format!(
            "{{\"ts_ms\":{},\"request_id\":\"{}\",\"route\":\"{}\",\"status\":{},\"bytes\":{},\
             \"queue_wait_ms\":{:.3},\"total_ms\":{:.3},\"stages\":{},\"cache\":{},\"epoch\":{},\
             \"degraded\":{},\"failure\":{},\"faults_fired\":{},\"worker\":{},\"conn_seq\":{}}}",
            self.unix_ms,
            escape(&self.id),
            escape(&self.route),
            self.status,
            self.bytes,
            self.queue_wait_ms,
            self.total_ms,
            self.stages_json(),
            opt_str(&self.cache),
            self.epoch,
            opt_str(&self.degraded),
            opt_str(&self.failure),
            self.faults_fired,
            self.worker,
            self.conn_seq,
        )
    }

    /// JSON object for the `/debug/requests` endpoints. The full per-id
    /// view (`include_explain`) additionally carries the rendered
    /// EXPLAIN trace when one was captured.
    pub fn to_json(&self, include_explain: bool) -> String {
        let mut out = self.access_log_line();
        debug_assert!(out.ends_with('}'));
        out.pop();
        out.push_str(&format!(",\"pinned\":{},\"seq\":{}", self.pinned, self.seq));
        if include_explain {
            out.push_str(&format!(",\"explain\":{}", opt_str(&self.explain)));
        }
        out.push('}');
        out
    }
}

/// One fixed-capacity ring: slot claim is a relaxed `fetch_add`, the
/// pointer swap a per-slot mutex that is only ever contended when two
/// writers race a full lap apart.
#[derive(Debug)]
struct Ring {
    slots: Box<[Mutex<Option<Arc<RequestTrace>>>]>,
    head: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
        }
    }

    fn push(&self, t: Arc<RequestTrace>) {
        let i = self.head.fetch_add(1, Relaxed) % self.slots.len();
        *self.slots[i].lock() = Some(t);
    }

    /// Total pushes so far (not the live count, which is `min(pushes,
    /// capacity)`).
    fn pushes(&self) -> usize {
        self.head.load(Relaxed)
    }

    fn collect(&self, out: &mut Vec<Arc<RequestTrace>>) {
        for slot in self.slots.iter() {
            if let Some(t) = slot.lock().as_ref() {
                out.push(Arc::clone(t));
            }
        }
    }
}

/// Latency bucket bounds for the rolling p95 estimate, in milliseconds.
const LAT_BOUNDS_MS: &[f64] =
    &[0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0];

/// Observations before the latency sketch decays (all counts halved), so
/// the p95 tracks the recent regime instead of all of history.
const LAT_DECAY_WINDOW: u64 = 4096;

/// Observations required before the p95 estimate is trusted; below this
/// the latency pin criterion is disabled (everything early is retained
/// by the fill-first sampling rule anyway).
const LAT_MIN_SAMPLES: u64 = 64;

/// A small fixed-bucket latency sketch: relaxed atomics, halved every
/// [`LAT_DECAY_WINDOW`] observations. The decay store races with
/// concurrent increments and may drop a handful of counts — acceptable
/// for a retention heuristic, not a metric.
#[derive(Debug)]
struct LatencySketch {
    buckets: Box<[AtomicU64]>,
    total: AtomicU64,
}

impl LatencySketch {
    fn new() -> Self {
        LatencySketch {
            buckets: (0..=LAT_BOUNDS_MS.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }

    fn observe(&self, ms: f64) {
        let i = LAT_BOUNDS_MS.partition_point(|&b| b < ms);
        self.buckets[i].fetch_add(1, Relaxed);
        if self.total.fetch_add(1, Relaxed) + 1 >= LAT_DECAY_WINDOW {
            let mut sum = 0;
            for b in self.buckets.iter() {
                let half = b.load(Relaxed) / 2;
                b.store(half, Relaxed);
                sum += half;
            }
            self.total.store(sum, Relaxed);
        }
    }

    /// Upper-bound estimate of the rolling p95, in ms. `INFINITY` until
    /// enough samples have accumulated.
    fn p95_ms(&self) -> f64 {
        let total = self.total.load(Relaxed);
        if total < LAT_MIN_SAMPLES {
            return f64::INFINITY;
        }
        let target = total - total / 20; // 95th percentile rank
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Relaxed);
            if acc >= target {
                return LAT_BOUNDS_MS.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// Healthy requests sampled 1-in-this once the sampled ring has filled.
const DEFAULT_SAMPLE_EVERY: u64 = 8;

/// The flight recorder: bounded, lock-free-on-the-claim, tail-sampling
/// retention of completed request traces. See the module docs for the
/// design.
#[derive(Debug)]
pub struct Recorder {
    pinned: Ring,
    sampled: Ring,
    sample_every: u64,
    healthy_seen: AtomicU64,
    latency: LatencySketch,
    seq: AtomicU64,
    capacity: usize,
}

impl Recorder {
    /// A recorder retaining at most `capacity` records, split evenly
    /// between the pinned and sampled rings (minimum 1 slot each).
    pub fn new(capacity: usize) -> Self {
        Recorder::with_sampling(capacity, DEFAULT_SAMPLE_EVERY)
    }

    /// [`Recorder::new`] with an explicit healthy-request sampling rate.
    pub fn with_sampling(capacity: usize, sample_every: u64) -> Self {
        let capacity = capacity.max(2);
        let pinned_cap = capacity.div_ceil(2);
        Recorder {
            pinned: Ring::new(pinned_cap),
            sampled: Ring::new(capacity - pinned_cap),
            sample_every: sample_every.max(1),
            healthy_seen: AtomicU64::new(0),
            latency: LatencySketch::new(),
            seq: AtomicU64::new(0),
            capacity,
        }
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records retained right now.
    pub fn len(&self) -> usize {
        self.pinned.pushes().min(self.pinned.slots.len())
            + self.sampled.pushes().min(self.sampled.slots.len())
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offer one completed request to the tail sampler. Interesting
    /// requests ([`RequestTrace::interesting`]) and requests slower than
    /// the rolling p95 are pinned; healthy fast ones fill the sampled
    /// ring, then are sampled 1-in-N.
    pub fn record(&self, mut t: RequestTrace) {
        t.seq = self.seq.fetch_add(1, Relaxed);
        let p95 = self.latency.p95_ms();
        self.latency.observe(t.total_ms);
        if t.interesting() || t.total_ms > p95 {
            t.pinned = true;
            self.pinned.push(Arc::new(t));
            return;
        }
        let n = self.healthy_seen.fetch_add(1, Relaxed);
        if self.sampled.pushes() < self.sampled.slots.len() || n.is_multiple_of(self.sample_every) {
            self.sampled.push(Arc::new(t));
        }
    }

    /// All retained records, newest first.
    pub fn snapshot(&self) -> Vec<Arc<RequestTrace>> {
        let mut out = Vec::with_capacity(self.capacity);
        self.pinned.collect(&mut out);
        self.sampled.collect(&mut out);
        out.sort_by_key(|t| std::cmp::Reverse(t.seq));
        out
    }

    /// The newest retained record with this request id, if any.
    pub fn find(&self, id: &str) -> Option<Arc<RequestTrace>> {
        self.snapshot().into_iter().find(|t| t.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, status: u16, ms: f64) -> RequestTrace {
        RequestTrace {
            id: id.to_string(),
            route: "answer".to_string(),
            status,
            total_ms: ms,
            ..RequestTrace::default()
        }
    }

    #[test]
    fn ids_are_unique_hex_and_deterministic_in_the_seed() {
        let gen = RequestIdGen::with_seed(7);
        let a = gen.next_id();
        let b = gen.next_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        let gen2 = RequestIdGen::with_seed(7);
        assert_eq!(gen2.next_id(), a, "same seed, same sequence");
        assert_ne!(RequestIdGen::with_seed(8).next_id(), a);
    }

    #[test]
    fn client_id_validation() {
        assert!(valid_request_id("ci-trace-0001"));
        assert!(valid_request_id("a"));
        assert!(valid_request_id("A_b.c:d-9"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"x".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("quote\"me"));
        assert!(!valid_request_id("new\nline"));
    }

    #[test]
    fn access_log_line_is_one_json_object() {
        let mut t = trace("abc123", 200, 4.5);
        t.queue_wait_ms = 0.25;
        t.stages = vec![("understand".into(), 1.0), ("map".into(), 1.5), ("topk".into(), 2.0)];
        t.cache = Some("miss".into());
        t.epoch = 3;
        t.worker = 2;
        t.conn_seq = 1;
        t.unix_ms = 1700000000000;
        let line = t.access_log_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'));
        for needle in [
            "\"request_id\":\"abc123\"",
            "\"route\":\"answer\"",
            "\"status\":200",
            "\"queue_wait_ms\":0.250",
            "\"stages\":{\"understand\":1.000,\"map\":1.500,\"topk\":2.000}",
            "\"cache\":\"miss\"",
            "\"epoch\":3",
            "\"degraded\":null",
            "\"worker\":2",
            "\"conn_seq\":1",
            "\"ts_ms\":1700000000000",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn to_json_gates_the_explain_payload() {
        let mut t = trace("abc", 200, 1.0);
        t.explain = Some("BIG EXPLAIN".into());
        assert!(!t.to_json(false).contains("explain"));
        assert!(t.to_json(true).contains("\"explain\":\"BIG EXPLAIN\""));
        assert!(t.to_json(true).contains("\"pinned\":false"));
    }

    #[test]
    fn interesting_criteria() {
        assert!(!trace("a", 200, 1.0).interesting());
        assert!(trace("a", 500, 1.0).interesting());
        assert!(trace("a", 404, 1.0).interesting());
        let mut t = trace("a", 200, 1.0);
        t.degraded = Some("frontier".into());
        assert!(t.interesting());
        let mut t = trace("a", 200, 1.0);
        t.failure = Some("no_match".into());
        assert!(t.interesting());
        let mut t = trace("a", 200, 1.0);
        t.faults_fired = 1;
        assert!(t.interesting());
    }

    #[test]
    fn errors_survive_a_flood_of_healthy_traffic() {
        let rec = Recorder::new(16);
        for i in 0..4 {
            rec.record(trace(&format!("err-{i}"), 500, 1.0));
        }
        for i in 0..10_000 {
            rec.record(trace(&format!("ok-{i}"), 200, 1.0));
        }
        assert!(rec.len() <= rec.capacity());
        for i in 0..4 {
            let t = rec.find(&format!("err-{i}")).expect("pinned record evicted");
            assert!(t.pinned);
        }
    }

    #[test]
    fn early_healthy_requests_are_all_retained() {
        // Fill-first: with a fresh recorder the first healthy requests
        // land in the sampled ring regardless of the 1-in-N rate, so a
        // server's very first request is always inspectable.
        let rec = Recorder::new(64);
        for i in 0..8 {
            rec.record(trace(&format!("ok-{i}"), 200, 1.0));
        }
        for i in 0..8 {
            assert!(rec.find(&format!("ok-{i}")).is_some(), "ok-{i} missing");
        }
    }

    #[test]
    fn snapshot_is_newest_first_and_bounded() {
        let rec = Recorder::new(8);
        for i in 0..100 {
            rec.record(trace(&format!("r-{i}"), if i % 2 == 0 { 200 } else { 503 }, 1.0));
        }
        let snap = rec.snapshot();
        assert!(snap.len() <= 8);
        assert!(snap.windows(2).all(|w| w[0].seq > w[1].seq), "not newest-first");
    }

    #[test]
    fn slow_requests_get_pinned_once_the_sketch_warms_up() {
        let rec = Recorder::new(32);
        for i in 0..LAT_MIN_SAMPLES {
            rec.record(trace(&format!("warm-{i}"), 200, 1.0));
        }
        rec.record(trace("slow", 200, 400.0));
        let t = rec.find("slow").expect("slow request dropped");
        assert!(t.pinned, "latency outlier must be pinned");
    }

    #[test]
    fn p95_sketch_decays() {
        let s = LatencySketch::new();
        for _ in 0..100 {
            s.observe(1.0);
        }
        assert!(s.p95_ms() <= 1.0);
        for _ in 0..5000 {
            s.observe(300.0);
        }
        assert!(s.p95_ms() >= 100.0, "p95 stuck at {}", s.p95_ms());
    }
}
