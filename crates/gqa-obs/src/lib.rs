//! Zero-dependency observability for the gqa workspace.
//!
//! Three pieces, all cheap by default:
//!
//! * **Spans** ([`span`]) — RAII wall-clock timers with parent/child
//!   nesting, named `stage.substage`.
//! * **Metrics** ([`metrics`]) — a thread-safe registry of counters and
//!   fixed-bucket histograms named `gqa_<crate>_<what>_<unit>`, with
//!   Prometheus text and JSON exposition.
//! * **Traces** ([`trace`]) — a per-question [`QueryTrace`] recording every
//!   pipeline decision, rendered by the `:explain` REPL command.
//! * **Request tracing** ([`recorder`], [`access_log`]) — request ids, a
//!   tail-sampling flight recorder of completed [`RequestTrace`] records,
//!   and a never-blocking structured access log for the serving layer.
//!
//! The entry point is [`Obs`]: `Obs::new()` collects everything,
//! `Obs::disabled()` (the default) makes every handle a no-op — disabled
//! counters and spans cost one `Option` check, so instrumentation can stay
//! unconditionally in place on hot paths.

pub mod access_log;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod trace;

pub use access_log::AccessLog;
pub use metrics::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, Registry,
    DURATION_BUCKETS,
};
pub use recorder::{unix_ms_now, valid_request_id, Recorder, RequestIdGen, RequestTrace};
pub use span::{SpanCollector, SpanGuard, SpanRecord};
pub use trace::{
    CursorTrace, LinkTrace, ParseTrace, PhraseCandidates, ProbeTrace, PruneTrace, QueryTrace,
    RelationTrace, TaRoundTrace,
};

use std::sync::Arc;

#[derive(Debug, Default)]
struct ObsInner {
    registry: Registry,
    spans: Arc<SpanCollector>,
}

/// The observability handle threaded through the pipeline. Cloning is a
/// pointer copy; every clone shares one registry and span collector. A
/// disabled handle makes all derived handles no-ops.
///
/// A handle can carry **base labels** (see [`Obs::scoped`]): label pairs
/// appended to every series created through it. The multi-tenant registry
/// uses this to stamp each tenant's pipeline series with
/// `store="<tenant>"` while all tenants share one registry and one
/// `/metrics` exposition.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
    /// Labels appended to every series this handle creates.
    base: Arc<[(String, String)]>,
}

impl Obs {
    /// An enabled handle with a fresh registry and span collector.
    pub fn new() -> Self {
        Obs { inner: Some(Arc::new(ObsInner::default())), base: Arc::from([]) }
    }

    /// A handle that records nothing (same as `Obs::default()`).
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle sharing this one's registry and spans whose series all
    /// carry `key="value"` in addition to their own labels. Scoping the
    /// same key again overrides the previous value; explicit labels passed
    /// at the call site win over base labels of the same key (the registry
    /// keeps the last pair after sorting — callers shouldn't rely on that
    /// and should simply not collide).
    pub fn scoped(&self, key: &str, value: &str) -> Obs {
        let mut base: Vec<(String, String)> = self.base.to_vec();
        base.retain(|(k, _)| k != key);
        base.push((key.to_owned(), value.to_owned()));
        Obs { inner: self.inner.clone(), base: base.into() }
    }

    /// This handle's base labels (empty unless [`Obs::scoped`]).
    pub fn base_labels(&self) -> &[(String, String)] {
        &self.base
    }

    /// `labels` merged after this handle's base labels.
    fn merged<'a>(&'a self, labels: &[(&'a str, &'a str)]) -> Vec<(&'a str, &'a str)> {
        let mut all: Vec<(&str, &str)> =
            self.base.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        all.extend_from_slice(labels);
        all
    }

    /// A counter handle for the named series (no-op when disabled).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        CounterHandle(self.inner.as_ref().map(|i| {
            if self.base.is_empty() {
                i.registry.counter(name, labels)
            } else {
                i.registry.counter(name, &self.merged(labels))
            }
        }))
    }

    /// Set a counter to an absolute value (for copying externally tracked
    /// counts into the registry at scrape time); no-op when disabled.
    pub fn set_counter(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counter(name, labels).set(value);
    }

    /// A gauge handle for the named series (no-op when disabled).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        GaugeHandle(self.inner.as_ref().map(|i| {
            if self.base.is_empty() {
                i.registry.gauge(name, labels)
            } else {
                i.registry.gauge(name, &self.merged(labels))
            }
        }))
    }

    /// A histogram handle for the named series (no-op when disabled).
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> HistogramHandle {
        HistogramHandle(self.inner.as_ref().map(|i| {
            if self.base.is_empty() {
                i.registry.histogram(name, labels, bounds)
            } else {
                i.registry.histogram(name, &self.merged(labels), bounds)
            }
        }))
    }

    /// Open a span; recorded when the guard drops (no-op when disabled).
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            Some(i) => i.spans.start(name),
            None => SpanGuard::noop(),
        }
    }

    /// The underlying registry, if enabled (for snapshot publishing).
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Drop every registered series carrying the label pair
    /// `key="value"` (see [`Registry::remove_labeled`]); no-op when
    /// disabled. The multi-tenant registry calls this on unload so a
    /// departed tenant's `store="<name>"` series vanish from `/metrics`
    /// instead of freezing at their last values.
    pub fn remove_scoped(&self, key: &str, value: &str) {
        if let Some(r) = self.registry() {
            r.remove_labeled(key, value);
        }
    }

    /// Prometheus text exposition of all metrics (empty when disabled).
    pub fn prometheus(&self) -> String {
        self.registry().map(Registry::prometheus).unwrap_or_default()
    }

    /// JSON dump of all metrics (empty object when disabled).
    pub fn json(&self) -> String {
        self.registry().map(Registry::json).unwrap_or_else(|| "{\"metrics\":[]}".to_string())
    }

    /// Indented timing report of completed spans (empty when disabled).
    pub fn span_report(&self) -> String {
        self.inner.as_ref().map(|i| i.spans.report()).unwrap_or_default()
    }

    /// Snapshot of completed span records (empty when disabled).
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map(|i| i.spans.records()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("gqa_test_total", &[]);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = obs.histogram("gqa_test_seconds", &[], DURATION_BUCKETS);
        h.observe(0.5);
        drop(obs.span("test.noop"));
        assert!(obs.prometheus().is_empty());
        assert_eq!(obs.json(), "{\"metrics\":[]}");
        assert!(obs.span_report().is_empty());
    }

    #[test]
    fn counters_accumulate_and_share() {
        let obs = Obs::new();
        let a = obs.counter("gqa_test_total", &[("kind", "x")]);
        let b = obs.counter("gqa_test_total", &[("kind", "x")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different series.
        let c = obs.counter("gqa_test_total", &[("kind", "y")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauges_move_both_ways_and_expose_as_gauge_type() {
        let obs = Obs::new();
        let g = obs.gauge("gqa_test_depth", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
        let text = obs.prometheus();
        assert!(text.contains("# TYPE gqa_test_depth gauge"), "{text}");
        assert!(text.contains("gqa_test_depth -3"), "{text}");
        assert!(obs.json().contains("\"type\":\"gauge\""));
        // Disabled handles are no-ops.
        let off = Obs::disabled().gauge("gqa_test_depth", &[]);
        off.inc();
        assert_eq!(off.get(), 0);
    }

    #[test]
    fn clone_shares_registry() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.counter("gqa_shared_total", &[]).inc();
        assert_eq!(obs.counter("gqa_shared_total", &[]).get(), 1);
    }

    #[test]
    fn remove_scoped_drops_only_the_matching_series() {
        let obs = Obs::new();
        let beta = obs.scoped("store", "beta");
        let cached = beta.counter("gqa_test_total", &[]);
        cached.inc();
        beta.gauge("gqa_test_depth", &[]).set(7);
        beta.histogram("gqa_test_seconds", &[], DURATION_BUCKETS).observe(0.1);
        obs.scoped("store", "alpha").counter("gqa_test_total", &[]).inc();
        obs.counter("gqa_unscoped_total", &[]).inc();
        assert!(obs.prometheus().contains("store=\"beta\""));
        obs.remove_scoped("store", "beta");
        let text = obs.prometheus();
        assert!(!text.contains("store=\"beta\""), "{text}");
        assert!(text.contains("store=\"alpha\""), "{text}");
        assert!(text.contains("gqa_unscoped_total 1"), "{text}");
        // A handle cached before removal keeps working, but its series
        // is detached — it never reappears in the exposition.
        cached.inc();
        assert_eq!(cached.get(), 2);
        assert!(!obs.prometheus().contains("store=\"beta\""));
    }
}
