//! The metrics registry: named counters and fixed-bucket histograms.
//!
//! Registration takes a lock; updates are lock-free relaxed atomics, so a
//! handle can be cached once and bumped from any thread on a hot path.
//! Exposition renders the whole registry as Prometheus text or JSON.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Histogram bucket bounds for pipeline-stage durations, in seconds
/// (10 µs … 10 s, decades).
pub const DURATION_BUCKETS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Overwrite with an absolute value (for publishing snapshots of
    /// component-local counters).
    pub fn set(&self, n: u64) {
        self.value.store(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A counter handle that is a no-op when observability is disabled.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<Counter>>);

impl CounterHandle {
    /// A handle that ignores all updates.
    pub fn noop() -> Self {
        CounterHandle(None)
    }

    /// Add one (no-op when disabled).
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Add `n` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Set to an absolute value (no-op when disabled).
    #[inline]
    pub fn set(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.set(n);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

/// A value that can go up and down (queue depth, in-flight requests).
/// Stored as an `i64` bit pattern in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n as u64, Relaxed);
    }

    /// Overwrite with an absolute value.
    pub fn set(&self, n: i64) {
        self.value.store(n as u64, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Relaxed) as i64
    }
}

/// A gauge handle that is a no-op when observability is disabled.
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle(pub(crate) Option<Arc<Gauge>>);

impl GaugeHandle {
    /// A handle that ignores all updates.
    pub fn noop() -> Self {
        GaugeHandle(None)
    }

    /// Add one (no-op when disabled).
    #[inline]
    pub fn inc(&self) {
        if let Some(g) = &self.0 {
            g.inc();
        }
    }

    /// Subtract one (no-op when disabled).
    #[inline]
    pub fn dec(&self) {
        if let Some(g) = &self.0 {
            g.dec();
        }
    }

    /// Overwrite with an absolute value (no-op when disabled).
    pub fn set(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.set(n);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }
}

/// A recent (value, request id) pair attached to a histogram — the
/// Prometheus exemplar linking an aggregate series back to one concrete
/// request in the flight recorder.
#[derive(Clone, Debug)]
struct Exemplar {
    value: f64,
    id: String,
    at_count: u64,
}

/// Replace a smaller exemplar anyway once this many observations have
/// passed since it was stored, so a one-off ancient spike does not pin
/// the slot forever.
const EXEMPLAR_STALE_AFTER: u64 = 1024;

/// A fixed-bucket histogram. Bucket counts are stored per-bucket
/// (non-cumulative) and cumulated at exposition time; the sum is an f64
/// maintained with a CAS loop over its bit pattern.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    /// One slot per bound plus the overflow (+Inf) slot.
    buckets: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
    count: AtomicU64,
    exemplar: Mutex<Option<Exemplar>>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        // First bucket whose upper bound admits v (Prometheus `le`
        // semantics: bucket i counts v ≤ bounds[i]).
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        let mut old = self.sum_bits.load(Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(old, new, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Record one observation and offer `id` as the exemplar request id.
    /// The slot keeps a bucket-max policy — a new observation replaces
    /// the stored exemplar when it is at least as large, or when the
    /// stored one has gone stale (`EXEMPLAR_STALE_AFTER` = 1024 observations
    /// old). Uses `try_lock`, so a contended slot skips the update rather
    /// than blocking the hot path.
    pub fn observe_exemplar(&self, v: f64, id: &str) {
        self.observe(v);
        let count = self.count();
        if let Some(mut slot) = self.exemplar.try_lock() {
            let replace = match &*slot {
                None => true,
                Some(e) => v >= e.value || count.saturating_sub(e.at_count) > EXEMPLAR_STALE_AFTER,
            };
            if replace {
                *slot = Some(Exemplar { value: v, id: id.to_string(), at_count: count });
            }
        }
    }

    /// The current exemplar, as `(value, request_id)`.
    pub fn exemplar(&self) -> Option<(f64, String)> {
        self.exemplar.lock().as_ref().map(|e| (e.value, e.id.clone()))
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Relaxed))
    }

    /// Cumulative counts per bound, plus the +Inf count last.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// A histogram handle that is a no-op when observability is disabled.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A handle that ignores all updates.
    pub fn noop() -> Self {
        HistogramHandle(None)
    }

    /// Record one observation (no-op when disabled).
    #[inline]
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Record a duration in seconds (no-op when disabled).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.observe_duration(d);
        }
    }

    /// Record one observation with an exemplar request id (no-op when
    /// disabled).
    #[inline]
    pub fn observe_exemplar(&self, v: f64, id: &str) {
        if let Some(h) = &self.0 {
            h.observe_exemplar(v, id);
        }
    }
}

/// `name` plus sorted label pairs: the identity of one metric series.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        SeriesKey { name: name.to_string(), labels }
    }

    fn render_labels(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
        format!("{{{}}}", inner.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `le` bound / float value the way Prometheus expects.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Thread-safe registry of named metric series.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<SeriesKey, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register a counter series. Naming convention:
    /// `gqa_<crate>_<what>_<unit>` with `_total` for counters.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = SeriesKey::new(name, labels);
        self.counters.lock().entry(key).or_insert_with(|| Arc::new(Counter::default())).clone()
    }

    /// Overwrite a counter series with an absolute value (snapshot
    /// publishing from component-local counters).
    pub fn set_counter(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counter(name, labels).set(value);
    }

    /// Get or register a gauge series. Naming convention:
    /// `gqa_<crate>_<what>` (no `_total` suffix — gauges can go down).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = SeriesKey::new(name, labels);
        self.gauges.lock().entry(key).or_insert_with(|| Arc::new(Gauge::default())).clone()
    }

    /// Get or register a histogram series. If the series already exists its
    /// original bounds are kept.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
        let key = SeriesKey::new(name, labels);
        self.histograms
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Drop every series (counter, gauge, or histogram) carrying the
    /// label pair `key="value"`. Used when a tenant is unloaded so its
    /// `store="<name>"` series do not linger as ghosts in `/metrics`;
    /// handles cached by the departed owner keep working, they just no
    /// longer appear in expositions.
    pub fn remove_labeled(&self, key: &str, value: &str) {
        let keep = |series: &SeriesKey| !series.labels.iter().any(|(k, v)| k == key && v == value);
        self.counters.lock().retain(|k, _| keep(k));
        self.gauges.lock().retain(|k, _| keep(k));
        self.histograms.lock().retain(|k, _| keep(k));
    }

    /// Prometheus text exposition of every registered series.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock();
        let mut last_name = "";
        for (key, c) in counters.iter() {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", key.name));
                last_name = &key.name;
            }
            out.push_str(&format!("{}{} {}\n", key.name, key.render_labels(), c.get()));
        }
        drop(counters);
        let gauges = self.gauges.lock();
        let mut last_name = "";
        for (key, g) in gauges.iter() {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} gauge\n", key.name));
                last_name = &key.name;
            }
            out.push_str(&format!("{}{} {}\n", key.name, key.render_labels(), g.get()));
        }
        drop(gauges);
        let histograms = self.histograms.lock();
        let mut last_name = "";
        for (key, h) in histograms.iter() {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} histogram\n", key.name));
                last_name = &key.name;
            }
            // Exemplar (OpenMetrics syntax): appended to the first bucket
            // line whose `le` bound admits the exemplar value, linking the
            // series to one concrete request id in the flight recorder.
            let mut exemplar = h.exemplar();
            for (bound, count) in h.cumulative_buckets() {
                let mut labels = key.labels.clone();
                labels.push(("le".to_string(), fmt_f64(bound)));
                let inner: Vec<String> =
                    labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
                out.push_str(&format!("{}_bucket{{{}}} {}", key.name, inner.join(","), count));
                if exemplar.as_ref().is_some_and(|(v, _)| *v <= bound) {
                    let (v, id) = exemplar.take().expect("checked above");
                    out.push_str(&format!(" # {{request_id=\"{}\"}} {}", escape_label(&id), v));
                }
                out.push('\n');
            }
            out.push_str(&format!("{}_sum{} {}\n", key.name, key.render_labels(), h.sum()));
            out.push_str(&format!("{}_count{} {}\n", key.name, key.render_labels(), h.count()));
        }
        out
    }

    /// JSON dump of every registered series.
    pub fn json(&self) -> String {
        let labels_json = |labels: &[(String, String)]| {
            let inner: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        };
        let mut parts = Vec::new();
        for (key, c) in self.counters.lock().iter() {
            parts.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"type\":\"counter\",\"value\":{}}}",
                escape_json(&key.name),
                labels_json(&key.labels),
                c.get()
            ));
        }
        for (key, g) in self.gauges.lock().iter() {
            parts.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"type\":\"gauge\",\"value\":{}}}",
                escape_json(&key.name),
                labels_json(&key.labels),
                g.get()
            ));
        }
        for (key, h) in self.histograms.lock().iter() {
            let buckets: Vec<String> = h
                .cumulative_buckets()
                .iter()
                .map(|(b, n)| format!("{{\"le\":\"{}\",\"count\":{n}}}", fmt_f64(*b)))
                .collect();
            parts.push(format!(
                "{{\"name\":\"{}\",\"labels\":{},\"type\":\"histogram\",\"buckets\":[{}],\"sum\":{},\"count\":{}}}",
                escape_json(&key.name),
                labels_json(&key.labels),
                buckets.join(","),
                h.sum(),
                h.count()
            ));
        }
        format!("{{\"metrics\":[{}]}}", parts.join(","))
    }
}
