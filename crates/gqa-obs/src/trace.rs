//! Per-question EXPLAIN traces.
//!
//! A [`QueryTrace`] is a passive record of every decision the pipeline made
//! for one question: how the dependency parse was read, which relations were
//! extracted, which candidates each phrase mapped to (and with what
//! confidence), what entity linking kept and dropped, what neighborhood
//! pruning eliminated, and every round of the top-k (TA) join with its
//! threshold/upper-bound bookkeeping. All ids are pre-resolved to label
//! strings by the recording side, so this crate needs no knowledge of the
//! RDF dictionary.

/// How the dependency parse was interpreted.
#[derive(Clone, Debug, Default)]
pub struct ParseTrace {
    /// The tokenised question.
    pub tokens: Vec<String>,
    /// Question shape (wh-word / imperative / yes-no / count …).
    pub shape: String,
    /// The token chosen as the query target, if any.
    pub target: Option<String>,
}

/// One extracted relation (paper §3.2).
#[derive(Clone, Debug, Default)]
pub struct RelationTrace {
    /// The relation phrase text.
    pub phrase: String,
    /// First argument text.
    pub arg1: String,
    /// Second argument text.
    pub arg2: String,
}

/// Candidate list for one phrase (vertex mention or edge relation phrase).
#[derive(Clone, Debug, Default)]
pub struct PhraseCandidates {
    /// The phrase text (for edges, `?` marks an implicit edge).
    pub text: String,
    /// `(label, confidence)` per candidate, in ranked order.
    pub candidates: Vec<(String, f64)>,
}

/// What entity linking kept vs. dropped for one mention.
#[derive(Clone, Debug, Default)]
pub struct LinkTrace {
    /// The mention text.
    pub mention: String,
    /// Candidates kept (label, confidence), ranked.
    pub kept: Vec<(String, f64)>,
    /// Number of candidates dropped past the `max_candidates` cut.
    pub dropped: usize,
}

/// Effect of neighborhood pruning (paper §4.2.2) on one vertex.
#[derive(Clone, Debug, Default)]
pub struct PruneTrace {
    /// The vertex's phrase text.
    pub vertex: String,
    /// Candidate count before pruning.
    pub before: usize,
    /// Candidate count after pruning.
    pub after: usize,
    /// Labels of eliminated candidates.
    pub eliminated: Vec<String>,
}

/// Cursor position for one vertex in a TA round.
#[derive(Clone, Debug, Default)]
pub struct CursorTrace {
    /// The vertex's phrase text.
    pub vertex: String,
    /// Sorted-list depth of the cursor this round.
    pub depth: usize,
    /// The candidate at the cursor, if the list is that deep.
    pub candidate: Option<String>,
    /// That candidate's confidence.
    pub confidence: Option<f64>,
}

/// One probe (random access) in a TA round.
#[derive(Clone, Debug, Default)]
pub struct ProbeTrace {
    /// The vertex probed.
    pub vertex: String,
    /// The candidate fixed for the probe.
    pub candidate: String,
    /// Subgraph matches found by this probe.
    pub matches: usize,
    /// How many of those were new (not seen from earlier probes).
    pub new_matches: usize,
}

/// One round of the TA-style top-k join (paper Equation 3).
#[derive(Clone, Debug, Default)]
pub struct TaRoundTrace {
    /// Round number, starting at 1.
    pub round: usize,
    /// Cursor positions entering the round.
    pub cursors: Vec<CursorTrace>,
    /// Probes issued this round.
    pub probes: Vec<ProbeTrace>,
    /// θ: the k-th best score after the round (−∞ until k matches exist).
    pub theta: f64,
    /// Upbound: the best score any unseen match could still reach.
    pub upbound: f64,
    /// Whether the algorithm terminated early after this round.
    pub early_terminated: bool,
}

/// The full decision record for one question.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    /// The question text.
    pub question: String,
    /// Dependency-parse interpretation (absent if parsing failed).
    pub parse: Option<ParseTrace>,
    /// Extracted relations.
    pub relations: Vec<RelationTrace>,
    /// Per-vertex candidate lists after mapping.
    pub vertex_candidates: Vec<PhraseCandidates>,
    /// Per-edge candidate lists after mapping.
    pub edge_candidates: Vec<PhraseCandidates>,
    /// Entity-linking kept/dropped per mention.
    pub linking: Vec<LinkTrace>,
    /// Neighborhood-pruning eliminations.
    pub pruning: Vec<PruneTrace>,
    /// TA rounds, in order.
    pub ta: Vec<TaRoundTrace>,
    /// Failure-taxonomy bucket if the question failed (paper Table 10).
    pub failure: Option<String>,
    /// Free-form notes from any stage.
    pub notes: Vec<String>,
}

impl QueryTrace {
    /// A fresh trace for `question`.
    pub fn new(question: impl Into<String>) -> Self {
        QueryTrace { question: question.into(), ..QueryTrace::default() }
    }

    /// Render the trace as a human-readable EXPLAIN report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt_score = |v: f64| {
            if v == f64::NEG_INFINITY {
                "-inf".to_string()
            } else {
                format!("{v:.4}")
            }
        };
        out.push_str(&format!("EXPLAIN {}\n", self.question));
        if let Some(p) = &self.parse {
            out.push_str(&format!("  parse: shape={}", p.shape));
            if let Some(t) = &p.target {
                out.push_str(&format!(" target={t:?}"));
            }
            out.push_str(&format!("\n    tokens: {}\n", p.tokens.join(" ")));
        } else {
            out.push_str("  parse: (failed)\n");
        }
        if !self.relations.is_empty() {
            out.push_str("  relations:\n");
            for r in &self.relations {
                out.push_str(&format!("    {:?} ({:?}, {:?})\n", r.phrase, r.arg1, r.arg2));
            }
        }
        if !self.linking.is_empty() {
            out.push_str("  entity linking:\n");
            for l in &self.linking {
                out.push_str(&format!("    {:?}: {} kept", l.mention, l.kept.len()));
                if l.dropped > 0 {
                    out.push_str(&format!(", {} dropped", l.dropped));
                }
                out.push('\n');
                for (label, conf) in &l.kept {
                    out.push_str(&format!("      {label}  conf={conf:.3}\n"));
                }
            }
        }
        if !self.vertex_candidates.is_empty() {
            out.push_str("  vertex candidates:\n");
            for v in &self.vertex_candidates {
                render_candidates(&mut out, v);
            }
        }
        if !self.edge_candidates.is_empty() {
            out.push_str("  edge candidates:\n");
            for e in &self.edge_candidates {
                render_candidates(&mut out, e);
            }
        }
        if !self.pruning.is_empty() {
            out.push_str("  neighborhood pruning:\n");
            for p in &self.pruning {
                out.push_str(&format!(
                    "    {:?}: {} -> {} candidates",
                    p.vertex, p.before, p.after
                ));
                if !p.eliminated.is_empty() {
                    out.push_str(&format!("  (eliminated: {})", p.eliminated.join(", ")));
                }
                out.push('\n');
            }
        }
        if !self.ta.is_empty() {
            out.push_str("  top-k (TA) rounds:\n");
            for r in &self.ta {
                out.push_str(&format!(
                    "    round {}: theta={} upbound={}{}\n",
                    r.round,
                    fmt_score(r.theta),
                    fmt_score(r.upbound),
                    if r.early_terminated { "  [early termination]" } else { "" }
                ));
                for c in &r.cursors {
                    out.push_str(&format!(
                        "      cursor {:?} depth={} -> {}\n",
                        c.vertex,
                        c.depth,
                        match (&c.candidate, c.confidence) {
                            (Some(cand), Some(conf)) => format!("{cand} conf={conf:.3}"),
                            (Some(cand), None) => cand.clone(),
                            _ => "(exhausted)".to_string(),
                        }
                    ));
                }
                for p in &r.probes {
                    out.push_str(&format!(
                        "      probe {:?}={} -> {} matches ({} new)\n",
                        p.vertex, p.candidate, p.matches, p.new_matches
                    ));
                }
            }
        }
        if let Some(f) = &self.failure {
            out.push_str(&format!("  failure: {f}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        fn render_candidates(out: &mut String, pc: &PhraseCandidates) {
            out.push_str(&format!("    {:?}:", pc.text));
            if pc.candidates.is_empty() {
                out.push_str(" (none)\n");
                return;
            }
            out.push('\n');
            for (label, conf) in &pc.candidates {
                out.push_str(&format!("      {label}  conf={conf:.3}\n"));
            }
        }
        out
    }
}
