//! The structured access log: one JSON line per completed request,
//! written by a dedicated thread behind a bounded channel.
//!
//! The contract with the serving hot path is *never block*: workers call
//! [`AccessLog::log`], which is a `try_send` — when the writer falls
//! behind and the channel fills, the line is counted as dropped (see
//! [`AccessLog::dropped`], published as
//! `gqa_server_access_log_dropped_total`) instead of stalling a request.
//! The writer thread batches whatever is queued between flushes so live
//! tailing (`tail -f`, the CI smoke job) sees lines promptly without a
//! syscall per line under load.
//!
//! Shutdown is the drop: dropping the [`AccessLog`] closes the channel,
//! and the writer drains every queued line and flushes before the join
//! returns — so a server that drops its log after its worker pool exits
//! has durably written every retained line (the SIGTERM flush).

use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Lines queued before `log` starts dropping.
const CHANNEL_CAPACITY: usize = 1024;

enum Msg {
    Line(String),
    Flush(SyncSender<()>),
}

/// Handle to the access-log writer thread. Clone-free by design: the
/// server owns it and shares it behind its own `Arc`/borrow.
pub struct AccessLog {
    tx: Option<SyncSender<Msg>>,
    dropped: Arc<AtomicU64>,
    writer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog").field("dropped", &self.dropped()).finish_non_exhaustive()
    }
}

impl AccessLog {
    /// Log to a file, created or appended to.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog::to_writer(Box::new(file)))
    }

    /// Log to any writer (tests use an in-memory sink).
    pub fn to_writer(sink: Box<dyn Write + Send>) -> AccessLog {
        let (tx, rx) = sync_channel::<Msg>(CHANNEL_CAPACITY);
        let writer = std::thread::Builder::new()
            .name("gqa-access-log".to_string())
            .spawn(move || {
                let mut w = BufWriter::new(sink);
                // Batch: drain everything already queued after each
                // blocking recv, then flush once per batch.
                while let Ok(first) = rx.recv() {
                    let mut acks = Vec::new();
                    let mut msg = Some(first);
                    loop {
                        match msg.take() {
                            Some(Msg::Line(line)) => {
                                let _ = w.write_all(line.as_bytes());
                                let _ = w.write_all(b"\n");
                            }
                            Some(Msg::Flush(ack)) => acks.push(ack),
                            None => {}
                        }
                        match rx.try_recv() {
                            Ok(next) => msg = Some(next),
                            Err(_) => break,
                        }
                    }
                    let _ = w.flush();
                    for ack in acks {
                        let _ = ack.send(());
                    }
                }
                let _ = w.flush();
            })
            .expect("spawn access-log writer");
        AccessLog { tx: Some(tx), dropped: Arc::new(AtomicU64::new(0)), writer: Some(writer) }
    }

    /// Queue one line (no trailing newline). Never blocks: a full
    /// channel drops the line and bumps the counter.
    pub fn log(&self, line: String) {
        let Some(tx) = &self.tx else { return };
        match tx.try_send(Msg::Line(line)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Relaxed);
            }
        }
    }

    /// Lines dropped because the writer fell behind.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Block until every line queued before this call is durably
    /// written and flushed. Off the hot path (tests, admin).
    pub fn flush(&self) {
        let Some(tx) = &self.tx else { return };
        let (ack_tx, ack_rx) = sync_channel(1);
        // A blocking send is fine here: flush is not on the hot path,
        // and the writer is guaranteed to be draining.
        if tx.send(Msg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        // Close the channel, then join: the writer drains the backlog
        // and flushes before exiting.
        self.tx = None;
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// An in-memory sink observable from the test thread.
    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Sink {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn lines_arrive_in_order_with_newlines() {
        let sink = Sink::default();
        let log = AccessLog::to_writer(Box::new(sink.clone()));
        for i in 0..100 {
            log.log(format!("{{\"n\":{i}}}"));
        }
        log.flush();
        let text = sink.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        assert_eq!(lines[0], "{\"n\":0}");
        assert_eq!(lines[99], "{\"n\":99}");
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn drop_drains_and_flushes() {
        let sink = Sink::default();
        let log = AccessLog::to_writer(Box::new(sink.clone()));
        for i in 0..10 {
            log.log(format!("line-{i}"));
        }
        drop(log);
        assert_eq!(sink.contents().lines().count(), 10);
    }

    #[test]
    fn concurrent_writers_never_block_or_lose_counted_lines() {
        let sink = Sink::default();
        let log = AccessLog::to_writer(Box::new(sink.clone()));
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..500 {
                        log.log(format!("t{t}-{i}"));
                    }
                });
            }
        });
        let dropped = log.dropped();
        drop(log);
        let written = sink.contents().lines().count() as u64;
        assert_eq!(written + dropped, 2000, "written {written} + dropped {dropped}");
    }
}
