//! Lightweight hierarchical spans.
//!
//! A span is an RAII guard: creation records the start, drop records the
//! duration. Parent/child relationships are tracked with a thread-local
//! stack, so nested guards on one thread form a tree without any explicit
//! plumbing. Completed spans land in a shared collector that can render an
//! indented timing report.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Stack of currently open span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id within the collector.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, by convention `stage.substage` (e.g. `pipeline.topk`).
    pub name: String,
    /// Start offset from the collector's epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
}

/// Shared sink for completed spans.
#[derive(Debug)]
pub struct SpanCollector {
    epoch: Instant,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        SpanCollector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            records: Mutex::new(Vec::new()),
        }
    }
}

impl SpanCollector {
    /// Open a span; finished (and recorded) when the guard drops.
    pub fn start(self: &Arc<Self>, name: &str) -> SpanGuard {
        let id = self.next_id.fetch_add(1, Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        SpanGuard {
            collector: Some(self.clone()),
            id,
            parent,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Snapshot of all completed spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    /// Render completed spans as an indented tree, children under parents,
    /// siblings in start order.
    pub fn report(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| r.start_us);
        let mut out = String::new();
        // Roots are spans whose parent is absent from the record set (the
        // parent may still be open).
        let known: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
        let roots: Vec<&SpanRecord> =
            records.iter().filter(|r| r.parent.is_none_or(|p| !known.contains(&p))).collect();
        for root in roots {
            render(root, &records, 0, &mut out);
        }
        fn render(r: &SpanRecord, all: &[SpanRecord], depth: usize, out: &mut String) {
            out.push_str(&format!(
                "{}{} {:.3}ms\n",
                "  ".repeat(depth),
                r.name,
                r.dur_us as f64 / 1000.0
            ));
            for child in all.iter().filter(|c| c.parent == Some(r.id)) {
                render(child, all, depth + 1, out);
            }
        }
        out
    }

    fn finish(&self, guard: &SpanGuard) {
        let start_us = guard.start.duration_since(self.epoch).as_micros() as u64;
        let dur_us = guard.start.elapsed().as_micros() as u64;
        self.records.lock().push(SpanRecord {
            id: guard.id,
            parent: guard.parent,
            name: guard.name.clone(),
            start_us,
            dur_us,
        });
    }
}

/// RAII guard for one open span; a disabled guard (`SpanGuard::noop`)
/// records nothing.
#[derive(Debug)]
pub struct SpanGuard {
    collector: Option<Arc<SpanCollector>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
}

impl SpanGuard {
    /// A guard that records nothing on drop.
    pub fn noop() -> Self {
        SpanGuard {
            collector: None,
            id: 0,
            parent: None,
            name: String::new(),
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(collector) = self.collector.take() {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.last() == Some(&self.id) {
                    s.pop();
                } else {
                    // Out-of-order drop (guards moved across scopes): remove
                    // wherever it is to keep the stack consistent.
                    s.retain(|&x| x != self.id);
                }
            });
            collector.finish(self);
        }
    }
}
