//! Property tests for the flight recorder's ring buffer and tail
//! sampler.
//!
//! The contract under test (see `gqa_obs::recorder`): for ANY interleaving
//! of concurrent `record` and `snapshot` calls, the recorder never
//! panics, never retains more than its capacity, and never lets sampled
//! healthy records evict pinned (error/degraded) ones.

use gqa_obs::{Recorder, RequestTrace};
use proptest::prelude::*;
use std::sync::Arc;

/// A compact script entry: what one recorded request looks like.
#[derive(Clone, Debug)]
struct Req {
    status: u16,
    degraded: bool,
    ms: f64,
}

fn req_strategy(max_ms: f64) -> impl Strategy<Value = Req> {
    (
        prop::sample::select(vec![200u16, 200, 200, 200, 400, 500, 503, 504]),
        0.0f64..1.0,
        0.01f64..max_ms,
    )
        .prop_map(|(status, p, ms)| Req { status, degraded: p < 0.2, ms })
}

fn trace(worker: usize, i: usize, r: &Req) -> RequestTrace {
    RequestTrace {
        id: format!("w{worker}-{i}"),
        route: "answer".to_string(),
        status: r.status,
        degraded: r.degraded.then(|| "frontier".to_string()),
        total_ms: r.ms,
        ..RequestTrace::default()
    }
}

fn interesting(r: &Req) -> bool {
    r.status >= 400 || r.degraded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 4 writer threads record concurrently while a reader snapshots;
    /// afterwards: bounded, newest-first, and every pinned-eligible
    /// record that *must* still fit is present.
    /// Latencies stay under the recorder's lowest p95 bucket bound so
    /// the latency-pin criterion can never fire — the pinned ring then
    /// holds exactly the error/degraded records, making the
    /// retained-over-sampled property checkable precisely.
    #[test]
    fn concurrent_record_and_snapshot_hold_the_invariants(
        capacity in 2usize..48,
        scripts in prop::collection::vec(prop::collection::vec(req_strategy(0.2), 1..40), 4..=4),
    ) {
        let rec = Arc::new(Recorder::new(capacity));
        std::thread::scope(|s| {
            for (worker, script) in scripts.iter().enumerate() {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for (i, r) in script.iter().enumerate() {
                        rec.record(trace(worker, i, r));
                    }
                });
            }
            // Reader races the writers: snapshots must stay well-formed
            // mid-flight, not only at quiescence.
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for _ in 0..50 {
                    let snap = rec.snapshot();
                    assert!(snap.len() <= rec.capacity());
                    assert!(snap.windows(2).all(|w| w[0].seq > w[1].seq));
                }
            });
        });

        // Quiescent checks.
        let snap = rec.snapshot();
        prop_assert!(snap.len() <= rec.capacity(), "{} > {}", snap.len(), rec.capacity());
        prop_assert!(snap.windows(2).all(|w| w[0].seq > w[1].seq), "not newest-first");

        // Every retained interesting record is marked pinned, and no
        // healthy record ever displaced one: the number of interesting
        // records retained is the total recorded, capped by the pinned
        // ring's share of the capacity.
        let pinned_cap = capacity.div_ceil(2);
        let interesting_recorded: usize =
            scripts.iter().map(|s| s.iter().filter(|r| interesting(r)).count()).sum();
        let interesting_retained =
            snap.iter().filter(|t| t.status >= 400 || t.degraded.is_some()).count();
        prop_assert!(
            interesting_retained >= interesting_recorded.min(pinned_cap),
            "retained {interesting_retained} of {interesting_recorded} interesting records \
             (pinned capacity {pinned_cap})"
        );
        for t in snap.iter().filter(|t| t.status >= 400 || t.degraded.is_some()) {
            prop_assert!(t.pinned, "interesting record {} retained unpinned", t.id);
        }
    }

    /// Serial sanity: ids are found while retained, and a capacity-1-each
    /// recorder still never exceeds bounds.
    #[test]
    fn serial_record_then_find(script in prop::collection::vec(req_strategy(50.0), 1..60)) {
        let rec = Recorder::new(4);
        for (i, r) in script.iter().enumerate() {
            rec.record(trace(0, i, r));
            prop_assert!(rec.len() <= rec.capacity());
        }
        // The newest record is always findable: it was pushed last into
        // whichever ring accepted it... unless it was a healthy record
        // skipped by the 1-in-N sampler after the ring filled, in which
        // case find() returning None is the documented behaviour.
        let last = script.len() - 1;
        if interesting(&script[last]) {
            let found = rec.find(&format!("w0-{last}")).is_some();
            prop_assert!(found, "newest interesting record not findable");
        }
    }
}
