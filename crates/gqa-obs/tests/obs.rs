//! Integration tests: histogram bucket semantics, concurrent counters,
//! span nesting, and Prometheus exposition against a golden file.

use gqa_obs::{Obs, DURATION_BUCKETS};

#[test]
fn histogram_bucket_boundaries() {
    let obs = Obs::new();
    let reg = obs.registry().unwrap();
    let h = reg.histogram("gqa_test_duration_seconds", &[], &[0.1, 1.0, 10.0]);

    // One observation per region, including exact boundary hits: Prometheus
    // buckets are `le` (less-than-or-equal), so 0.1 belongs in the first
    // bucket and 10.0 in the last finite one.
    h.observe(0.05); // <= 0.1
    h.observe(0.1); // <= 0.1 (boundary)
    h.observe(0.5); // <= 1.0
    h.observe(1.0); // <= 1.0 (boundary)
    h.observe(10.0); // <= 10.0 (boundary)
    h.observe(99.0); // +Inf only

    let buckets = h.cumulative_buckets();
    assert_eq!(buckets.len(), 4);
    assert_eq!(buckets[0], (0.1, 2));
    assert_eq!(buckets[1], (1.0, 4));
    assert_eq!(buckets[2], (10.0, 5));
    assert_eq!(buckets[3].1, 6, "+Inf bucket must count everything");
    assert!(buckets[3].0.is_infinite());
    assert_eq!(h.count(), 6);
    let expected_sum = 0.05 + 0.1 + 0.5 + 1.0 + 10.0 + 99.0;
    assert!((h.sum() - expected_sum).abs() < 1e-9);
}

#[test]
fn default_duration_buckets_are_increasing() {
    assert!(DURATION_BUCKETS.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn concurrent_counters_from_eight_threads() {
    let obs = Obs::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let handle = obs.counter("gqa_test_concurrent_total", &[]);
            let hist = obs.histogram("gqa_test_concurrent_seconds", &[], &[0.5]);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    handle.inc();
                    hist.observe(if i % 2 == 0 { 0.1 } else { 0.9 });
                }
            });
        }
    });
    assert_eq!(obs.counter("gqa_test_concurrent_total", &[]).get(), THREADS as u64 * PER_THREAD);
    let reg = obs.registry().unwrap();
    let h = reg.histogram("gqa_test_concurrent_seconds", &[], &[0.5]);
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    let buckets = h.cumulative_buckets();
    assert_eq!(buckets[0].1, THREADS as u64 * PER_THREAD / 2);
    assert_eq!(buckets[1].1, THREADS as u64 * PER_THREAD);
    let expected_sum = THREADS as f64 * (PER_THREAD as f64 / 2.0) * (0.1 + 0.9);
    assert!(
        (h.sum() - expected_sum).abs() < 1e-6,
        "sum {} vs expected {expected_sum}: no lost updates under contention",
        h.sum()
    );
}

#[test]
fn span_nesting_and_ordering() {
    let obs = Obs::new();
    {
        let _outer = obs.span("pipeline.answer");
        {
            let _inner1 = obs.span("pipeline.understand");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _inner2 = obs.span("pipeline.topk");
        }
    }
    let report = obs.span_report();
    let lines: Vec<&str> = report.lines().collect();
    assert_eq!(lines.len(), 3, "three spans recorded:\n{report}");
    assert!(lines[0].starts_with("pipeline.answer "), "{report}");
    assert!(lines[1].starts_with("  pipeline.understand "), "children indented:\n{report}");
    assert!(lines[2].starts_with("  pipeline.topk "), "siblings in start order:\n{report}");

    // The parent's duration covers its children.
    let records = obs.span_records();
    let outer = records.iter().find(|r| r.name == "pipeline.answer").unwrap();
    let inner = records.iter().find(|r| r.name == "pipeline.understand").unwrap();
    assert!(outer.dur_us >= inner.dur_us);
    assert_eq!(inner.parent, Some(outer.id));
}

#[test]
fn prometheus_golden_exposition() {
    let obs = Obs::new();
    obs.counter("gqa_pipeline_questions_total", &[]).add(3);
    obs.counter("gqa_pipeline_failures_total", &[("reason", "no_match")]).inc();
    obs.counter("gqa_pipeline_failures_total", &[("reason", "parse")]).add(2);
    let reg = obs.registry().unwrap();
    let h =
        reg.histogram("gqa_pipeline_stage_duration_seconds", &[("stage", "topk")], &[0.001, 0.01]);
    h.observe(0.0005);
    h.observe(0.005);
    h.observe(0.5);

    let got = obs.prometheus();
    let want = "\
# TYPE gqa_pipeline_failures_total counter
gqa_pipeline_failures_total{reason=\"no_match\"} 1
gqa_pipeline_failures_total{reason=\"parse\"} 2
# TYPE gqa_pipeline_questions_total counter
gqa_pipeline_questions_total 3
# TYPE gqa_pipeline_stage_duration_seconds histogram
gqa_pipeline_stage_duration_seconds_bucket{stage=\"topk\",le=\"0.001\"} 1
gqa_pipeline_stage_duration_seconds_bucket{stage=\"topk\",le=\"0.01\"} 2
gqa_pipeline_stage_duration_seconds_bucket{stage=\"topk\",le=\"+Inf\"} 3
gqa_pipeline_stage_duration_seconds_sum{stage=\"topk\"} 0.5055
gqa_pipeline_stage_duration_seconds_count{stage=\"topk\"} 3
";
    assert_eq!(got, want, "Prometheus exposition drifted from golden output");
}

#[test]
fn json_exposition_is_well_formed() {
    let obs = Obs::new();
    obs.counter("gqa_test_total", &[("k", "va\"lue")]).inc();
    let json = obs.json();
    assert!(json.starts_with("{\"metrics\":["));
    assert!(json.contains("\"va\\\"lue\""), "label values JSON-escaped: {json}");
    assert!(json.ends_with("]}"));
}

#[test]
fn set_counter_publishes_absolute_snapshots() {
    let obs = Obs::new();
    let reg = obs.registry().unwrap();
    reg.set_counter("gqa_rdf_index_lookups_total", &[("index", "spo")], 42);
    reg.set_counter("gqa_rdf_index_lookups_total", &[("index", "spo")], 45);
    assert_eq!(obs.counter("gqa_rdf_index_lookups_total", &[("index", "spo")]).get(), 45);
}
