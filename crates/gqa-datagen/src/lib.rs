//! # gqa-datagen — synthetic data substrates (paper §6.1)
//!
//! The paper evaluates on DBpedia (5.2 M entities), the Patty relation-
//! phrase datasets and the QALD-3 benchmark — none of which are available
//! offline. This crate builds their local stand-ins (see DESIGN.md §2 for
//! the substitution argument):
//!
//! * [`minidbp`] — a curated, deterministic mini-DBpedia knowledge graph
//!   covering every entity/predicate the benchmark questions touch,
//!   including the deliberate ambiguities the paper leans on (three
//!   "Philadelphia" vertices, class-vs-entity "actor", …);
//! * [`patty`] — relation-phrase datasets with supporting entity pairs: a
//!   curated set aligned with the mini graph, and a parametric random
//!   generator (for the Table 5 / Table 7 scale experiments) that plants
//!   true predicate-path paraphrases plus `hasGender`-style noise;
//! * [`scale`] — a parametric random RDF graph generator (Zipfian predicate
//!   use, typed entities, labels) for offline-mining and matching scaling
//!   runs;
//! * [`qald`] — a QALD-3-like benchmark of 99 natural-language questions
//!   with gold answers over the mini graph, stratified into the failure
//!   categories of the paper's Table 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minidbp;
pub mod miniyago;
pub mod patty;
pub mod qald;
pub mod scale;
pub mod scaleqa;

pub use minidbp::mini_dbpedia;
pub use miniyago::mini_yago;
pub use patty::{mini_phrase_dataset, synthetic_phrase_dataset, SyntheticPhraseConfig};
pub use qald::{benchmark, BenchQuestion, Category, Gold};
pub use scale::{scale_graph, ScaleConfig};
pub use scaleqa::{scale_qa, ScaleQa, ScaleQaConfig};
