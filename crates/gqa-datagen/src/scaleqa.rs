//! End-to-end Q/A at scale: a synthetic knowledge graph whose predicates
//! carry *real English relation phrases*, plus template-generated questions
//! with machine-computed gold answers.
//!
//! The curated mini graph pins correctness; this module pins **scaling
//! behavior** — the full pipeline (parse → extract → link → match) runs
//! unmodified over graphs of 10⁵–10⁶ triples, with gold answers computed
//! directly from the store so accuracy can be asserted at any size.

use gqa_paraphrase::support::{PhraseDataset, PhraseEntry};
use gqa_rdf::{Store, StoreBuilder, TermId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Predicates with their relation phrase and a one-hop question template
/// (`{}` is the entity slot; the answer is the set of predicate-neighbors
/// in either direction, matching Definition 3's orientation-free edges).
const PREDICATES: &[(&str, &str, &str)] = &[
    ("dbo:spouse", "be married to", "Who is married to {}?"),
    ("dbo:starring", "star in", "Who starred in {}?"),
    ("dbo:director", "direct", "Who directed {}?"),
    ("dbo:birthPlace", "be born in", "Who was born in {}?"),
    ("dbo:foundedBy", "found", "Who founded {}?"),
    ("dbo:developer", "develop", "Who developed {}?"),
    ("dbo:creator", "create", "Who created {}?"),
];

/// One generated question with its gold answer labels.
#[derive(Clone, Debug)]
pub struct ScaleQuestion {
    /// The natural-language question.
    pub text: String,
    /// Gold answers as entity labels (IRI fragments).
    pub gold: Vec<String>,
    /// Number of `Q^S` edges the question needs (1 or 2).
    pub hops: usize,
}

/// A scale Q/A instance.
#[derive(Clone, Debug)]
pub struct ScaleQa {
    /// The graph.
    pub store: Store,
    /// Relation-phrase dataset aligned with the graph (feed to the miner).
    pub phrases: PhraseDataset,
    /// Generated questions with gold answers.
    pub questions: Vec<ScaleQuestion>,
}

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScaleQaConfig {
    /// Number of entity vertices.
    pub entities: usize,
    /// Edges per named predicate.
    pub edges_per_predicate: usize,
    /// Extra noise predicates (un-phrased) and their edges.
    pub noise_predicates: usize,
    /// Edges per noise predicate.
    pub noise_edges: usize,
    /// Questions to generate.
    pub questions: usize,
    /// Fraction of questions that are two-hop ("married to a person that
    /// was born in …").
    pub two_hop_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleQaConfig {
    fn default() -> Self {
        ScaleQaConfig {
            entities: 20_000,
            edges_per_predicate: 8_000,
            noise_predicates: 20,
            noise_edges: 4_000,
            questions: 50,
            two_hop_fraction: 0.3,
            seed: 17,
        }
    }
}

/// Build a scale Q/A instance.
pub fn scale_qa(cfg: &ScaleQaConfig) -> ScaleQa {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = StoreBuilder::new();
    let ent = |i: usize| format!("dbr:E{i}");

    // Named-predicate edges.
    for (pred, _, _) in PREDICATES {
        for _ in 0..cfg.edges_per_predicate {
            let s = rng.gen_range(0..cfg.entities);
            let mut o = rng.gen_range(0..cfg.entities);
            if o == s {
                o = (o + 1) % cfg.entities;
            }
            b.add_iri(&ent(s), pred, &ent(o));
        }
    }
    // Noise predicates.
    for k in 0..cfg.noise_predicates {
        for _ in 0..cfg.noise_edges {
            let s = rng.gen_range(0..cfg.entities);
            let mut o = rng.gen_range(0..cfg.entities);
            if o == s {
                o = (o + 1) % cfg.entities;
            }
            b.add_iri(&ent(s), &format!("dbo:noise{k}"), &ent(o));
        }
    }
    let store = b.build();

    // Phrase dataset: sample support pairs per predicate, ordered so the
    // phrase reads arg1 → arg2 as the templates do (answer side first).
    let mut phrases = Vec::new();
    for (pred, phrase, _) in PREDICATES {
        let pid = store.expect_iri(pred);
        let edges: Vec<_> = store.with_predicate(pid).take(500).collect();
        let mut support = Vec::new();
        for _ in 0..12.min(edges.len()) {
            let t = edges[rng.gen_range(0..edges.len())];
            support.push((
                store.term(t.s).as_iri().unwrap().to_owned(),
                store.term(t.o).as_iri().unwrap().to_owned(),
            ));
        }
        phrases.push(PhraseEntry::new(*phrase, support));
    }

    // Questions.
    let neighbors = |store: &Store, e: TermId, p: TermId| -> Vec<String> {
        let mut out: Vec<String> = store
            .objects(e, p)
            .chain(store.subjects(p, e))
            .map(|id| store.term(id).label().into_owned())
            .collect();
        out.sort();
        out.dedup();
        out
    };
    let mut questions = Vec::new();
    let mut guard = 0usize;
    while questions.len() < cfg.questions && guard < cfg.questions * 100 {
        guard += 1;
        let (pred, _, template) = PREDICATES[rng.gen_range(0..PREDICATES.len())];
        let pid = store.expect_iri(pred);
        let edges: Vec<_> = store.with_predicate(pid).take(2_000).collect();
        if edges.is_empty() {
            continue;
        }
        let t = edges[rng.gen_range(0..edges.len())];
        if rng.gen_bool(cfg.two_hop_fraction) {
            // Two-hop: "Who is married to a person that was born in {X}?"
            let spouse = store.expect_iri("dbo:spouse");
            let birth = store.expect_iri("dbo:birthPlace");
            // Pick a birthPlace edge whose subject has a spouse edge.
            let bp_edges: Vec<_> = store.with_predicate(birth).take(2_000).collect();
            let Some(be) = bp_edges.iter().find(|e| {
                store.out_edges_with(e.s, spouse).next().is_some()
                    || store.in_edges_with(e.s, spouse).next().is_some()
            }) else {
                continue;
            };
            let place = be.o;
            // Gold: every x spouse-adjacent to some y birth-adjacent to place.
            let mut gold: Vec<String> = Vec::new();
            let ys: Vec<TermId> =
                store.subjects(birth, place).chain(store.objects(place, birth)).collect();
            for y in ys {
                for x in store.objects(y, spouse).chain(store.subjects(spouse, y)) {
                    let label = store.term(x).label().into_owned();
                    if !gold.contains(&label) {
                        gold.push(label);
                    }
                }
            }
            if gold.is_empty() {
                continue;
            }
            gold.sort();
            let text = format!(
                "Who is married to a person that was born in {}?",
                store.term(place).label()
            );
            questions.push(ScaleQuestion { text, gold, hops: 2 });
        } else {
            let anchor = if rng.gen_bool(0.5) { t.s } else { t.o };
            let gold = neighbors(&store, anchor, pid);
            if gold.is_empty() {
                continue;
            }
            let text = template.replace("{}", &store.term(anchor).label());
            questions.push(ScaleQuestion { text, gold, hops: 1 });
        }
    }

    ScaleQa { store, phrases: PhraseDataset::new(phrases), questions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleQa {
        scale_qa(&ScaleQaConfig {
            entities: 500,
            edges_per_predicate: 300,
            noise_predicates: 4,
            noise_edges: 200,
            questions: 12,
            two_hop_fraction: 0.3,
            seed: 3,
        })
    }

    #[test]
    fn generates_questions_with_nonempty_gold() {
        let qa = small();
        assert_eq!(qa.questions.len(), 12);
        for q in &qa.questions {
            assert!(!q.gold.is_empty(), "{q:?}");
            assert!(q.text.ends_with('?'));
        }
        assert!(qa.questions.iter().any(|q| q.hops == 2), "some two-hop questions expected");
    }

    #[test]
    fn phrase_dataset_resolves_fully() {
        let qa = small();
        assert!(qa.phrases.resolvable_fraction(&qa.store) > 0.99);
        assert_eq!(qa.phrases.len(), 7);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.questions.len(), b.questions.len());
        for (x, y) in a.questions.iter().zip(&b.questions) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn gold_matches_store_neighbors() {
        let qa = small();
        // Spot-check a one-hop question against a fresh neighbor scan.
        let q = qa.questions.iter().find(|q| q.hops == 1).expect("one-hop question");
        // The mention is the last word before '?'.
        let mention = q.text.trim_end_matches('?').split_whitespace().last().unwrap();
        let id = qa.store.iri(&format!("dbr:{mention}")).expect("mention resolves");
        let any_neighbor = qa
            .store
            .out_edges(id)
            .map(|t| t.o)
            .chain(qa.store.in_edges(id).map(|t| t.s))
            .any(|n| q.gold.contains(&qa.store.term(n).label().into_owned()));
        assert!(any_neighbor, "{q:?}");
    }
}
