//! A second curated knowledge graph with Yago2-style vocabulary.
//!
//! §6 of the paper: *"We also evaluate our method in other RDF
//! repositories, such as Yago2."* This module provides the stand-in: a
//! graph whose predicate vocabulary follows Yago's camel-cased verb style
//! (`yago:isMarriedTo`, `yago:actedIn`, `yago:wasBornIn`, …) — disjoint
//! from the DBpedia-flavored mini graph — plus an aligned phrase dataset
//! and a small benchmark. Nothing in the pipeline is DBpedia-specific;
//! the integration tests run the same code over both graphs.

use gqa_paraphrase::support::{PhraseDataset, PhraseEntry};
use gqa_rdf::{Store, StoreBuilder, Term};

const FACTS: &[(&str, &str, &str)] = &[
    // people & films
    ("yago:Marlon_Brando", "yago:actedIn", "yago:The_Godfather_(film)"),
    ("yago:Al_Pacino", "yago:actedIn", "yago:The_Godfather_(film)"),
    ("yago:Al_Pacino", "yago:actedIn", "yago:Scarface_(film)"),
    ("yago:Marlon_Brando", "rdf:type", "yago:Actor"),
    ("yago:Al_Pacino", "rdf:type", "yago:Actor"),
    ("yago:The_Godfather_(film)", "rdf:type", "yago:Movie"),
    ("yago:Scarface_(film)", "rdf:type", "yago:Movie"),
    ("yago:Movie", "rdfs:subClassOf", "yago:CreativeWork"),
    ("yago:Actor", "rdfs:subClassOf", "yago:Person"),
    // marriages
    ("yago:Humphrey_Bogart", "yago:isMarriedTo", "yago:Lauren_Bacall"),
    ("yago:Humphrey_Bogart", "rdf:type", "yago:Actor"),
    ("yago:Lauren_Bacall", "rdf:type", "yago:Actor"),
    ("yago:Humphrey_Bogart", "yago:actedIn", "yago:Casablanca_(film)"),
    ("yago:Casablanca_(film)", "rdf:type", "yago:Movie"),
    // places
    ("yago:Albert_Einstein", "yago:wasBornIn", "yago:Ulm"),
    ("yago:Albert_Einstein", "yago:diedIn", "yago:Princeton"),
    ("yago:Albert_Einstein", "rdf:type", "yago:Physicist"),
    ("yago:Physicist", "rdfs:subClassOf", "yago:Person"),
    ("yago:Ulm", "rdf:type", "yago:City"),
    ("yago:Princeton", "rdf:type", "yago:City"),
    ("yago:Ulm", "yago:isLocatedIn", "yago:Germany"),
    ("yago:Princeton", "yago:isLocatedIn", "yago:United_States"),
    ("yago:Germany", "rdf:type", "yago:Country"),
    ("yago:United_States", "rdf:type", "yago:Country"),
    ("yago:Germany", "yago:hasCapital", "yago:Berlin"),
    ("yago:Berlin", "rdf:type", "yago:City"),
    // family (path questions)
    ("yago:Niels_Bohr", "yago:hasChild", "yago:Aage_Bohr"),
    ("yago:Niels_Bohr", "yago:hasChild", "yago:Hans_Bohr"),
    ("yago:Christian_Bohr", "yago:hasChild", "yago:Niels_Bohr"),
    ("yago:Christian_Bohr", "yago:hasChild", "yago:Jenny_Bohr"),
    ("yago:Niels_Bohr", "rdf:type", "yago:Physicist"),
    ("yago:Aage_Bohr", "rdf:type", "yago:Physicist"),
    // creations
    ("yago:J._R._R._Tolkien", "yago:created", "yago:The_Hobbit"),
    ("yago:J._R._R._Tolkien", "yago:created", "yago:The_Lord_of_the_Rings"),
    ("yago:The_Hobbit", "rdf:type", "yago:Book"),
    ("yago:The_Lord_of_the_Rings", "rdf:type", "yago:Book"),
    ("yago:Book", "rdfs:subClassOf", "yago:CreativeWork"),
];

fn labels(b: &mut StoreBuilder) {
    let ls: &[(&str, &str)] = &[
        ("yago:Actor", "actor"),
        ("yago:Movie", "movie"),
        ("yago:Movie", "film"),
        ("yago:City", "city"),
        ("yago:Country", "country"),
        ("yago:Book", "book"),
        ("yago:Physicist", "physicist"),
        ("yago:Person", "person"),
        ("yago:The_Godfather_(film)", "The Godfather"),
        ("yago:Scarface_(film)", "Scarface"),
        ("yago:Casablanca_(film)", "Casablanca"),
        ("yago:J._R._R._Tolkien", "Tolkien"),
    ];
    for (s, l) in ls {
        b.add_obj(s, "rdfs:label", Term::lit(*l));
    }
}

/// Build the mini-Yago store.
pub fn mini_yago() -> Store {
    let mut b = StoreBuilder::new();
    for (s, p, o) in FACTS {
        b.add_iri(s, p, o);
    }
    labels(&mut b);
    b.build()
}

/// The aligned relation-phrase dataset (same phrases, Yago predicates —
/// demonstrating the dictionary is mined per-repository, §3).
pub fn yago_phrase_dataset() -> PhraseDataset {
    let sp = |a: &str, b: &str| (a.to_owned(), b.to_owned());
    PhraseDataset::new(vec![
        PhraseEntry::new("be married to", vec![sp("yago:Humphrey_Bogart", "yago:Lauren_Bacall")]),
        PhraseEntry::new(
            "play in",
            vec![
                sp("yago:Marlon_Brando", "yago:The_Godfather_(film)"),
                sp("yago:Al_Pacino", "yago:Scarface_(film)"),
            ],
        ),
        PhraseEntry::new("be born in", vec![sp("yago:Albert_Einstein", "yago:Ulm")]),
        PhraseEntry::new("die in", vec![sp("yago:Albert_Einstein", "yago:Princeton")]),
        PhraseEntry::new("capital of", vec![sp("yago:Berlin", "yago:Germany")]),
        PhraseEntry::new(
            "write",
            vec![
                sp("yago:J._R._R._Tolkien", "yago:The_Hobbit"),
                sp("yago:J._R._R._Tolkien", "yago:The_Lord_of_the_Rings"),
            ],
        ),
        PhraseEntry::new("brother of", vec![sp("yago:Niels_Bohr", "yago:Jenny_Bohr")]),
        PhraseEntry::new(
            "be located in",
            vec![sp("yago:Ulm", "yago:Germany"), sp("yago:Princeton", "yago:United_States")],
        ),
    ])
}

/// A small benchmark over the Yago graph: `(question, gold labels)`.
pub fn yago_benchmark() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("Who was married to an actor that played in Casablanca?", vec!["Lauren Bacall"]),
        ("Who is married to Humphrey Bogart?", vec!["Lauren Bacall"]),
        ("In which city was Albert Einstein born?", vec!["Ulm"]),
        ("Where did Albert Einstein die?", vec!["Princeton"]),
        ("What is the capital of Germany?", vec!["Berlin"]),
        ("Which books were written by Tolkien?", vec!["The Hobbit", "The Lord of the Rings"]),
        ("Who is the brother of Jenny Bohr?", vec!["Niels Bohr"]),
        ("Which movies star Al Pacino?", vec!["The Godfather", "Scarface"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::schema::Schema;

    #[test]
    fn builds_with_disjoint_vocabulary() {
        let y = mini_yago();
        let d = crate::minidbp::mini_dbpedia();
        // No shared predicate except the RDF/RDFS built-ins.
        let dy: Vec<String> = y
            .predicates()
            .iter()
            .filter_map(|&p| y.term(p).as_iri().map(str::to_owned))
            .filter(|p| p.starts_with("yago:"))
            .collect();
        assert!(!dy.is_empty());
        for p in &dy {
            assert!(d.iri(p).is_none(), "{p} leaked into mini-DBpedia");
        }
    }

    #[test]
    fn schema_classifies_yago_classes() {
        let y = mini_yago();
        let s = Schema::new(&y);
        assert!(s.is_class(y.expect_iri("yago:Actor")));
        assert!(s.has_type(y.expect_iri("yago:Al_Pacino"), y.expect_iri("yago:Person")));
    }

    #[test]
    fn phrase_dataset_resolves() {
        let y = mini_yago();
        assert!(yago_phrase_dataset().resolvable_fraction(&y) > 0.99);
    }

    #[test]
    fn benchmark_golds_exist() {
        let y = mini_yago();
        for (q, gold) in yago_benchmark() {
            for g in gold {
                let found = y.vertices().iter().any(|&v| y.term(v).label() == g);
                assert!(found, "{q}: gold {g} missing");
            }
        }
    }
}
