//! Relation-phrase datasets (Patty/ReVerb stand-ins).
//!
//! Two sources:
//!
//! * [`mini_phrase_dataset`] — a curated dataset aligned with the mini
//!   graph: each phrase carries supporting entity pairs drawn from real
//!   facts, with ~⅓ unresolvable pairs mixed in (the paper observes only
//!   ~67 % of Patty pairs occur in DBpedia) and deliberately *noisy*
//!   phrases whose pairs share only `hasGender`-style hub paths;
//! * [`synthetic_phrase_dataset`] — a parametric generator over any store:
//!   it plants a ground-truth predicate path per phrase, instantiates
//!   support pairs by walking the graph, and records the truth so the
//!   dictionary-precision experiment (Exp 1) can grade mechanically.
//!
//! Relation phrases are written in the mixed lemma/surface form the online
//! embedding matcher accepts (a phrase word matches a tree node if it
//! equals the node's lemma *or* its lowercased surface form).

use crate::scale::instantiable_pairs;
use gqa_paraphrase::support::{PhraseDataset, PhraseEntry};
use gqa_rdf::paths::{Dir, PathPattern, PathStep};
use gqa_rdf::Store;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shorthand for building a support pair.
fn sp(a: &str, b: &str) -> (String, String) {
    (a.into(), b.into())
}

/// The curated phrase dataset over the mini-DBpedia graph.
///
/// Pair order is `(arg1, arg2)` in the phrase's reading direction:
/// *"Klaus Wowereit is the **mayor of** Berlin"* → `(Wowereit, Berlin)`.
pub fn mini_phrase_dataset() -> PhraseDataset {
    let entries = vec![
        PhraseEntry::new(
            "be married to",
            vec![
                sp("dbr:Melanie_Griffith", "dbr:Antonio_Banderas"),
                sp("dbr:Barack_Obama", "dbr:Michelle_Obama"),
                sp("dbr:Amanda_Palmer", "dbr:Neil_Gaiman"),
                sp("dbr:Unknown_Person_A", "dbr:Unknown_Person_B"), // unresolvable
            ],
        ),
        PhraseEntry::new(
            "wife of",
            vec![
                sp("dbr:Michelle_Obama", "dbr:Barack_Obama"),
                sp("dbr:Melanie_Griffith", "dbr:Antonio_Banderas"),
            ],
        ),
        PhraseEntry::new(
            "husband of",
            vec![
                sp("dbr:Neil_Gaiman", "dbr:Amanda_Palmer"),
                sp("dbr:Antonio_Banderas", "dbr:Melanie_Griffith"),
            ],
        ),
        PhraseEntry::new(
            "play in",
            vec![
                sp("dbr:Antonio_Banderas", "dbr:Philadelphia_(film)"),
                sp("dbr:Tom_Hanks", "dbr:Philadelphia_(film)"),
                sp("dbr:Allen_Iverson", "dbr:Philadelphia_76ers"),
                sp("dbr:Julia_Roberts", "dbr:Runaway_Bride"), // unresolvable
            ],
        ),
        PhraseEntry::new(
            "star in",
            vec![
                sp("dbr:Antonio_Banderas", "dbr:Philadelphia_(film)"),
                sp("dbr:Tom_Hanks", "dbr:Philadelphia_(film)"),
            ],
        ),
        PhraseEntry::new(
            "uncle of",
            vec![
                sp("dbr:Ted_Kennedy", "dbr:John_F._Kennedy,_Jr."),
                sp("dbr:Ted_Kennedy", "dbr:Caroline_Kennedy"),
                sp("dbr:Robert_F._Kennedy", "dbr:John_F._Kennedy,_Jr."),
                sp("dbr:Peter_Corr", "dbr:Jim_Corr"),
            ],
        ),
        PhraseEntry::new(
            "mayor of",
            vec![
                sp("dbr:Klaus_Wowereit", "dbr:Berlin"),
                sp("dbr:Unknown_Mayor", "dbr:Unknown_Town"),
            ],
        ),
        PhraseEntry::new(
            "capital of",
            vec![sp("dbr:Ottawa", "dbr:Canada"), sp("dbr:Berlin", "dbr:Germany")],
        ),
        PhraseEntry::new(
            "governor of",
            vec![sp("dbr:Matt_Mead", "dbr:Wyoming"), sp("dbr:Sean_Parnell", "dbr:Alaska")],
        ),
        PhraseEntry::new("successor of", vec![sp("dbr:Lyndon_B._Johnson", "dbr:John_F._Kennedy")]),
        PhraseEntry::new("father of", vec![sp("dbr:George_VI", "dbr:Queen_Elizabeth_II")]),
        PhraseEntry::new(
            "member of",
            vec![
                sp("dbr:Keith_Flint", "dbr:The_Prodigy"),
                sp("dbr:Liam_Howlett", "dbr:The_Prodigy"),
                sp("dbr:Maxim_Reality", "dbr:The_Prodigy"),
            ],
        ),
        PhraseEntry::new(
            "be produced in",
            vec![sp("dbr:Volkswagen_Golf", "dbr:Germany"), sp("dbr:BMW_3_Series", "dbr:Germany")],
        ),
        PhraseEntry::new(
            "direct",
            vec![
                sp("dbr:Francis_Ford_Coppola", "dbr:The_Godfather"),
                sp("dbr:Francis_Ford_Coppola", "dbr:Apocalypse_Now"),
            ],
        ),
        PhraseEntry::new(
            "be directed by",
            vec![
                sp("dbr:The_Godfather", "dbr:Francis_Ford_Coppola"),
                sp("dbr:Apocalypse_Now", "dbr:Francis_Ford_Coppola"),
            ],
        ),
        PhraseEntry::new("develop", vec![sp("dbr:Mojang", "dbr:Minecraft")]),
        PhraseEntry::new(
            "be born in",
            vec![
                sp("dbr:Max_Reinhardt", "dbr:Vienna"),
                sp("dbr:Paul_Hoerbiger", "dbr:Budapest"),
                sp("dbr:Dick_Bruna", "dbr:Utrecht"),
            ],
        ),
        PhraseEntry::new(
            "die in",
            vec![sp("dbr:Max_Reinhardt", "dbr:Berlin"), sp("dbr:Paul_Hoerbiger", "dbr:Vienna")],
        ),
        PhraseEntry::new(
            "flow through",
            vec![sp("dbr:Weser", "dbr:Bremen"), sp("dbr:Weser", "dbr:Minden")],
        ),
        PhraseEntry::new(
            "be connected by",
            vec![
                sp("dbr:Germany", "dbr:Rhine"),
                sp("dbr:France", "dbr:Rhine"),
                sp("dbr:Switzerland", "dbr:Rhine"),
            ],
        ),
        PhraseEntry::new(
            "found",
            vec![sp("dbr:Gordon_Moore", "dbr:Intel"), sp("dbr:Robert_Noyce", "dbr:Intel")],
        ),
        PhraseEntry::new(
            "create",
            vec![
                sp("dbr:Joe_Simon", "dbr:Captain_America"),
                sp("dbr:Jack_Kirby", "dbr:Captain_America"),
                sp("dbr:Dick_Bruna", "dbr:Miffy"),
            ],
        ),
        PhraseEntry::new(
            "creator of",
            vec![sp("dbr:Joe_Simon", "dbr:Captain_America"), sp("dbr:Dick_Bruna", "dbr:Miffy")],
        ),
        PhraseEntry::new(
            // "come from" spans birthPlace·country — a length-2 path.
            "come from",
            vec![sp("dbr:Dick_Bruna", "dbr:Netherlands")],
        ),
        PhraseEntry::new(
            "child of",
            vec![
                sp("dbr:Mark_Thatcher", "dbr:Margaret_Thatcher"),
                sp("dbr:Carol_Thatcher", "dbr:Margaret_Thatcher"),
                sp("dbr:Caroline_Kennedy", "dbr:John_F._Kennedy"),
            ],
        ),
        PhraseEntry::new("produce", vec![sp("dbr:Suntory", "dbr:Orangina")]),
        PhraseEntry::new(
            "be published by",
            vec![
                sp("dbr:On_the_Road", "dbr:Viking_Press"),
                sp("dbr:The_Dharma_Bums", "dbr:Viking_Press"),
            ],
        ),
        PhraseEntry::new(
            "write",
            vec![
                sp("dbr:Jack_Kerouac", "dbr:On_the_Road"),
                sp("dbr:Jack_Kerouac", "dbr:Big_Sur_(novel)"),
            ],
        ),
        PhraseEntry::new(
            "largest city in",
            vec![sp("dbr:Sydney", "dbr:Australia"), sp("dbr:Berlin", "dbr:Germany")],
        ),
        PhraseEntry::new(
            // Keeps the →country pattern globally frequent so tf-idf ranks
            // it below the specific ←largestCity mapping above.
            "be located in",
            vec![
                sp("dbr:Munich", "dbr:Germany"),
                sp("dbr:Philadelphia", "dbr:United_States"),
                sp("dbr:Delft", "dbr:Netherlands"),
                sp("dbr:Utrecht", "dbr:Netherlands"),
                sp("dbr:Vienna", "dbr:Austria"),
            ],
        ),
        PhraseEntry::new("be buried in", vec![sp("dbr:Juliana_of_the_Netherlands", "dbr:Delft")]),
        // Noisy phrases: pairs related only through hub paths; they give the
        // idf denominator mass that pushes hasGender-style patterns down.
        PhraseEntry::new(
            "know",
            vec![
                sp("dbr:Ted_Kennedy", "dbr:Jim_Corr"),
                sp("dbr:Peter_Corr", "dbr:Robert_F._Kennedy"),
            ],
        ),
        PhraseEntry::new(
            "meet",
            vec![
                sp("dbr:Antonio_Banderas", "dbr:Jim_Corr"),
                sp("dbr:Ted_Kennedy", "dbr:Peter_Corr"),
            ],
        ),
        PhraseEntry::new(
            "be amused by",
            vec![
                sp("dbr:Caroline_Kennedy", "dbr:Sharon_Corr"),
                sp("dbr:Melanie_Griffith", "dbr:Caroline_Kennedy"),
            ],
        ),
    ];
    PhraseDataset::new(entries)
}

/// Curated phrase → literal-valued-predicate mappings, merged into the
/// dictionary *after* mining.
///
/// Path mining works over entity-entity pairs (as Patty's support sets do);
/// phrases whose object is a literal (heights, dates, names) cannot be
/// mined that way — the paper's system inherits such mappings from its
/// relation-phrase resources. We model them as curated entries with
/// confidence 1.0.
pub fn curated_literal_mappings() -> Vec<(&'static str, &'static str)> {
    vec![
        ("tall", "dbo:height"),
        ("height of", "dbo:height"),
        ("high", "dbo:elevation"),
        ("die", "dbo:deathDate"),
        ("birth name of", "dbo:birthName"),
        ("nickname of", "dbo:nickname"),
        ("be called", "dbo:alias"),
        ("time zone of", "dbo:timeZone"),
        ("population of", "dbo:population"),
    ]
}

/// Mine the full curated dictionary for the mini-DBpedia setup:
/// Algorithm 1 over [`mini_phrase_dataset`] plus the curated literal-valued
/// mappings (which entity-pair mining cannot produce).
pub fn mini_dict(store: &Store) -> gqa_paraphrase::ParaphraseDict {
    let mut dict = gqa_paraphrase::mine(
        store,
        &mini_phrase_dataset(),
        &gqa_paraphrase::MinerConfig::default(),
    );
    for (phrase, pred) in curated_literal_mappings() {
        if let Some(p) = store.iri(pred) {
            dict.insert(
                phrase.to_owned(),
                vec![gqa_paraphrase::ParaMapping {
                    path: PathPattern::single(p),
                    tfidf: 1.0,
                    confidence: 1.0,
                }],
            );
        }
    }
    dict
}

/// Configuration of the synthetic phrase-dataset generator.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticPhraseConfig {
    /// Number of relation phrases to generate.
    pub phrases: usize,
    /// Supporting pairs per phrase (the paper's Table 5 reports ~9–11).
    pub pairs_per_phrase: usize,
    /// Fraction of pairs replaced by unresolvable noise (paper: ~33 %).
    pub noise_fraction: f64,
    /// Maximum planted path length (1..=3).
    pub max_truth_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticPhraseConfig {
    fn default() -> Self {
        SyntheticPhraseConfig {
            phrases: 200,
            pairs_per_phrase: 10,
            noise_fraction: 0.33,
            max_truth_len: 3,
            seed: 7,
        }
    }
}

/// A synthetic dataset plus its generator-known ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticPhraseDataset {
    /// The phrase dataset (feed to the miner).
    pub dataset: PhraseDataset,
    /// Per phrase (by index): the planted true pattern.
    pub truth: Vec<PathPattern>,
}

/// Generate a synthetic phrase dataset over `store`: phrase *i* is planted
/// on a random predicate path of length 1..=`max_truth_len`, and its
/// support pairs are endpoints of concrete instances of that path.
pub fn synthetic_phrase_dataset(
    store: &Store,
    cfg: &SyntheticPhraseConfig,
) -> SyntheticPhraseDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let preds = store.predicates();
    assert!(!preds.is_empty(), "store has no predicates");
    let mut entries = Vec::with_capacity(cfg.phrases);
    let mut truth = Vec::with_capacity(cfg.phrases);

    let mut produced = 0usize;
    let mut attempts = 0usize;
    while produced < cfg.phrases && attempts < cfg.phrases * 20 {
        attempts += 1;
        let len = rng.gen_range(1..=cfg.max_truth_len);
        let pattern = PathPattern(
            (0..len)
                .map(|_| PathStep {
                    pred: preds[rng.gen_range(0..preds.len())],
                    dir: if rng.gen_bool(0.7) { Dir::Forward } else { Dir::Backward },
                })
                .collect(),
        );
        // Instantiate pairs.
        let pairs = instantiable_pairs(store, &pattern, cfg.pairs_per_phrase, &mut rng);
        if pairs.len() < 2 {
            continue; // pattern not realizable often enough
        }
        let mut support: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(a, b)| {
                (
                    store.term(a).as_iri().unwrap_or_default().to_owned(),
                    store.term(b).as_iri().unwrap_or_default().to_owned(),
                )
            })
            .collect();
        // Replace a fraction with unresolvable noise.
        let noise = ((support.len() as f64) * cfg.noise_fraction).round() as usize;
        for k in 0..noise.min(support.len().saturating_sub(2)) {
            support.push((
                format!("dbr:Noise_{produced}_{k}_a"),
                format!("dbr:Noise_{produced}_{k}_b"),
            ));
        }
        entries.push(PhraseEntry::new(format!("relate{produced} of"), support));
        truth.push(pattern);
        produced += 1;
    }

    SyntheticPhraseDataset { dataset: PhraseDataset::new(entries), truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minidbp::mini_dbpedia;
    use crate::scale::{scale_graph, ScaleConfig};

    #[test]
    fn curated_dataset_mostly_resolves() {
        let store = mini_dbpedia();
        let ds = mini_phrase_dataset();
        let frac = ds.resolvable_fraction(&store);
        assert!(
            frac > 0.6 && frac < 1.0,
            "resolvable fraction {frac} should mimic the paper's ~67%"
        );
        assert!(ds.len() >= 30);
    }

    #[test]
    fn curated_literal_mappings_reference_real_predicates() {
        let store = mini_dbpedia();
        for (_, pred) in curated_literal_mappings() {
            assert!(store.iri(pred).is_some(), "{pred} must exist in the mini graph");
        }
    }

    #[test]
    fn synthetic_dataset_has_planted_truth() {
        let store = scale_graph(&ScaleConfig {
            entities: 300,
            predicates: 12,
            classes: 5,
            avg_degree: 4.0,
            seed: 1,
        });
        let cfg = SyntheticPhraseConfig { phrases: 20, pairs_per_phrase: 6, ..Default::default() };
        let syn = synthetic_phrase_dataset(&store, &cfg);
        assert_eq!(syn.dataset.len(), syn.truth.len());
        assert!(
            syn.dataset.len() >= 10,
            "generator should realize most phrases, got {}",
            syn.dataset.len()
        );
        // Every support pair that resolves is a genuine endpoint pair of the
        // planted pattern.
        for (entry, pattern) in syn.dataset.entries.iter().zip(&syn.truth) {
            for (a, b) in entry.support.iter().take(2) {
                let (Some(va), Some(vb)) = (store.iri(a), store.iri(b)) else { continue };
                assert!(
                    gqa_rdf::paths::connects(&store, va, vb, pattern).is_some(),
                    "planted pair ({a},{b}) must realize {pattern:?}"
                );
            }
        }
    }

    #[test]
    fn synthetic_determinism() {
        let store = scale_graph(&ScaleConfig {
            entities: 200,
            predicates: 8,
            classes: 4,
            avg_degree: 3.0,
            seed: 2,
        });
        let cfg = SyntheticPhraseConfig { phrases: 10, ..Default::default() };
        let a = synthetic_phrase_dataset(&store, &cfg);
        let b = synthetic_phrase_dataset(&store, &cfg);
        assert_eq!(a.dataset, b.dataset);
    }
}
