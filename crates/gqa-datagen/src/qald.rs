//! The QALD-3-like benchmark: 99 natural-language questions with gold
//! answers over the mini graph, stratified into the paper's Table-10
//! failure categories.
//!
//! Question ids reuse the paper's Table-11 numbering where a question is a
//! direct counterpart (Q2, Q3, …, Q100); the remaining slots are filled
//! with questions of the same flavor. Category assignment mirrors Table 10:
//! questions whose *mention* has no alias in the graph (entity-linking
//! failures), whose *relation* has no mined paraphrase (relation-extraction
//! failures), aggregation questions, and misc "others".

use std::fmt;

/// The expected answer of a benchmark question.
#[derive(Clone, Debug, PartialEq)]
pub enum Gold {
    /// A set of resource IRIs.
    Resources(Vec<&'static str>),
    /// A set of literal lexical forms.
    Literals(Vec<&'static str>),
    /// A yes/no answer.
    Boolean(bool),
    /// A count.
    Count(usize),
    /// The information is not representable in the mini graph; every
    /// system fails by construction (mirrors paper questions whose answers
    /// lived outside the systems' reach).
    OutOfScope,
}

/// Failure-category stratification (paper Table 10).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Category {
    /// Expected to be answerable by the graph-driven pipeline.
    Normal,
    /// Needs aggregation (Max/Min/Count) — the paper's systems fail these.
    Aggregation,
    /// The mention cannot be linked (missing alias / missing entity).
    EntityLinkingHard,
    /// The relation phrase cannot be extracted or has no mined mapping.
    RelationExtractionHard,
    /// Misc: definitions, open commands, out-of-scope semantics.
    Other,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Normal => "normal",
            Category::Aggregation => "aggregation",
            Category::EntityLinkingHard => "entity-linking",
            Category::RelationExtractionHard => "relation-extraction",
            Category::Other => "other",
        };
        f.write_str(s)
    }
}

/// One benchmark question.
#[derive(Clone, Debug)]
pub struct BenchQuestion {
    /// Stable id (paper Table-11 numbering where applicable).
    pub id: u32,
    /// The natural-language question.
    pub text: &'static str,
    /// Gold answer.
    pub gold: Gold,
    /// Stratification category.
    pub category: Category,
}

fn q(id: u32, text: &'static str, gold: Gold, category: Category) -> BenchQuestion {
    BenchQuestion { id, text, gold, category }
}

/// The full 99-question benchmark.
pub fn benchmark() -> Vec<BenchQuestion> {
    use Category::*;
    use Gold::*;
    let mut qs = vec![
        // ---- Normal: the paper's Table-11 set -----------------------------
        q(
            1,
            "Who was married to an actor that played in Philadelphia?",
            Resources(vec!["dbr:Melanie_Griffith"]),
            Normal,
        ),
        q(
            2,
            "Who was the successor of John F. Kennedy?",
            Resources(vec!["dbr:Lyndon_B._Johnson"]),
            Normal,
        ),
        q(3, "Who is the mayor of Berlin?", Resources(vec!["dbr:Klaus_Wowereit"]), Normal),
        q(
            4,
            "Who is the uncle of John F. Kennedy, Jr.?",
            Resources(vec!["dbr:Ted_Kennedy", "dbr:Robert_F._Kennedy"]),
            Normal,
        ),
        q(
            8,
            "Which books were written by Jack Kerouac?",
            Resources(vec!["dbr:On_the_Road", "dbr:The_Dharma_Bums", "dbr:Big_Sur_(novel)"]),
            Normal,
        ),
        q(
            10,
            "Which players play for the Chicago Bulls?",
            Resources(vec!["dbr:Michael_Jordan"]),
            Normal,
        ),
        q(
            14,
            "Give me all members of Prodigy.",
            Resources(vec!["dbr:Keith_Flint", "dbr:Liam_Howlett", "dbr:Maxim_Reality"]),
            Normal,
        ),
        q(
            17,
            "Give me all cars that are produced in Germany.",
            Resources(vec!["dbr:Volkswagen_Golf", "dbr:BMW_3_Series"]),
            Normal,
        ),
        q(
            19,
            "Give me all people that were born in Vienna and died in Berlin.",
            Resources(vec!["dbr:Max_Reinhardt"]),
            Normal,
        ),
        q(20, "How tall is Michael Jordan?", Literals(vec!["1.98"]), Normal),
        q(21, "What is the capital of Canada?", Resources(vec!["dbr:Ottawa"]), Normal),
        q(22, "Who is the governor of Wyoming?", Resources(vec!["dbr:Matt_Mead"]), Normal),
        q(
            24,
            "Who was the father of Queen Elizabeth II?",
            Resources(vec!["dbr:George_VI"]),
            Normal,
        ),
        q(
            27,
            "Sean Parnell is the governor of which U.S. state?",
            Resources(vec!["dbr:Alaska"]),
            Normal,
        ),
        q(
            28,
            "Give me all movies directed by Francis Ford Coppola.",
            Resources(vec!["dbr:The_Godfather", "dbr:Apocalypse_Now"]),
            Normal,
        ),
        q(
            30,
            "What is the birth name of Angela Merkel?",
            Literals(vec!["Angela Dorothea Kasner"]),
            Normal,
        ),
        q(35, "Who developed Minecraft?", Resources(vec!["dbr:Mojang"]), Normal),
        q(
            39,
            "Give me all companies in Munich.",
            Resources(vec!["dbr:BMW", "dbr:Siemens", "dbr:Allianz"]),
            Normal,
        ),
        q(
            41,
            "Who founded Intel?",
            Resources(vec!["dbr:Gordon_Moore", "dbr:Robert_Noyce"]),
            Normal,
        ),
        q(42, "Who is the husband of Amanda Palmer?", Resources(vec!["dbr:Neil_Gaiman"]), Normal),
        q(
            44,
            "Which cities does the Weser flow through?",
            Resources(vec!["dbr:Bremen", "dbr:Minden"]),
            Normal,
        ),
        q(
            45,
            "Which countries are connected by the Rhine?",
            Resources(vec!["dbr:Germany", "dbr:France", "dbr:Switzerland", "dbr:Netherlands"]),
            Normal,
        ),
        q(
            54,
            "What are the nicknames of San Francisco?",
            Literals(vec!["The Golden City", "Fog City"]),
            Normal,
        ),
        q(
            58,
            "What is the time zone of Salt Lake City?",
            Resources(vec!["dbr:Mountain_Time_Zone"]),
            Normal,
        ),
        q(
            63,
            "Give me all Argentine films.",
            Resources(vec!["dbr:The_Secret_in_Their_Eyes", "dbr:Nine_Queens"]),
            Normal,
        ),
        q(70, "Is Michelle Obama the wife of Barack Obama?", Boolean(true), Normal),
        q(74, "When did Michael Jackson die?", Literals(vec!["2009-06-25"]), Normal),
        q(
            76,
            "List the children of Margaret Thatcher.",
            Resources(vec!["dbr:Mark_Thatcher", "dbr:Carol_Thatcher"]),
            Normal,
        ),
        q(77, "Who was called Scarface?", Resources(vec!["dbr:Al_Capone"]), Normal),
        q(
            81,
            "Which books by Kerouac were published by Viking Press?",
            Resources(vec!["dbr:On_the_Road", "dbr:The_Dharma_Bums"]),
            Normal,
        ),
        q(83, "How high is the Mount Everest?", Literals(vec!["8848"]), Normal),
        q(
            84,
            "Who created the comic Captain America?",
            Resources(vec!["dbr:Joe_Simon", "dbr:Jack_Kirby"]),
            Normal,
        ),
        q(86, "What is the largest city in Australia?", Resources(vec!["dbr:Sydney"]), Normal),
        q(
            89,
            "In which city was the former Dutch queen Juliana buried?",
            Resources(vec!["dbr:Delft"]),
            Normal,
        ),
        q(
            98,
            "Which country does the creator of Miffy come from?",
            Resources(vec!["dbr:Netherlands"]),
            Normal,
        ),
        q(100, "Who produces Orangina?", Resources(vec!["dbr:Suntory"]), Normal),
        // ---- Aggregation (paper: 35% of failures) -------------------------
        q(
            13,
            "Who is the youngest player in the Premier League?",
            Resources(vec!["dbr:Raheem_Sterling"]),
            Aggregation,
        ),
        q(101, "How many companies are in Munich?", Count(3), Aggregation),
        q(102, "How many countries are connected by the Rhine?", Count(4), Aggregation),
        q(103, "How many books did Jack Kerouac write?", Count(3), Aggregation),
        q(104, "How many films did Francis Ford Coppola direct?", Count(2), Aggregation),
        q(105, "How many members does the Prodigy have?", Count(3), Aggregation),
        q(
            106,
            "Which city in Germany has the largest population?",
            Resources(vec!["dbr:Berlin"]),
            Aggregation,
        ),
        q(
            107,
            "Who is the oldest player in the Premier League?",
            Resources(vec!["dbr:Frank_Lampard"]),
            Aggregation,
        ),
        q(108, "How many cities does the Weser flow through?", Count(2), Aggregation),
        q(109, "How many children does Margaret Thatcher have?", Count(2), Aggregation),
        q(
            110,
            "What is the most populous city in Australia?",
            Resources(vec!["dbr:Sydney"]),
            Aggregation,
        ),
        q(111, "How many Argentine films are there?", Count(2), Aggregation),
        q(112, "How many launch pads are operated by NASA?", Count(1), Aggregation),
        q(113, "How many cars are produced in Germany?", Count(2), Aggregation),
        q(
            114,
            "Which Australian city has the smallest population?",
            Resources(vec!["dbr:Melbourne"]),
            Aggregation,
        ),
        q(115, "How many founders does Intel have?", Count(2), Aggregation),
        q(116, "How many creators does Captain America have?", Count(2), Aggregation),
        q(
            117,
            "Who was born first, Wayne Rooney or Frank Lampard?",
            Resources(vec!["dbr:Frank_Lampard"]),
            Aggregation,
        ),
        q(118, "How many people were born in Vienna?", Count(1), Aggregation),
        q(119, "How many nicknames does San Francisco have?", Count(2), Aggregation),
        q(
            120,
            "Which Premier League player was born last?",
            Resources(vec!["dbr:Raheem_Sterling"]),
            Aggregation,
        ),
        q(121, "How many twin cities does Brno have?", Count(2), Aggregation),
        // ---- Entity-linking-hard (27% of failures) ------------------------
        q(
            48,
            "In which UK city are the headquarters of the MI6?",
            Resources(vec!["dbr:London"]),
            EntityLinkingHard,
        ),
        q(130, "Who is the mayor of the Big Apple?", OutOfScope, EntityLinkingHard),
        q(
            131,
            "What is the capital of Deutschland?",
            Resources(vec!["dbr:Berlin"]),
            EntityLinkingHard,
        ),
        q(132, "Who wrote Les Miserables?", OutOfScope, EntityLinkingHard),
        q(133, "Who developed Half-Life?", OutOfScope, EntityLinkingHard),
        q(134, "How tall is MJ?", Literals(vec!["1.98"]), EntityLinkingHard),
        q(135, "Where is Silicon Valley?", OutOfScope, EntityLinkingHard),
        q(136, "Who is the CEO of Apple?", OutOfScope, EntityLinkingHard),
        q(137, "Which movies star Tom Cruise?", OutOfScope, EntityLinkingHard),
        q(138, "Who was the president of the USSR?", OutOfScope, EntityLinkingHard),
        q(139, "What is the population of NYC?", OutOfScope, EntityLinkingHard),
        q(140, "Who created Snoopy?", OutOfScope, EntityLinkingHard),
        q(141, "Which rivers flow through Paris?", OutOfScope, EntityLinkingHard),
        q(142, "Who is the queen of England?", OutOfScope, EntityLinkingHard),
        q(143, "What is the time zone of PDX?", Resources(vec![]), EntityLinkingHard),
        q(144, "Who produces Coca-Cola?", OutOfScope, EntityLinkingHard),
        q(145, "Who founded Wal-Mart?", OutOfScope, EntityLinkingHard),
        // ---- Relation-extraction-hard (22% of failures) -------------------
        q(
            64,
            "Give me all launch pads operated by NASA.",
            Resources(vec!["dbr:Kennedy_Space_Center_LC-39A"]),
            RelationExtractionHard,
        ),
        q(
            150,
            "Which river does the Fulda flow into?",
            Resources(vec!["dbr:Weser"]),
            RelationExtractionHard,
        ),
        q(151, "Which astronauts walked on the Moon?", OutOfScope, RelationExtractionHard),
        q(152, "Which countries border Germany?", OutOfScope, RelationExtractionHard),
        q(153, "What did Bruce Carver die from?", OutOfScope, RelationExtractionHard),
        q(
            154,
            "Which software has been developed by organizations founded in California?",
            OutOfScope,
            RelationExtractionHard,
        ),
        q(155, "Give me all people that know each other.", OutOfScope, RelationExtractionHard),
        q(
            156,
            "Which companies work in the aerospace industry?",
            OutOfScope,
            RelationExtractionHard,
        ),
        q(157, "Who owns Aldi?", OutOfScope, RelationExtractionHard),
        q(
            158,
            "Which telecommunications organizations are located in Belgium?",
            OutOfScope,
            RelationExtractionHard,
        ),
        q(159, "Give me all school types.", OutOfScope, RelationExtractionHard),
        q(160, "Which organizations were founded in 1950?", OutOfScope, RelationExtractionHard),
        q(161, "Who was influenced by Socrates?", OutOfScope, RelationExtractionHard),
        q(162, "What sports do Premier League players play?", OutOfScope, RelationExtractionHard),
        // ---- Other (16% of failures) --------------------------------------
        q(
            37,
            "Give me all sister cities of Brno.",
            Resources(vec!["dbr:Leipzig", "dbr:Vienna"]),
            Other,
        ),
        q(170, "What is a battle?", OutOfScope, Other),
        q(171, "Show me everything about Australia.", OutOfScope, Other),
        q(172, "What does ICRO stand for?", OutOfScope, Other),
        q(173, "When will humans land on Mars?", OutOfScope, Other),
        q(174, "Give me a list of all trumpet players that were bandleaders.", OutOfScope, Other),
        q(175, "Are there any castles in the United States?", OutOfScope, Other),
        q(176, "Which books are similar to On the Road?", OutOfScope, Other),
        q(177, "Give me all Frisian islands that belong to the Netherlands.", OutOfScope, Other),
        q(178, "What is the meaning of life?", OutOfScope, Other),
    ];
    qs.sort_by_key(|x| x.id);
    qs
}

/// Only the questions of one category.
pub fn by_category(cat: Category) -> Vec<BenchQuestion> {
    benchmark().into_iter().filter(|q| q.category == cat).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minidbp::mini_dbpedia;

    #[test]
    fn exactly_99_questions_with_unique_ids() {
        let b = benchmark();
        assert_eq!(b.len(), 99, "QALD-3 test set has 99 questions");
        let mut ids: Vec<_> = b.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 99);
    }

    #[test]
    fn category_distribution_mirrors_table_10() {
        let b = benchmark();
        let count = |c: Category| b.iter().filter(|q| q.category == c).count();
        assert_eq!(count(Category::Normal), 36);
        assert_eq!(count(Category::Aggregation), 22, "paper: 22 aggregation failures");
        assert_eq!(count(Category::EntityLinkingHard), 17, "paper: 17 entity-linking failures");
        assert_eq!(
            count(Category::RelationExtractionHard),
            14,
            "paper: 14 relation-extraction failures"
        );
        assert_eq!(count(Category::Other), 4 + 6, "paper: 10 'others'");
    }

    #[test]
    fn in_scope_gold_resources_exist_in_the_graph() {
        let store = mini_dbpedia();
        for q in benchmark() {
            if let Gold::Resources(rs) = &q.gold {
                for r in rs {
                    assert!(
                        store.iri(r).is_some(),
                        "Q{}: gold {r} missing from the mini graph",
                        q.id
                    );
                }
            }
        }
    }

    #[test]
    fn gold_literals_exist_in_the_graph() {
        let store = mini_dbpedia();
        for q in benchmark() {
            if let Gold::Literals(ls) = &q.gold {
                for l in ls {
                    let found = store.dict().iter().any(|(_, t)| t.as_literal() == Some(l));
                    assert!(found, "Q{}: gold literal {l:?} missing from the mini graph", q.id);
                }
            }
        }
    }

    #[test]
    fn by_category_filters() {
        assert!(by_category(Category::Aggregation)
            .iter()
            .all(|q| q.category == Category::Aggregation));
    }
}
