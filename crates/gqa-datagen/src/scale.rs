//! Parametric random RDF graph generator for scaling experiments.
//!
//! Produces typed entities and edges whose predicate usage follows a
//! Zipf-like distribution (a few hub predicates like `rdf:type` and
//! `hasGender` dominate real knowledge graphs). Deterministic per seed.

use gqa_rdf::paths::{Dir, PathPattern};
use gqa_rdf::{Store, StoreBuilder, TermId, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Number of entity vertices.
    pub entities: usize,
    /// Number of distinct (non-`rdf:type`) predicates.
    pub predicates: usize,
    /// Number of classes.
    pub classes: usize,
    /// Average out-degree per entity (excluding the typing edge).
    pub avg_degree: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig { entities: 10_000, predicates: 50, classes: 20, avg_degree: 6.0, seed: 42 }
    }
}

/// Generate a random store.
///
/// Streams at 10M+ triple scale: every IRI is interned exactly once up
/// front, each edge is then a 12-byte [`gqa_rdf::Triple`] pushed into the
/// builder — no per-edge string formatting or hashing, and no intermediate
/// collection beyond the builder's own triple vector.
pub fn scale_graph(cfg: &ScaleConfig) -> Store {
    assert!(cfg.entities >= 2 && cfg.predicates >= 1 && cfg.classes >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = StoreBuilder::new();

    // Pre-intern every name once; edges below are id-only.
    let d = b.dict_mut();
    let entity_ids: Vec<TermId> =
        (0..cfg.entities).map(|i| d.intern_iri(&format!("e:E{i}"))).collect();
    let pred_ids: Vec<TermId> =
        (0..cfg.predicates).map(|i| d.intern_iri(&format!("p:P{i}"))).collect();
    let class_ids: Vec<TermId> =
        (0..cfg.classes).map(|i| d.intern_iri(&format!("c:C{i}"))).collect();
    let rdf_type = d.intern_iri("rdf:type");

    let edges = (cfg.entities as f64 * cfg.avg_degree) as usize;
    b.reserve(cfg.entities + edges);

    // Typing edges.
    for &e in &entity_ids {
        let c = rng.gen_range(0..cfg.classes);
        b.add_encoded(Triple::new(e, rdf_type, class_ids[c]));
    }

    // Zipf-ish predicate sampling: predicate k has weight 1/(k+1). A
    // cumulative-weight table binary-searched per draw replaces the old
    // O(predicates) subtraction scan — same distribution, O(log P) per edge.
    let mut cum = Vec::with_capacity(cfg.predicates);
    let mut running = 0.0f64;
    for k in 0..cfg.predicates {
        running += 1.0 / (k as f64 + 1.0);
        cum.push(running);
    }
    let total_w = running;
    let sample_pred = |rng: &mut StdRng| -> usize {
        let x = rng.gen::<f64>() * total_w;
        cum.partition_point(|&c| c <= x).min(cfg.predicates - 1)
    };

    for _ in 0..edges {
        let s = rng.gen_range(0..cfg.entities);
        let mut o = rng.gen_range(0..cfg.entities);
        if o == s {
            o = (o + 1) % cfg.entities;
        }
        let p = sample_pred(&mut rng);
        b.add_encoded(Triple::new(entity_ids[s], pred_ids[p], entity_ids[o]));
    }

    b.build()
}

/// Sample up to `want` concrete endpoint pairs realizing `pattern` in
/// `store`, starting from random vertices. Used by the synthetic
/// phrase-dataset generator.
pub fn instantiable_pairs(
    store: &Store,
    pattern: &PathPattern,
    want: usize,
    rng: &mut StdRng,
) -> Vec<(TermId, TermId)> {
    let vertices = store.vertices();
    let mut out: Vec<(TermId, TermId)> = Vec::new();
    let mut attempts = 0usize;
    while out.len() < want && attempts < want * 50 && !vertices.is_empty() {
        attempts += 1;
        let start = vertices[rng.gen_range(0..vertices.len())];
        if !store.term(start).is_iri() {
            continue;
        }
        let inst = gqa_rdf::paths::instantiate_from(store, start, pattern, 4);
        if let Some(p) = inst.first() {
            let end = *p.vertices.last().expect("nonempty");
            if !out.contains(&(start, end)) {
                out.push((start, end));
            }
        }
    }
    out
}

/// One forward step helper for tests.
pub fn forward(pred: TermId) -> PathPattern {
    PathPattern(Box::new([gqa_rdf::PathStep { pred, dir: Dir::Forward }]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::stats::StoreStats;

    #[test]
    fn generates_requested_scale() {
        let cfg =
            ScaleConfig { entities: 500, predicates: 10, classes: 5, avg_degree: 4.0, seed: 3 };
        let s = scale_graph(&cfg);
        let st = StoreStats::collect(&s);
        assert!(st.entities >= 490 && st.entities <= 500, "{st:?}");
        // type edges + random edges (some dups removed)
        assert!(st.triples > 2000, "{st:?}");
        assert!(st.predicates <= 11);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg =
            ScaleConfig { entities: 100, predicates: 5, classes: 3, avg_degree: 3.0, seed: 9 };
        let a = gqa_rdf::ntriples::serialize(&scale_graph(&cfg));
        let b = gqa_rdf::ntriples::serialize(&scale_graph(&cfg));
        assert_eq!(a, b);
        let c = gqa_rdf::ntriples::serialize(&scale_graph(&ScaleConfig { seed: 10, ..cfg }));
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_predicates_are_skewed() {
        let cfg =
            ScaleConfig { entities: 2000, predicates: 20, classes: 5, avg_degree: 5.0, seed: 4 };
        let s = scale_graph(&cfg);
        let p0 = s.iri("p:P0").map(|p| s.with_predicate(p).count()).unwrap_or(0);
        let p19 = s.iri("p:P19").map(|p| s.with_predicate(p).count()).unwrap_or(0);
        assert!(p0 > p19 * 3, "P0 ({p0}) should dwarf P19 ({p19})");
    }

    #[test]
    fn instantiable_pairs_realize_the_pattern() {
        let cfg =
            ScaleConfig { entities: 300, predicates: 6, classes: 3, avg_degree: 4.0, seed: 5 };
        let s = scale_graph(&cfg);
        let p0 = s.expect_iri("p:P0");
        let pat = forward(p0);
        let mut rng = StdRng::seed_from_u64(0);
        let pairs = instantiable_pairs(&s, &pat, 5, &mut rng);
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            assert!(gqa_rdf::paths::connects(&s, a, b, &pat).is_some());
        }
    }
}
