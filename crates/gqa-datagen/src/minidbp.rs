//! The curated mini-DBpedia knowledge graph.
//!
//! Deterministic, hand-authored facts covering:
//!
//! * the paper's running example (Figure 1) with its three-way
//!   "Philadelphia" ambiguity and the class-vs-entity "actor" ambiguity;
//! * every entity/predicate needed by the Table-11 questions;
//! * the Figure-4 "uncle of" predicate-path family (Kennedy clan) plus the
//!   `hasGender` noise hub tf-idf must suppress;
//! * deliberately *missing* aliases (MI6) and aggregation-only facts, so
//!   the Table-10 failure categories reproduce.

use gqa_rdf::{Store, StoreBuilder, Term};

/// IRI-object facts `(subject, predicate, object)`.
const FACTS: &[(&str, &str, &str)] = &[
    // ---- running example (Figure 1) -----------------------------------
    ("dbr:Melanie_Griffith", "dbo:spouse", "dbr:Antonio_Banderas"),
    ("dbr:Antonio_Banderas", "rdf:type", "dbo:Actor"),
    ("dbr:Melanie_Griffith", "rdf:type", "dbo:Actor"),
    ("dbr:Philadelphia_(film)", "rdf:type", "dbo:Film"),
    ("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Antonio_Banderas"),
    ("dbr:Philadelphia_(film)", "dbo:starring", "dbr:Tom_Hanks"),
    ("dbr:Philadelphia_(film)", "dbo:director", "dbr:Jonathan_Demme"),
    ("dbr:Tom_Hanks", "rdf:type", "dbo:Actor"),
    ("dbr:Jonathan_Demme", "rdf:type", "dbo:Person"),
    ("dbr:Philadelphia", "rdf:type", "dbo:City"),
    ("dbr:Philadelphia", "dbo:country", "dbr:United_States"),
    ("dbr:Philadelphia_76ers", "rdf:type", "dbo:BasketballTeam"),
    ("dbr:Allen_Iverson", "dbo:playForTeam", "dbr:Philadelphia_76ers"),
    ("dbr:Allen_Iverson", "rdf:type", "dbo:BasketballPlayer"),
    ("dbr:An_Actor_Prepares", "rdf:type", "dbo:Book"),
    ("dbr:An_Actor_Prepares", "dbo:author", "dbr:Konstantin_Stanislavski"),
    // class hierarchy
    ("dbo:Actor", "rdfs:subClassOf", "dbo:Person"),
    ("dbo:BasketballPlayer", "rdfs:subClassOf", "dbo:Athlete"),
    ("dbo:Athlete", "rdfs:subClassOf", "dbo:Person"),
    ("dbo:SoccerPlayer", "rdfs:subClassOf", "dbo:Athlete"),
    ("dbo:City", "rdfs:subClassOf", "dbo:Place"),
    ("dbo:Country", "rdfs:subClassOf", "dbo:Place"),
    ("dbo:Film", "rdfs:subClassOf", "dbo:Work"),
    ("dbo:Book", "rdfs:subClassOf", "dbo:Work"),
    ("dbo:Comic", "rdfs:subClassOf", "dbo:Work"),
    ("dbo:Band", "rdfs:subClassOf", "dbo:Organisation"),
    ("dbo:Company", "rdfs:subClassOf", "dbo:Organisation"),
    // ---- Kennedy clan: "uncle of" needs a length-3 path (Figure 4) ----
    ("dbr:Joseph_P._Kennedy_Sr.", "dbo:hasChild", "dbr:Ted_Kennedy"),
    ("dbr:Joseph_P._Kennedy_Sr.", "dbo:hasChild", "dbr:John_F._Kennedy"),
    ("dbr:Joseph_P._Kennedy_Sr.", "dbo:hasChild", "dbr:Robert_F._Kennedy"),
    ("dbr:John_F._Kennedy", "dbo:hasChild", "dbr:John_F._Kennedy,_Jr."),
    ("dbr:John_F._Kennedy", "dbo:hasChild", "dbr:Caroline_Kennedy"),
    ("dbr:John_F._Kennedy", "dbo:successor", "dbr:Lyndon_B._Johnson"),
    ("dbr:John_F._Kennedy", "rdf:type", "dbo:Person"),
    ("dbr:Ted_Kennedy", "rdf:type", "dbo:Person"),
    ("dbr:Lyndon_B._Johnson", "rdf:type", "dbo:Person"),
    ("dbr:Peter_Corr", "dbo:hasChild", "dbr:Sharon_Corr"),
    ("dbr:Gerry_Corr", "dbo:hasChild", "dbr:Peter_Corr"),
    ("dbr:Gerry_Corr", "dbo:hasChild", "dbr:Brigid_Corr"),
    ("dbr:Brigid_Corr", "dbo:hasChild", "dbr:Jim_Corr"),
    // gender noise hub
    ("dbr:Ted_Kennedy", "dbo:hasGender", "dbr:Male"),
    ("dbr:John_F._Kennedy", "dbo:hasGender", "dbr:Male"),
    ("dbr:John_F._Kennedy,_Jr.", "dbo:hasGender", "dbr:Male"),
    ("dbr:Robert_F._Kennedy", "dbo:hasGender", "dbr:Male"),
    ("dbr:Joseph_P._Kennedy_Sr.", "dbo:hasGender", "dbr:Male"),
    ("dbr:Peter_Corr", "dbo:hasGender", "dbr:Male"),
    ("dbr:Jim_Corr", "dbo:hasGender", "dbr:Male"),
    ("dbr:Gerry_Corr", "dbo:hasGender", "dbr:Male"),
    ("dbr:Caroline_Kennedy", "dbo:hasGender", "dbr:Female"),
    ("dbr:Sharon_Corr", "dbo:hasGender", "dbr:Female"),
    ("dbr:Melanie_Griffith", "dbo:hasGender", "dbr:Female"),
    ("dbr:Antonio_Banderas", "dbo:hasGender", "dbr:Male"),
    // ---- geography ------------------------------------------------------
    ("dbr:Berlin", "rdf:type", "dbo:City"),
    ("dbr:Berlin", "dbo:leaderName", "dbr:Klaus_Wowereit"),
    ("dbr:Berlin", "dbo:country", "dbr:Germany"),
    ("dbr:Germany", "rdf:type", "dbo:Country"),
    ("dbr:Germany", "dbo:capital", "dbr:Berlin"),
    ("dbr:Germany", "dbo:largestCity", "dbr:Berlin"),
    ("dbr:Klaus_Wowereit", "rdf:type", "dbo:Person"),
    ("dbr:Canada", "rdf:type", "dbo:Country"),
    ("dbr:Canada", "dbo:capital", "dbr:Ottawa"),
    ("dbr:Ottawa", "rdf:type", "dbo:City"),
    ("dbr:Ottawa", "dbo:country", "dbr:Canada"),
    ("dbr:Vienna", "rdf:type", "dbo:City"),
    ("dbr:Vienna", "dbo:country", "dbr:Austria"),
    ("dbr:Austria", "rdf:type", "dbo:Country"),
    ("dbr:United_States", "rdf:type", "dbo:Country"),
    ("dbr:Australia", "rdf:type", "dbo:Country"),
    ("dbr:Australia", "dbo:largestCity", "dbr:Sydney"),
    ("dbr:Sydney", "rdf:type", "dbo:City"),
    ("dbr:Sydney", "dbo:country", "dbr:Australia"),
    ("dbr:Melbourne", "rdf:type", "dbo:City"),
    ("dbr:Melbourne", "dbo:country", "dbr:Australia"),
    ("dbr:Wyoming", "rdf:type", "dbo:AdministrativeRegion"),
    ("dbr:Wyoming", "dbo:governor", "dbr:Matt_Mead"),
    ("dbr:Matt_Mead", "rdf:type", "dbo:Person"),
    ("dbr:Alaska", "rdf:type", "dbo:AdministrativeRegion"),
    ("dbr:Alaska", "dbo:governor", "dbr:Sean_Parnell"),
    ("dbr:Sean_Parnell", "rdf:type", "dbo:Person"),
    ("dbo:AdministrativeRegion", "rdfs:subClassOf", "dbo:Place"),
    ("dbr:Salt_Lake_City", "rdf:type", "dbo:City"),
    ("dbr:Salt_Lake_City", "dbo:timeZone", "dbr:Mountain_Time_Zone"),
    ("dbr:San_Francisco", "rdf:type", "dbo:City"),
    ("dbr:San_Francisco", "dbo:country", "dbr:United_States"),
    ("dbr:Delft", "rdf:type", "dbo:City"),
    ("dbr:Delft", "dbo:country", "dbr:Netherlands"),
    ("dbr:Netherlands", "rdf:type", "dbo:Country"),
    ("dbr:Brno", "rdf:type", "dbo:City"),
    // rivers
    ("dbr:Weser", "rdf:type", "dbo:River"),
    ("dbr:Weser", "dbo:city", "dbr:Bremen"),
    ("dbr:Weser", "dbo:city", "dbr:Minden"),
    ("dbr:Bremen", "rdf:type", "dbo:City"),
    ("dbr:Minden", "rdf:type", "dbo:City"),
    ("dbr:Rhine", "rdf:type", "dbo:River"),
    ("dbr:Rhine", "dbo:country", "dbr:Germany"),
    ("dbr:Rhine", "dbo:country", "dbr:France"),
    ("dbr:Rhine", "dbo:country", "dbr:Switzerland"),
    ("dbr:Rhine", "dbo:country", "dbr:Netherlands"),
    ("dbr:France", "rdf:type", "dbo:Country"),
    ("dbr:Switzerland", "rdf:type", "dbo:Country"),
    ("dbr:Fulda_(river)", "dbo:inflow", "dbr:Weser"),
    ("dbo:River", "rdfs:subClassOf", "dbo:Place"),
    ("dbr:Mount_Everest", "rdf:type", "dbo:Mountain"),
    ("dbo:Mountain", "rdfs:subClassOf", "dbo:Place"),
    // ---- politics & royalty --------------------------------------------
    ("dbr:Queen_Elizabeth_II", "dbo:father", "dbr:George_VI"),
    ("dbr:George_VI", "dbo:successor", "dbr:Queen_Elizabeth_II"),
    ("dbr:Queen_Elizabeth_II", "rdf:type", "dbo:Royalty"),
    ("dbr:George_VI", "rdf:type", "dbo:Royalty"),
    ("dbo:Royalty", "rdfs:subClassOf", "dbo:Person"),
    ("dbr:Juliana_of_the_Netherlands", "rdf:type", "dbo:Royalty"),
    ("dbr:Juliana_of_the_Netherlands", "dbo:restingPlace", "dbr:Delft"),
    ("dbr:Juliana_of_the_Netherlands", "dbo:country", "dbr:Netherlands"),
    ("dbr:Margaret_Thatcher", "dbo:hasChild", "dbr:Mark_Thatcher"),
    ("dbr:Margaret_Thatcher", "dbo:hasChild", "dbr:Carol_Thatcher"),
    ("dbr:Margaret_Thatcher", "rdf:type", "dbo:Person"),
    ("dbr:Mark_Thatcher", "rdf:type", "dbo:Person"),
    ("dbr:Carol_Thatcher", "rdf:type", "dbo:Person"),
    ("dbr:Barack_Obama", "dbo:spouse", "dbr:Michelle_Obama"),
    ("dbr:Barack_Obama", "rdf:type", "dbo:Person"),
    ("dbr:Michelle_Obama", "rdf:type", "dbo:Person"),
    // ---- music, media, companies ---------------------------------------
    ("dbr:The_Prodigy", "rdf:type", "dbo:Band"),
    ("dbr:The_Prodigy", "dbo:bandMember", "dbr:Keith_Flint"),
    ("dbr:The_Prodigy", "dbo:bandMember", "dbr:Liam_Howlett"),
    ("dbr:The_Prodigy", "dbo:bandMember", "dbr:Maxim_Reality"),
    ("dbr:Keith_Flint", "rdf:type", "dbo:Person"),
    ("dbr:Liam_Howlett", "rdf:type", "dbo:Person"),
    ("dbr:Maxim_Reality", "rdf:type", "dbo:Person"),
    ("dbr:Amanda_Palmer", "dbo:spouse", "dbr:Neil_Gaiman"),
    ("dbr:Amanda_Palmer", "rdf:type", "dbo:Person"),
    ("dbr:Neil_Gaiman", "rdf:type", "dbo:Person"),
    ("dbr:The_Godfather", "rdf:type", "dbo:Film"),
    ("dbr:The_Godfather", "dbo:director", "dbr:Francis_Ford_Coppola"),
    ("dbr:Apocalypse_Now", "rdf:type", "dbo:Film"),
    ("dbr:Apocalypse_Now", "dbo:director", "dbr:Francis_Ford_Coppola"),
    ("dbr:Francis_Ford_Coppola", "rdf:type", "dbo:Person"),
    ("dbr:Minecraft", "rdf:type", "dbo:VideoGame"),
    ("dbr:Minecraft", "dbo:developer", "dbr:Mojang"),
    ("dbr:Mojang", "rdf:type", "dbo:Company"),
    ("dbr:Intel", "rdf:type", "dbo:Company"),
    ("dbr:Intel", "dbo:foundedBy", "dbr:Gordon_Moore"),
    ("dbr:Intel", "dbo:foundedBy", "dbr:Robert_Noyce"),
    ("dbr:Gordon_Moore", "rdf:type", "dbo:Person"),
    ("dbr:Robert_Noyce", "rdf:type", "dbo:Person"),
    ("dbr:BMW", "rdf:type", "dbo:Company"),
    ("dbr:BMW", "dbo:locationCity", "dbr:Munich"),
    ("dbr:Siemens", "rdf:type", "dbo:Company"),
    ("dbr:Siemens", "dbo:locationCity", "dbr:Munich"),
    ("dbr:Allianz", "rdf:type", "dbo:Company"),
    ("dbr:Allianz", "dbo:locationCity", "dbr:Munich"),
    ("dbr:Munich", "rdf:type", "dbo:City"),
    ("dbr:Munich", "dbo:country", "dbr:Germany"),
    ("dbr:Orangina", "rdf:type", "dbo:Beverage"),
    ("dbr:Orangina", "dbo:manufacturer", "dbr:Suntory"),
    ("dbr:Suntory", "rdf:type", "dbo:Company"),
    // cars
    ("dbr:Volkswagen_Golf", "rdf:type", "dbo:Automobile"),
    ("dbr:Volkswagen_Golf", "dbo:assembly", "dbr:Germany"),
    ("dbr:BMW_3_Series", "rdf:type", "dbo:Automobile"),
    ("dbr:BMW_3_Series", "dbo:assembly", "dbr:Germany"),
    ("dbr:Ford_Focus", "rdf:type", "dbo:Automobile"),
    ("dbr:Ford_Focus", "dbo:assembly", "dbr:United_States"),
    // books
    ("dbr:On_the_Road", "rdf:type", "dbo:Book"),
    ("dbr:On_the_Road", "dbo:author", "dbr:Jack_Kerouac"),
    ("dbr:On_the_Road", "dbo:publisher", "dbr:Viking_Press"),
    ("dbr:The_Dharma_Bums", "rdf:type", "dbo:Book"),
    ("dbr:The_Dharma_Bums", "dbo:author", "dbr:Jack_Kerouac"),
    ("dbr:The_Dharma_Bums", "dbo:publisher", "dbr:Viking_Press"),
    ("dbr:Big_Sur_(novel)", "rdf:type", "dbo:Book"),
    ("dbr:Big_Sur_(novel)", "dbo:author", "dbr:Jack_Kerouac"),
    ("dbr:Big_Sur_(novel)", "dbo:publisher", "dbr:Farrar_Straus_Giroux"),
    ("dbr:Jack_Kerouac", "rdf:type", "dbo:Person"),
    // comics
    ("dbr:Captain_America", "rdf:type", "dbo:Comic"),
    ("dbr:Captain_America", "dbo:creator", "dbr:Joe_Simon"),
    ("dbr:Captain_America", "dbo:creator", "dbr:Jack_Kirby"),
    ("dbr:Joe_Simon", "rdf:type", "dbo:Person"),
    ("dbr:Jack_Kirby", "rdf:type", "dbo:Person"),
    ("dbr:Miffy", "rdf:type", "dbo:Comic"),
    ("dbr:Miffy", "dbo:creator", "dbr:Dick_Bruna"),
    ("dbr:Dick_Bruna", "rdf:type", "dbo:Person"),
    ("dbr:Dick_Bruna", "dbo:birthPlace", "dbr:Utrecht"),
    ("dbr:Utrecht", "rdf:type", "dbo:City"),
    ("dbr:Utrecht", "dbo:country", "dbr:Netherlands"),
    // Argentine films
    ("dbr:The_Secret_in_Their_Eyes", "rdf:type", "dbo:Film"),
    ("dbr:The_Secret_in_Their_Eyes", "dbo:country", "dbr:Argentina"),
    ("dbr:Nine_Queens", "rdf:type", "dbo:Film"),
    ("dbr:Nine_Queens", "dbo:country", "dbr:Argentina"),
    ("dbr:Argentina", "rdf:type", "dbo:Country"),
    // people born in Vienna who died in Berlin (Q19)
    ("dbr:Max_Reinhardt", "rdf:type", "dbo:Person"),
    ("dbr:Max_Reinhardt", "dbo:birthPlace", "dbr:Vienna"),
    ("dbr:Max_Reinhardt", "dbo:deathPlace", "dbr:Berlin"),
    ("dbr:Paul_Hoerbiger", "rdf:type", "dbo:Person"),
    ("dbr:Paul_Hoerbiger", "dbo:birthPlace", "dbr:Budapest"),
    ("dbr:Paul_Hoerbiger", "dbo:deathPlace", "dbr:Vienna"),
    ("dbr:Budapest", "rdf:type", "dbo:City"),
    // Michael Jackson / Jordan
    ("dbr:Michael_Jackson", "rdf:type", "dbo:Person"),
    ("dbr:Michael_Jordan", "rdf:type", "dbo:BasketballPlayer"),
    ("dbr:Michael_Jordan", "dbo:playForTeam", "dbr:Chicago_Bulls"),
    ("dbr:Chicago_Bulls", "rdf:type", "dbo:BasketballTeam"),
    // Al Capone / Scarface (nickname is a literal; see LITERAL_FACTS)
    ("dbr:Al_Capone", "rdf:type", "dbo:Person"),
    // Angela Merkel
    ("dbr:Angela_Merkel", "rdf:type", "dbo:Person"),
    // MI6: present but WITHOUT the "MI6" alias → entity-linking failure
    // class, mirroring the paper's Q48 failure.
    ("dbr:Secret_Intelligence_Service", "rdf:type", "dbo:GovernmentAgency"),
    ("dbr:Secret_Intelligence_Service", "dbo:headquarter", "dbr:London"),
    ("dbr:London", "rdf:type", "dbo:City"),
    // NASA launch pads (Q64, relation-extraction failure class).
    ("dbr:Kennedy_Space_Center_LC-39A", "rdf:type", "dbo:LaunchPad"),
    ("dbr:Kennedy_Space_Center_LC-39A", "dbo:operator", "dbr:NASA"),
    ("dbr:Cape_Canaveral_SLC-40", "rdf:type", "dbo:LaunchPad"),
    ("dbr:Cape_Canaveral_SLC-40", "dbo:operator", "dbr:SpaceX"),
    ("dbr:NASA", "rdf:type", "dbo:GovernmentAgency"),
    ("dbr:SpaceX", "rdf:type", "dbo:Company"),
    // Premier League players (Q13, aggregation class).
    ("dbr:Wayne_Rooney", "rdf:type", "dbo:SoccerPlayer"),
    ("dbr:Wayne_Rooney", "dbo:league", "dbr:Premier_League"),
    ("dbr:Raheem_Sterling", "rdf:type", "dbo:SoccerPlayer"),
    ("dbr:Raheem_Sterling", "dbo:league", "dbr:Premier_League"),
    ("dbr:Frank_Lampard", "rdf:type", "dbo:SoccerPlayer"),
    ("dbr:Frank_Lampard", "dbo:league", "dbr:Premier_League"),
    ("dbr:Premier_League", "rdf:type", "dbo:SportsLeague"),
    // Brno sister cities (Q37, "other" failure class: predicate exists but
    // no paraphrase mapping is mined for "sister cities").
    ("dbr:Brno", "dbo:twinCity", "dbr:Leipzig"),
    ("dbr:Brno", "dbo:twinCity", "dbr:Vienna"),
    ("dbr:Leipzig", "rdf:type", "dbo:City"),
];

/// Literal-object facts `(subject, predicate, literal)`.
fn literal_facts(b: &mut StoreBuilder) {
    let lits: &[(&str, &str, Term)] = &[
        ("dbr:Michael_Jordan", "dbo:height", Term::dec_lit(1.98)),
        ("dbr:Mount_Everest", "dbo:elevation", Term::dec_lit(8848.0)),
        ("dbr:Angela_Merkel", "dbo:birthName", Term::lit("Angela Dorothea Kasner")),
        ("dbr:Michael_Jackson", "dbo:deathDate", Term::typed_lit("2009-06-25", "xsd:date")),
        ("dbr:Michael_Jackson", "dbo:birthDate", Term::typed_lit("1958-08-29", "xsd:date")),
        ("dbr:Al_Capone", "dbo:alias", Term::lit("Scarface")),
        ("dbr:San_Francisco", "dbo:nickname", Term::lit("The Golden City")),
        ("dbr:San_Francisco", "dbo:nickname", Term::lit("Fog City")),
        ("dbr:Berlin", "dbo:population", Term::int_lit(3_500_000)),
        ("dbr:Sydney", "dbo:population", Term::int_lit(5_300_000)),
        ("dbr:Melbourne", "dbo:population", Term::int_lit(5_000_000)),
        ("dbr:Philadelphia", "dbo:population", Term::int_lit(1_600_000)),
        ("dbr:Munich", "dbo:population", Term::int_lit(1_500_000)),
        ("dbr:Wayne_Rooney", "dbo:birthDate", Term::typed_lit("1985-10-24", "xsd:date")),
        ("dbr:Raheem_Sterling", "dbo:birthDate", Term::typed_lit("1994-12-08", "xsd:date")),
        ("dbr:Frank_Lampard", "dbo:birthDate", Term::typed_lit("1978-06-20", "xsd:date")),
        ("dbr:Queen_Elizabeth_II", "dbo:birthDate", Term::typed_lit("1926-04-21", "xsd:date")),
    ];
    for (s, p, o) in lits {
        b.add_obj(s, p, o.clone());
    }
}

/// Extra `rdfs:label` aliases: class labels for common nouns, adjectival
/// demonyms (modelling DBpedia redirects), and multi-word names.
fn label_facts(b: &mut StoreBuilder) {
    let labels: &[(&str, &str)] = &[
        ("dbo:Actor", "actor"),
        ("dbo:Film", "film"),
        ("dbo:Film", "movie"),
        ("dbo:City", "city"),
        ("dbo:Country", "country"),
        ("dbo:Company", "company"),
        ("dbo:Automobile", "car"),
        ("dbo:Book", "book"),
        ("dbo:Person", "person"),
        ("dbo:Person", "people"),
        ("dbo:Band", "band"),
        ("dbo:River", "river"),
        ("dbo:Mountain", "mountain"),
        ("dbo:Comic", "comic"),
        ("dbo:BasketballTeam", "team"),
        ("dbo:Athlete", "player"),
        ("dbo:AdministrativeRegion", "state"),
        ("dbo:AdministrativeRegion", "US state"),
        ("dbo:LaunchPad", "launch pad"),
        ("dbo:Royalty", "queen"),
        ("dbr:Argentina", "Argentine"),
        ("dbr:Germany", "German"),
        ("dbr:Netherlands", "Dutch"),
        ("dbr:Queen_Elizabeth_II", "Queen Elizabeth II"),
        ("dbr:Queen_Elizabeth_II", "Elizabeth II"),
        ("dbr:Juliana_of_the_Netherlands", "Juliana"),
        ("dbr:Juliana_of_the_Netherlands", "queen Juliana"),
        ("dbr:The_Prodigy", "Prodigy"),
        ("dbr:Maxim_Reality", "Maxim"),
        ("dbr:The_Secret_in_Their_Eyes", "The Secret in Their Eyes"),
        ("dbr:Nine_Queens", "Nine Queens"),
        ("dbr:Mount_Everest", "Mount Everest"),
        ("dbr:Mount_Everest", "the Mount Everest"),
        ("dbr:Premier_League", "Premier League"),
        ("dbr:NASA", "NASA"),
        ("dbr:Weser", "Weser"),
        ("dbr:Rhine", "Rhine"),
        ("dbr:Big_Sur_(novel)", "Big Sur"),
        ("dbr:Kennedy_Space_Center_LC-39A", "Kennedy Space Center LC 39A"),
        ("dbr:Cape_Canaveral_SLC-40", "Cape Canaveral SLC 40"),
        // NOTE: deliberately no "MI6" label on
        // dbr:Secret_Intelligence_Service (paper Q48 fails on linking).
    ];
    for (s, l) in labels {
        b.add_obj(s, "rdfs:label", Term::lit(*l));
    }
}

/// Build the mini-DBpedia store.
pub fn mini_dbpedia() -> Store {
    let mut b = StoreBuilder::new();
    for (s, p, o) in FACTS {
        b.add_iri(s, p, o);
    }
    literal_facts(&mut b);
    label_facts(&mut b);
    b.build()
}

/// The mini graph augmented with **label-colliding decoy entities**,
/// restoring the mention ambiguity the paper's comparison depends on: on
/// DBpedia every mention links to many candidates ("Philadelphia" → city,
/// film, team, …), which is what makes eager joint disambiguation
/// expensive and lazy match-time disambiguation pay off (Figure 6).
///
/// Every entity mentioned in the benchmark gains `decoys` clones carrying
/// the *same* `rdfs:label` (so the linker returns them all at equal
/// confidence) but connected only through decoy predicates — so no decoy
/// can ever satisfy a true relation, and gold answers are unchanged.
pub fn ambiguous_dbpedia(decoys: usize, seed: u64) -> Store {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = StoreBuilder::new();
    for (s, p, o) in FACTS {
        b.add_iri(s, p, o);
    }
    literal_facts(&mut b);
    label_facts(&mut b);

    // Entities questions mention by name.
    let mentioned: &[&str] = &[
        "dbr:Berlin",
        "dbr:Germany",
        "dbr:Canada",
        "dbr:Philadelphia",
        "dbr:Antonio_Banderas",
        "dbr:John_F._Kennedy",
        "dbr:John_F._Kennedy,_Jr.",
        "dbr:Wyoming",
        "dbr:Alaska",
        "dbr:Queen_Elizabeth_II",
        "dbr:The_Prodigy",
        "dbr:Minecraft",
        "dbr:Intel",
        "dbr:Amanda_Palmer",
        "dbr:Weser",
        "dbr:Rhine",
        "dbr:San_Francisco",
        "dbr:Salt_Lake_City",
        "dbr:Barack_Obama",
        "dbr:Michelle_Obama",
        "dbr:Michael_Jackson",
        "dbr:Michael_Jordan",
        "dbr:Margaret_Thatcher",
        "dbr:Jack_Kerouac",
        "dbr:Viking_Press",
        "dbr:Captain_America",
        "dbr:Australia",
        "dbr:Miffy",
        "dbr:Orangina",
        "dbr:Munich",
        "dbr:Vienna",
        "dbr:Francis_Ford_Coppola",
        "dbr:Angela_Merkel",
        "dbr:Mount_Everest",
        "dbr:Chicago_Bulls",
        "dbr:Max_Reinhardt",
        "dbr:Juliana_of_the_Netherlands",
    ];
    let mut decoy_ids: Vec<String> = Vec::new();
    for (ei, iri) in mentioned.iter().enumerate() {
        let label = Term::iri(*iri).label().into_owned();
        for d in 0..decoys {
            let decoy = format!("dbx:Decoy_{ei}_{d}");
            b.add_obj(&decoy, "rdfs:label", Term::lit(label.clone()));
            b.add_iri(&decoy, "rdf:type", "dbo:DecoyThing");
            decoy_ids.push(decoy);
        }
    }
    // Random decoy-predicate edges among decoys: coherence probes and
    // pruning scans have real work to do, but no true relation traverses
    // these.
    for i in 0..decoy_ids.len() {
        for _ in 0..3 {
            let j = rng.gen_range(0..decoy_ids.len());
            if i != j {
                let p = format!("dbx:decoyRel{}", rng.gen_range(0..8));
                b.add_iri(&decoy_ids[i], &p, &decoy_ids[j]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_rdf::schema::Schema;
    use gqa_rdf::stats::StoreStats;

    #[test]
    fn builds_and_has_expected_shape() {
        let s = mini_dbpedia();
        assert!(s.len() > 200, "mini graph should be a few hundred triples, got {}", s.len());
        let st = StoreStats::collect(&s);
        assert!(st.entities > 80, "{st:?}");
        assert!(st.predicates > 25, "{st:?}");
        assert!(st.classes > 15, "{st:?}");
    }

    #[test]
    fn running_example_subgraph_is_present() {
        let s = mini_dbpedia();
        let mg = s.expect_iri("dbr:Melanie_Griffith");
        let ab = s.expect_iri("dbr:Antonio_Banderas");
        let spouse = s.expect_iri("dbo:spouse");
        assert!(s.contains(gqa_rdf::Triple::new(mg, spouse, ab)));
        // Three Philadelphia vertices.
        for iri in ["dbr:Philadelphia", "dbr:Philadelphia_(film)", "dbr:Philadelphia_76ers"] {
            assert!(s.iri(iri).is_some(), "{iri}");
        }
    }

    #[test]
    fn class_structure_is_classified() {
        let s = mini_dbpedia();
        let schema = Schema::new(&s);
        assert!(schema.is_class(s.expect_iri("dbo:Actor")));
        assert!(schema.has_type(s.expect_iri("dbr:Antonio_Banderas"), s.expect_iri("dbo:Person")));
        assert!(!schema.is_class(s.expect_iri("dbr:Berlin")));
    }

    #[test]
    fn determinism() {
        let a = gqa_rdf::ntriples::serialize(&mini_dbpedia());
        let b = gqa_rdf::ntriples::serialize(&mini_dbpedia());
        assert_eq!(a, b);
    }

    #[test]
    fn ambiguous_variant_collides_labels_without_breaking_gold() {
        let s = ambiguous_dbpedia(5, 1);
        let schema = gqa_rdf::schema::Schema::new(&s);
        let linker = gqa_linker::Linker::new(&s, &schema);
        let cands = linker.link("Berlin");
        assert!(cands.len() >= 6, "real Berlin plus 5 decoys: {cands:?}");
        // Decoys never carry true predicates.
        let leader = s.expect_iri("dbo:leaderName");
        let real = s.expect_iri("dbr:Berlin");
        for c in &cands {
            if c.id != real {
                assert!(s.out_edges_with(c.id, leader).next().is_none());
            }
        }
    }

    #[test]
    fn uncle_path_exists_for_ted_kennedy() {
        let s = mini_dbpedia();
        let ted = s.expect_iri("dbr:Ted_Kennedy");
        let jr = s.expect_iri("dbr:John_F._Kennedy,_Jr.");
        let paths =
            gqa_rdf::paths::simple_paths(&s, ted, jr, &gqa_rdf::paths::PathConfig::with_max_len(3));
        assert!(!paths.is_empty());
    }
}
