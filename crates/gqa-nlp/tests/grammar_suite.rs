//! Grammar-level integration tests for the question parser: paraphrase
//! invariance (the property §4.1 of the paper relies on), a broad
//! well-formedness sweep, and robustness against arbitrary input.

use gqa_nlp::parser::DependencyParser;
use gqa_nlp::question::QuestionAnalysis;
use gqa_nlp::tree::DepTree;
use gqa_nlp::DepRel;
use proptest::prelude::*;

fn parse(q: &str) -> DepTree {
    DependencyParser::new().parse(q).unwrap_or_else(|| panic!("no parse for {q:?}"))
}

/// The unlabeled tree shape over lowercased tokens: (child_word,
/// head_word, relation) triples, order-insensitive. Two questions with the
/// same shape are indistinguishable to the downstream relation extractor.
fn shape(t: &DepTree) -> Vec<(String, String, DepRel)> {
    let mut out: Vec<(String, String, DepRel)> = (0..t.len())
        .filter_map(|i| {
            t.heads[i].map(|h| (t.tokens[i].lower.clone(), t.tokens[h].lower.clone(), t.rels[i]))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn preposition_fronting_vs_stranding_is_shape_invariant() {
    // The paper's §4.1 motivating pair.
    let a = parse("In which movies did Antonio Banderas star?");
    let b = parse("Which movies did Antonio Banderas star in?");
    assert_eq!(shape(&a), shape(&b), "\n{a}\nvs\n{b}");
}

#[test]
fn auxiliary_variants_share_the_relation_skeleton() {
    // "did ... star" vs "starred": the (star, subj) and (in, pobj) edges
    // must survive, auxiliaries aside.
    let a = parse("Which movies did Antonio Banderas star in?");
    let b = parse("Antonio Banderas starred in which movies?");
    let keep = |t: &DepTree| {
        let mut s: Vec<(String, DepRel)> = (0..t.len())
            .filter_map(|i| {
                t.heads[i].and_then(|_| match t.rels[i] {
                    DepRel::Nsubj | DepRel::Nsubjpass | DepRel::Pobj => {
                        Some((t.tokens[i].lower.clone(), t.rels[i]))
                    }
                    _ => None,
                })
            })
            .collect();
        s.sort();
        s
    };
    assert_eq!(keep(&a), keep(&b), "\n{a}\nvs\n{b}");
}

#[test]
fn copula_order_variants_target_the_same_entity() {
    let a = parse("Who is the mayor of Berlin?");
    let b = parse("The mayor of Berlin is who?");
    // Both must hang "of" off "mayor" and "berlin" off "of".
    for t in [&a, &b] {
        let of = t.tokens.iter().position(|x| x.lower == "of").unwrap();
        let mayor = t.tokens.iter().position(|x| x.lower == "mayor").unwrap();
        let berlin = t.tokens.iter().position(|x| x.lower == "berlin").unwrap();
        assert_eq!(t.heads[of], Some(mayor), "{t}");
        assert_eq!(t.heads[berlin], Some(of), "{t}");
    }
}

#[test]
fn qald_question_sweep_parses_well_formed_with_sane_targets() {
    // Every benchmark-flavored phrasing must produce a rooted tree and a
    // plausible target.
    let cases: &[(&str, &str)] = &[
        ("Who was the successor of John F. Kennedy?", "who"),
        ("Which cities does the Weser flow through?", "cities"),
        ("Give me all members of Prodigy.", "members"),
        ("How many companies are in Munich?", "companies"),
        ("Is Michelle Obama the wife of Barack Obama?", ""),
        ("When did Michael Jackson die?", "when"),
        ("What is the time zone of Salt Lake City?", "what"),
        ("In which city was the former Dutch queen Juliana buried?", "city"),
        ("Sean Parnell is the governor of which U.S. state?", "state"),
        ("Which books by Kerouac were published by Viking Press?", "books"),
        ("Give me all launch pads operated by NASA.", "pads"),
        ("Which country does the creator of Miffy come from?", "country"),
        ("How high is the Mount Everest?", ""),
        ("List the children of Margaret Thatcher.", "children"),
    ];
    for (q, want_target) in cases {
        let t = parse(q);
        assert!(t.is_well_formed(), "{q}\n{t}");
        if !want_target.is_empty() {
            let a = QuestionAnalysis::of(&t);
            assert_eq!(&t.tokens[a.target].lower, want_target, "{q}\n{t}");
        }
    }
}

#[test]
fn relative_clause_attachment_is_stable_across_relativizers() {
    for rel in ["that", "who"] {
        let q = format!("Who was married to an actor {rel} played in Philadelphia?");
        let t = parse(&q);
        let actor = t.tokens.iter().position(|x| x.lower == "actor").unwrap();
        let played = t.tokens.iter().position(|x| x.lower == "played").unwrap();
        assert_eq!(t.heads[played], Some(actor), "{q}\n{t}");
        assert_eq!(t.rels[played], DepRel::Rcmod, "{q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any whitespace-separated word soup parses (or cleanly refuses) and
    /// the result is always a well-formed tree.
    #[test]
    fn arbitrary_token_soup_never_breaks_wellformedness(
        words in prop::collection::vec("[A-Za-z]{1,10}", 1..12),
        punct in prop::sample::select(vec!["", "?", ".", "!"]),
    ) {
        let q = format!("{}{}", words.join(" "), punct);
        if let Some(t) = DependencyParser::new().parse(&q) {
            prop_assert!(t.is_well_formed(), "{q}\n{t}");
            // Question analysis never panics either.
            let _ = QuestionAnalysis::of(&t);
        }
    }

    /// Unicode garbage never panics.
    #[test]
    fn unicode_garbage_never_panics(q in "\\PC{0,60}") {
        if let Some(t) = DependencyParser::new().parse(&q) {
            prop_assert!(t.is_well_formed());
        }
    }

    /// Wh-questions from a template grammar always carry a wh target.
    #[test]
    fn templated_wh_questions_have_wh_or_noun_targets(
        wh in prop::sample::select(vec!["Who", "What", "Which city", "Which films"]),
        vp in prop::sample::select(vec![
            "is the capital of Germany",
            "was married to Antonio Banderas",
            "did Francis Ford Coppola direct",
            "flows through Bremen",
        ]),
    ) {
        let q = format!("{wh} {vp}?");
        let t = parse(&q);
        prop_assert!(t.is_well_formed(), "{q}\n{t}");
        let a = QuestionAnalysis::of(&t);
        let tok = &t.tokens[a.target];
        prop_assert!(
            tok.pos.is_wh() || tok.pos.is_noun(),
            "{q}: target {:?}",
            tok.text
        );
    }
}
