//! # gqa-nlp — question-analysis substrate
//!
//! The paper runs the Stanford Parser over the input question `N` to obtain a
//! typed dependency tree `Y` (§4.1). Dependency parsers are scarce as Rust
//! crates, so this crate builds the substrate from scratch:
//!
//! * [`token`] — tokenizer,
//! * [`lexicon`] — closed-class word lists, irregular-verb table and a
//!   suffix-rule lemmatizer,
//! * [`pos`] — Penn-Treebank-style part-of-speech tagging (lexicon + suffix
//!   heuristics),
//! * [`deprel`] — the Stanford typed dependency labels used by the paper
//!   (`nsubj`, `nsubjpass`, `dobj`, `pobj`, …) with the *subject-like* /
//!   *object-like* groupings of §4.1.2,
//! * [`tree`] — the dependency-tree data structure consumed by the relation
//!   extractor,
//! * [`parser`] — a deterministic rule-cascade dependency parser covering
//!   the English question grammar of the QALD workload (wh-questions,
//!   imperatives, passives, copulas, relative clauses and preposition
//!   fronting/stranding),
//! * [`question`] — question-level analysis: target (answer) node, expected
//!   answer shape, aggregation markers.
//!
//! The parser is *not* a general-purpose English parser; it is a substrate
//! faithful on the question grammar the pipeline consumes, and it produces
//! identical trees for paraphrases such as *"In which movies did Antonio
//! Banderas star?"* vs *"Which movies did Antonio Banderas star in?"* — the
//! property the paper relies on (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deprel;
pub mod lexicon;
pub mod parser;
pub mod pos;
pub mod question;
pub mod token;
pub mod tree;

pub use deprel::DepRel;
pub use parser::DependencyParser;
pub use pos::Pos;
pub use question::{AnswerShape, QuestionAnalysis};
pub use token::Token;
pub use tree::DepTree;
