//! Stanford typed dependency labels.
//!
//! §4.1.2 of the paper partitions the grammatical relations around a relation
//! phrase's embedding into *subject-like* (`subj, nsubj, nsubjpass, csubj,
//! csubjpass, xsubj, poss`) and *object-like* (`obj, pobj, dobj, iobj`)
//! relations; these drive argument identification.

use std::fmt;

/// A typed dependency label (Stanford dependencies subset).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)]
pub enum DepRel {
    /// Nominal subject.
    Nsubj,
    /// Passive nominal subject.
    Nsubjpass,
    /// Clausal subject.
    Csubj,
    /// Passive clausal subject.
    Csubjpass,
    /// Controlled subject.
    Xsubj,
    /// Possession modifier (`Obama 's wife`: poss(wife, Obama)).
    Poss,
    /// Direct object.
    Dobj,
    /// Indirect object.
    Iobj,
    /// Object of a preposition.
    Pobj,
    /// Prepositional modifier.
    Prep,
    /// Determiner.
    Det,
    /// Adjectival modifier.
    Amod,
    /// Noun compound modifier.
    Nn,
    /// Auxiliary.
    Aux,
    /// Passive auxiliary.
    Auxpass,
    /// Copula.
    Cop,
    /// Relative-clause modifier.
    Rcmod,
    /// Adverbial modifier.
    Advmod,
    /// Coordinating conjunction.
    Cc,
    /// Conjunct.
    Conj,
    /// Numeric modifier.
    Num,
    /// Attributive complement of a copula in a wh-question.
    Attr,
    /// Possessive-marker attachment (`'s`).
    Possessive,
    /// Unclassified dependency.
    Dep,
    /// The root pseudo-relation.
    Root,
}

impl DepRel {
    /// The paper's *subject-like* set (§4.1.2 item 1).
    pub fn is_subject_like(self) -> bool {
        matches!(
            self,
            DepRel::Nsubj
                | DepRel::Nsubjpass
                | DepRel::Csubj
                | DepRel::Csubjpass
                | DepRel::Xsubj
                | DepRel::Poss
        )
    }

    /// The paper's *object-like* set (§4.1.2 item 2).
    pub fn is_object_like(self) -> bool {
        matches!(self, DepRel::Dobj | DepRel::Iobj | DepRel::Pobj | DepRel::Attr)
    }

    /// Label text as printed by the Stanford tools.
    pub fn as_str(self) -> &'static str {
        match self {
            DepRel::Nsubj => "nsubj",
            DepRel::Nsubjpass => "nsubjpass",
            DepRel::Csubj => "csubj",
            DepRel::Csubjpass => "csubjpass",
            DepRel::Xsubj => "xsubj",
            DepRel::Poss => "poss",
            DepRel::Dobj => "dobj",
            DepRel::Iobj => "iobj",
            DepRel::Pobj => "pobj",
            DepRel::Prep => "prep",
            DepRel::Det => "det",
            DepRel::Amod => "amod",
            DepRel::Nn => "nn",
            DepRel::Aux => "aux",
            DepRel::Auxpass => "auxpass",
            DepRel::Cop => "cop",
            DepRel::Rcmod => "rcmod",
            DepRel::Advmod => "advmod",
            DepRel::Cc => "cc",
            DepRel::Conj => "conj",
            DepRel::Num => "num",
            DepRel::Attr => "attr",
            DepRel::Possessive => "possessive",
            DepRel::Dep => "dep",
            DepRel::Root => "root",
        }
    }
}

impl fmt::Display for DepRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_like_matches_the_paper_list() {
        let yes = [
            DepRel::Nsubj,
            DepRel::Nsubjpass,
            DepRel::Csubj,
            DepRel::Csubjpass,
            DepRel::Xsubj,
            DepRel::Poss,
        ];
        for r in yes {
            assert!(r.is_subject_like(), "{r}");
            assert!(!r.is_object_like(), "{r}");
        }
    }

    #[test]
    fn object_like_matches_the_paper_list() {
        let yes = [DepRel::Dobj, DepRel::Iobj, DepRel::Pobj];
        for r in yes {
            assert!(r.is_object_like(), "{r}");
            assert!(!r.is_subject_like(), "{r}");
        }
    }

    #[test]
    fn neutral_relations() {
        for r in [DepRel::Det, DepRel::Prep, DepRel::Aux, DepRel::Rcmod, DepRel::Root] {
            assert!(!r.is_subject_like() && !r.is_object_like(), "{r}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(DepRel::Nsubjpass.to_string(), "nsubjpass");
        assert_eq!(DepRel::Pobj.to_string(), "pobj");
    }
}
