//! A deterministic rule-cascade dependency parser for English questions.
//!
//! The paper's pipeline runs the Stanford Parser over `N` (§4.1); this module
//! is the from-scratch substrate standing in for it. It parses the question
//! grammar of the QALD workload:
//!
//! * wh-questions with do-support (*"Which movies did Antonio Banderas star
//!   in?"*), including preposition **fronting** and **stranding** — both
//!   produce the same tree shape, the property the paper relies on;
//! * passives (*"Who was married to an actor …?"*);
//! * copular questions (*"Who is the mayor of Berlin?"*, *"How tall is
//!   Michael Jordan?"*);
//! * imperatives (*"Give me all movies directed by Francis Ford Coppola."*);
//! * relative clauses, both full (*"an actor that played in Philadelphia"*)
//!   and reduced (*"launch pads operated by NASA"*);
//! * verb coordination (*"born in Vienna and died in Berlin"*);
//! * possessives (*"Barack Obama's wife"*).
//!
//! The cascade: NP chunking → possessive linking → relativizer detection →
//! verb grouping → clause assembly (root, auxiliaries, subjects, copulas) →
//! PP attachment → object attachment → coordination → leftovers.

use crate::deprel::DepRel;
use crate::lexicon;
use crate::pos::Pos;
use crate::token::{analyze, Token};
use crate::tree::DepTree;

/// The question dependency parser. Stateless; construct once and reuse.
///
/// ```
/// use gqa_nlp::{DependencyParser, DepRel};
///
/// let tree = DependencyParser::new()
///     .parse("Who is the mayor of Berlin?")
///     .unwrap();
/// let mayor = tree.tokens.iter().position(|t| t.lower == "mayor").unwrap();
/// assert_eq!(tree.root, mayor);
/// assert_eq!(tree.rels[0], DepRel::Nsubj); // who ← nsubj ← mayor
/// ```
#[derive(Default, Debug, Clone, Copy)]
pub struct DependencyParser;

impl DependencyParser {
    /// Create a parser.
    pub fn new() -> Self {
        DependencyParser
    }

    /// Parse a question into a dependency tree. Returns `None` for input
    /// with no parsable tokens.
    pub fn parse(&self, text: &str) -> Option<DepTree> {
        let tokens = analyze(text);
        if tokens.is_empty() {
            return None;
        }
        Some(parse_tokens(tokens))
    }
}

/// An NP span `[start, end]` (inclusive) with its head index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Span {
    start: usize,
    end: usize,
    head: usize,
}

struct State {
    tokens: Vec<Token>,
    heads: Vec<Option<usize>>,
    rels: Vec<DepRel>,
}

impl State {
    fn attach(&mut self, child: usize, head: usize, rel: DepRel) {
        debug_assert_ne!(child, head, "self-attachment of {child}");
        if self.heads[child].is_none() && child != head {
            self.heads[child] = Some(head);
            self.rels[child] = rel;
        }
    }

    fn attached(&self, i: usize) -> bool {
        self.heads[i].is_some()
    }

    fn pos(&self, i: usize) -> Pos {
        self.tokens[i].pos
    }

    fn lower(&self, i: usize) -> &str {
        &self.tokens[i].lower
    }
}

fn parse_tokens(tokens: Vec<Token>) -> DepTree {
    let n = tokens.len();
    let mut st = State { tokens, heads: vec![None; n], rels: vec![DepRel::Dep; n] };

    // ---- 1. NP chunking -------------------------------------------------
    let spans = chunk_noun_phrases(&mut st);

    // ---- 2. possessives: NP1 's NP2 → poss(h2, h1) ----------------------
    link_possessives(&mut st, &spans);

    // ---- 3. relativizers -------------------------------------------------
    // A standalone wh span directly following an NP span is a relativizer.
    let relativizers = find_relativizers(&st, &spans);

    // ---- 4. verb groups --------------------------------------------------
    let groups = find_verb_groups(&st);

    // ---- 5. clause assembly ---------------------------------------------
    let root = assemble_clauses(&mut st, &spans, &relativizers, &groups);

    // ---- 6. PP attachment ------------------------------------------------
    attach_prepositions(&mut st, &spans, root);

    // ---- 7. leftover NPs as objects, leftovers as dep --------------------
    attach_leftovers(&mut st, &spans, root);

    st.heads[root] = None;
    st.rels[root] = DepRel::Root;
    let tree = DepTree { tokens: st.tokens, heads: st.heads, rels: st.rels, root };
    debug_assert!(tree.is_well_formed(), "parser produced a malformed tree:\n{tree}");
    tree
}

/// Find maximal NP runs and attach their internal structure.
fn chunk_noun_phrases(st: &mut State) -> Vec<Span> {
    let n = st.tokens.len();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < n {
        let p = st.pos(i);
        let starts_np = matches!(p, Pos::Dt | Pos::PrpDollar)
            || p.is_np_internal()
            || is_wh_determiner_before_noun(st, i);
        if !starts_np {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j + 1 < n {
            let q = st.pos(j + 1);
            if q.is_np_internal() {
                j += 1;
            } else {
                break;
            }
        }
        // Head: last noun in the run; otherwise last token.
        let head = (start..=j).rev().find(|&k| st.pos(k).is_noun()).unwrap_or(j);
        for k in start..=j {
            if k == head {
                continue;
            }
            let rel = match st.pos(k) {
                Pos::Dt | Pos::Wdt => DepRel::Det,
                Pos::PrpDollar => DepRel::Poss,
                Pos::Jj | Pos::Jjr | Pos::Jjs => DepRel::Amod,
                Pos::Cd => DepRel::Num,
                _ if k < head => DepRel::Nn,
                _ => DepRel::Dep,
            };
            st.attach(k, head, rel);
        }
        spans.push(Span { start, end: j, head });
        i = j + 1;
    }
    spans
}

/// `which`/`what` directly before a noun acts as a determiner of that noun.
fn is_wh_determiner_before_noun(st: &State, i: usize) -> bool {
    matches!(st.pos(i), Pos::Wdt | Pos::Wp)
        && st.lower(i) != "that"
        && i + 1 < st.tokens.len()
        && (st.pos(i + 1).is_np_internal() || st.pos(i + 1) == Pos::Dt)
}

fn link_possessives(st: &mut State, spans: &[Span]) {
    for w in spans.windows(2) {
        let (a, b) = (w[0], w[1]);
        // NP1 's NP2 — the 's sits between the spans.
        if b.start == a.end + 2 && st.pos(a.end + 1) == Pos::Pos {
            st.attach(a.head, b.head, DepRel::Poss);
            st.attach(a.end + 1, a.head, DepRel::Possessive);
        }
    }
}

/// Positions of relativizer tokens (standalone `that`/`who`/`which` after an
/// NP).
fn find_relativizers(st: &State, spans: &[Span]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, _) in st.tokens.iter().enumerate() {
        if st.attached(i) || !matches!(st.pos(i), Pos::Wp | Pos::Wdt) {
            continue;
        }
        // Not sentence-initial, directly after an NP span end.
        if i == 0 {
            continue;
        }
        if spans.iter().any(|s| s.end + 1 == i) {
            out.push(i);
        }
    }
    out
}

/// A maximal run of verb/modal tokens.
#[derive(Clone, Copy, Debug)]
struct VerbGroup {
    start: usize,
    end: usize,
    /// Index of the lexical head: the last non-auxiliary verb, or the last
    /// verb if the group is all auxiliaries.
    main: usize,
}

fn find_verb_groups(st: &State) -> Vec<VerbGroup> {
    let n = st.tokens.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if st.attached(i) || !(st.pos(i).is_verb() || st.pos(i) == Pos::Md) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j + 1 < n
            && !st.attached(j + 1)
            && (st.pos(j + 1).is_verb() || st.pos(j + 1) == Pos::Md)
        {
            j += 1;
        }
        // Lexical head: last token that is not a pure auxiliary form, else
        // the last token.
        let main = (start..=j)
            .rev()
            .find(|&k| {
                !(lexicon::is_be(st.lower(k))
                    || lexicon::is_do(st.lower(k))
                    || lexicon::is_have(st.lower(k))
                    || st.pos(k) == Pos::Md)
            })
            .unwrap_or(j);
        out.push(VerbGroup { start, end: j, main });
        i = j + 1;
    }
    out
}

/// Which clause does position `p` belong to? Clause starts are the
/// relativizer positions; the main clause starts at 0.
fn clause_of(relativizers: &[usize], p: usize) -> usize {
    let mut c = 0;
    for (k, &r) in relativizers.iter().enumerate() {
        if p >= r {
            c = k + 1;
        }
    }
    c
}

/// Assemble verb groups into clauses: pick the root, attach auxiliaries,
/// subjects, copulas, relative clauses and coordination. Returns the root.
fn assemble_clauses(
    st: &mut State,
    spans: &[Span],
    relativizers: &[usize],
    groups: &[VerbGroup],
) -> usize {
    let n = st.tokens.len();
    let nclauses = relativizers.len() + 1;

    // Group indices per clause.
    let mut per_clause: Vec<Vec<usize>> = vec![Vec::new(); nclauses];
    for (gi, g) in groups.iter().enumerate() {
        per_clause[clause_of(relativizers, g.start)].push(gi);
    }

    // ---- main clause -----------------------------------------------------
    let main_clause_root = build_main_clause(st, spans, groups, &per_clause[0], relativizers);

    // ---- relative clauses -------------------------------------------------
    for (k, &r) in relativizers.iter().enumerate() {
        let clause_groups = &per_clause[k + 1];
        // The noun the clause modifies: head of the span ending right
        // before the relativizer.
        let modified = spans.iter().find(|s| s.end + 1 == r).map(|s| s.head);
        if let Some(&g0) = clause_groups.first() {
            let verb = resolve_group(st, groups, clause_groups, g0);
            if let Some(noun) = modified {
                st.attach(verb, noun, DepRel::Rcmod);
            } else {
                st.attach(verb, main_clause_root, DepRel::Dep);
            }
            // Relativizer is the subject of the clause verb (object
            // relativizers are rare in the workload).
            let passive = is_passive_group(st, groups, clause_groups, g0);
            st.attach(r, verb, if passive { DepRel::Nsubjpass } else { DepRel::Nsubj });
            // Coordination inside the clause: remaining groups conj to verb.
            coordinate_groups(st, groups, clause_groups, verb);
        } else if let Some(noun) = modified {
            // Relativizer with no verb (elliptical); attach as dep.
            st.attach(r, noun, DepRel::Dep);
        }
    }

    // Reduced relative clauses: an unattached VBN group following an NP,
    // when it is not the main verb ("launch pads operated by NASA").
    for g in groups {
        if st.attached(g.main) || g.main == main_clause_root {
            continue;
        }
        // A participle group after an NP is a reduced relative clause. VBD
        // tags count as participles when followed by an agentive "by"
        // ("movies *directed by* Coppola" — the lexicon cannot distinguish
        // VBD/VBN without context).
        let participial = st.pos(g.main) == Pos::Vbn
            || (st.pos(g.main) == Pos::Vbd
                && g.end + 1 < st.tokens.len()
                && st.lower(g.end + 1) == "by");
        if participial {
            if let Some(s) = spans.iter().rev().find(|s| s.end < g.start) {
                st.attach(g.main, s.head, DepRel::Rcmod);
                attach_group_auxiliaries(st, g, g.main);
                continue;
            }
        }
        // Any other stray verb group: conj or dep to the root.
        if prev_is_conjunction(st, g.start) {
            attach_coordination(st, main_clause_root, g, groups);
        } else {
            st.attach(g.main, main_clause_root, DepRel::Dep);
            attach_group_auxiliaries(st, g, g.main);
        }
    }

    // Attach any unattached relativizer-like wh word (safety net).
    for i in 0..n {
        if !st.attached(i) && st.pos(i).is_wh() && i != main_clause_root {
            // Leave for leftovers; handled there relative to root.
        }
    }

    main_clause_root
}

/// Is `and`/`or` the token right before `pos` (skipping commas — already
/// dropped by the tokenizer)?
fn prev_is_conjunction(st: &State, pos: usize) -> bool {
    pos > 0 && st.pos(pos - 1) == Pos::Cc
}

fn attach_coordination(st: &mut State, head_verb: usize, g: &VerbGroup, _groups: &[VerbGroup]) {
    st.attach(g.main, head_verb, DepRel::Conj);
    if g.start > 0 && st.pos(g.start - 1) == Pos::Cc {
        st.attach(g.start - 1, head_verb, DepRel::Cc);
    }
    attach_group_auxiliaries(st, g, g.main);
}

/// Attach auxiliaries within a single verb group to its lexical head.
fn attach_group_auxiliaries(st: &mut State, g: &VerbGroup, head: usize) {
    for k in g.start..=g.end {
        if k == head || st.attached(k) {
            continue;
        }
        let rel = if lexicon::is_be(st.lower(k)) && st.pos(head) == Pos::Vbn {
            DepRel::Auxpass
        } else {
            DepRel::Aux
        };
        st.attach(k, head, rel);
    }
}

/// Resolve the clause's verb-group list into a single lexical head verb,
/// attaching auxiliaries (handles split do-support: `[did] … [star]`).
fn resolve_group(
    st: &mut State,
    groups: &[VerbGroup],
    clause_groups: &[usize],
    first: usize,
) -> usize {
    let g0 = groups[first];
    let g0_is_aux_only = (g0.start..=g0.end).all(|k| {
        lexicon::is_be(st.lower(k))
            || lexicon::is_do(st.lower(k))
            || lexicon::is_have(st.lower(k))
            || st.pos(k) == Pos::Md
    });
    if g0_is_aux_only {
        // Find the next group in the clause: its head is the lexical verb.
        if let Some(&gi) = clause_groups.iter().find(|&&gi| groups[gi].start > g0.end) {
            let g1 = groups[gi];
            let head = g1.main;
            // The split auxiliary attaches to the later lexical verb.
            let rel = if (lexicon::is_be(st.lower(g0.main))) && st.pos(head) == Pos::Vbn {
                DepRel::Auxpass
            } else {
                DepRel::Aux
            };
            for k in g0.start..=g0.end {
                st.attach(k, head, rel);
            }
            attach_group_auxiliaries(st, &g1, head);
            return head;
        }
    }
    attach_group_auxiliaries(st, &g0, g0.main);
    g0.main
}

/// Is the clause's resolved verb a passive participle with a *be* auxiliary?
fn is_passive_group(
    st: &State,
    groups: &[VerbGroup],
    clause_groups: &[usize],
    first: usize,
) -> bool {
    let g0 = groups[first];
    let head = clause_groups
        .iter()
        .map(|&gi| groups[gi])
        .find(|g| g.start >= g0.start)
        .map_or(g0.main, |g| g.main);
    // Find the lexical head among the clause groups.
    let lexical = clause_groups
        .iter()
        .map(|&gi| groups[gi].main)
        .rev()
        .find(|&m| st.pos(m) == Pos::Vbn)
        .unwrap_or(head);
    st.pos(lexical) == Pos::Vbn
        && clause_groups
            .iter()
            .flat_map(|&gi| groups[gi].start..=groups[gi].end)
            .any(|k| lexicon::is_be(st.lower(k)))
}

/// Build the main clause; returns its root node.
fn build_main_clause(
    st: &mut State,
    spans: &[Span],
    groups: &[VerbGroup],
    clause_groups: &[usize],
    relativizers: &[usize],
) -> usize {
    let n = st.tokens.len();
    fn main_span(st: &State, spans: &[Span], relativizers: &[usize], from: usize) -> Option<Span> {
        spans.iter().copied().find(|s| {
            s.start >= from && clause_of(relativizers, s.start) == 0 && !st.attached(s.head)
        })
    }

    // No verb at all: root is the first NP head (or token 0).
    if clause_groups.is_empty() {
        return spans.first().map_or(0, |s| s.head);
    }

    let g0 = groups[clause_groups[0]];

    // ---- imperative: sentence-initial base verb ("Give me …", "List …").
    if g0.start == 0 && matches!(st.pos(g0.main), Pos::Vb | Pos::Vbp) {
        let root = g0.main;
        attach_group_auxiliaries(st, &g0, root);
        // "me" as indirect object.
        if g0.end + 1 < n && st.lower(g0.end + 1) == "me" {
            st.attach(g0.end + 1, root, DepRel::Iobj);
        }
        // First following NP: direct object.
        if let Some(s) = main_span(st, spans, relativizers, g0.end + 1) {
            // Skip NPs already inside a PP (handled later): the NP directly
            // after the verb (or after "me") is the object.
            let obj_start_ok = s.start == g0.end + 1
                || (g0.end + 1 < n && st.lower(g0.end + 1) == "me" && s.start == g0.end + 2);
            if obj_start_ok {
                st.attach(s.head, root, DepRel::Dobj);
            }
        }
        coordinate_groups(st, groups, clause_groups, root);
        return root;
    }

    // ---- copular clause: the only verb material is *be*.
    let all_be = clause_groups
        .iter()
        .flat_map(|&gi| groups[gi].start..=groups[gi].end)
        .all(|k| lexicon::is_be(st.lower(k)));
    if all_be {
        let be = g0.main;
        return build_copular_clause(st, spans, relativizers, be);
    }

    // ---- verbal clause ----------------------------------------------------
    let root = resolve_group(st, groups, clause_groups, clause_groups[0]);
    let passive = is_passive_group(st, groups, clause_groups, clause_groups[0]);
    let subj_rel = if passive { DepRel::Nsubjpass } else { DepRel::Nsubj };

    // Subject: for "wh + verb…" the wh word; for "wh… aux NP verb" the NP
    // between auxiliary and verb; otherwise the NP before the first verb.
    let first_verb_tok = g0.start;
    let wh0 = (0..first_verb_tok).find(|&i| st.pos(i).is_wh() && !st.attached(i));
    let fronted_wh_span = spans.iter().copied().find(|s| {
        s.end < first_verb_tok
            && (st.pos(s.start).is_wh() || (s.start > 0 && st.pos(s.start - 1).is_wh()))
    });

    // NP strictly between the split auxiliary and the lexical verb → that is
    // the subject ("did *Antonio Banderas* star").
    let subj_between =
        spans.iter().copied().find(|s| s.start > g0.end && s.end < root && !st.attached(s.head));

    if let Some(s) = subj_between {
        st.attach(s.head, root, subj_rel);
        // A fronted wh-NP then becomes object material; PP attachment or
        // object attachment below picks it up.
    } else if let Some(s) =
        spans.iter().copied().find(|s| s.end < first_verb_tok && !st.attached(s.head))
    {
        // Plain declarative-order subject NP ("Sean Parnell is …" handled in
        // copular branch; here: "the Weser flows …").
        st.attach(s.head, root, subj_rel);
    } else if let Some(w) = wh0 {
        st.attach(w, root, if st.pos(w) == Pos::Wrb { DepRel::Advmod } else { subj_rel });
    }
    let _ = fronted_wh_span;

    coordinate_groups(st, groups, clause_groups, root);
    root
}

/// Attach remaining clause verb groups to `root` as conj/cc.
fn coordinate_groups(st: &mut State, groups: &[VerbGroup], clause_groups: &[usize], root: usize) {
    for &gi in clause_groups {
        let g = groups[gi];
        if g.main == root || st.attached(g.main) {
            continue;
        }
        if prev_is_conjunction(st, g.start) {
            attach_coordination(st, root, &g, groups);
        }
    }
}

/// Copular clauses. Conventions (consistent within this system):
/// the predicate (nominal or adjectival) is the root; `cop` links the *be*
/// form to it; the subject gets `nsubj`.
fn build_copular_clause(
    st: &mut State,
    spans: &[Span],
    relativizers: &[usize],
    be: usize,
) -> usize {
    let n = st.tokens.len();
    let in_main = |p: usize| clause_of(relativizers, p) == 0;

    // "How tall is X?" — predicate adjective before the copula.
    if be >= 1 && st.pos(be - 1).is_adjective() && !st.attached(be - 1) {
        let pred = be - 1;
        st.attach(be, pred, DepRel::Cop);
        if pred >= 1 && st.pos(pred - 1) == Pos::Wrb {
            st.attach(pred - 1, pred, DepRel::Advmod);
        }
        if let Some(s) = spans.iter().find(|s| s.start > be && in_main(s.start)) {
            st.attach(s.head, pred, DepRel::Nsubj);
        }
        return pred;
    }

    // Yes/no: copula is token 0 ("Is Michelle Obama the wife of …?").
    if be == 0 {
        let subj = spans.iter().find(|s| s.start >= 1 && in_main(s.start)).copied();
        let pred = spans
            .iter()
            .copied()
            .find(|s| subj.is_some_and(|sub| s.start > sub.end) && in_main(s.start));
        match (subj, pred) {
            (Some(sub), Some(pr)) => {
                st.attach(be, pr.head, DepRel::Cop);
                st.attach(sub.head, pr.head, DepRel::Nsubj);
                return pr.head;
            }
            (Some(sub), None) => {
                st.attach(be, sub.head, DepRel::Cop);
                return sub.head;
            }
            _ => return be,
        }
    }

    // wh + be + NP ("Who is the mayor of Berlin?", "What is the capital…"),
    // or NP + be + NP ("Sean Parnell is the governor of …").
    let subj_wh = (0..be).find(|&i| st.pos(i).is_wh() && !st.attached(i) && st.lower(i) != "how");
    let subj_np = spans.iter().copied().find(|s| s.end < be && !st.attached(s.head));
    // A span directly preceded by a preposition is a pobj, not the
    // predicate nominal ("are *in Munich*").
    let pred_np = spans.iter().copied().find(|s| {
        s.start > be
            && in_main(s.start)
            && !st.attached(s.head)
            && !(s.start > 0 && matches!(st.pos(s.start - 1), Pos::In | Pos::To))
    });

    match (subj_wh, subj_np, pred_np) {
        // "Who is the mayor of Berlin?" — wh subject, nominal predicate.
        (Some(w), None, Some(pr)) => {
            st.attach(be, pr.head, DepRel::Cop);
            st.attach(
                w,
                pr.head,
                if st.pos(w) == Pos::Wrb { DepRel::Advmod } else { DepRel::Nsubj },
            );
            pr.head
        }
        // "Sean Parnell is the governor of which state?" — NP subject.
        (_, Some(sub), Some(pr)) => {
            st.attach(be, pr.head, DepRel::Cop);
            st.attach(sub.head, pr.head, DepRel::Nsubj);
            pr.head
        }
        // Predicate NP with no subject material ("Are there lakes?" and
        // other degenerate inputs): root on the predicate nominal.
        (None, None, Some(pr)) => {
            st.attach(be, pr.head, DepRel::Cop);
            pr.head
        }
        // "Which cities are in Germany?" — wh-NP subject, PP predicate:
        // root stays on the copula, subject attaches there.
        (w, sub, None) => {
            let subject = sub.map(|s| s.head).or(w);
            if let Some(s) = subject {
                // Root must not dangle: keep `be` as root.
                st.attach(s, be, DepRel::Nsubj);
            }
            let _ = n;
            be
        }
    }
}

/// Attach prepositions: `prep` to the nearest preceding noun head (when the
/// preposition directly follows that NP) or otherwise to the nearest
/// preceding verb / the root; `pobj` to the following NP head. Handles
/// fronting ("In which movies did … star") and stranding ("… star in?") so
/// that both yield `prep(star, in) + pobj(in, movies)`.
fn attach_prepositions(st: &mut State, spans: &[Span], root: usize) {
    let n = st.tokens.len();
    for i in 0..n {
        if st.attached(i) || !matches!(st.pos(i), Pos::In | Pos::To) {
            continue;
        }
        // pobj: head of the NP starting right after the preposition, or a
        // standalone wh word.
        let pobj = spans
            .iter()
            .find(|s| s.start == i + 1)
            .map(|s| s.head)
            .or_else(|| (i + 1 < n && st.pos(i + 1).is_wh()).then_some(i + 1))
            .or_else(|| (i + 1 < n && st.pos(i + 1) == Pos::Prp).then_some(i + 1));

        // Governor: the token right before the preposition if it is a noun
        // head or verb; otherwise the nearest preceding verb; otherwise the
        // root (covers sentence-initial fronted PPs).
        let governor = if i == 0 {
            Some(root)
        } else if st.pos(i - 1).is_noun() || st.pos(i - 1).is_verb() || st.pos(i - 1).is_adjective()
        {
            // Attach to the *head* of the NP if the preceding token is
            // inside one.
            Some(spans.iter().find(|s| s.start < i && i - 1 <= s.end).map_or(i - 1, |s| s.head))
        } else {
            (0..i).rev().find(|&k| st.pos(k).is_verb()).or(Some(root))
        };

        let Some(gov) = governor else { continue };
        // A copula or auxiliary is never a content governor; climb to its
        // lexical head ("are in Munich" → the clause root).
        let gov = if matches!(st.rels[gov], DepRel::Cop | DepRel::Aux | DepRel::Auxpass) {
            st.heads[gov].unwrap_or(root)
        } else {
            gov
        };
        let gov = resolve_to_attached_head(st, gov, root);
        if gov == i {
            continue;
        }
        st.attach(i, gov, DepRel::Prep);

        match pobj {
            Some(obj) if !st.attached(obj) && obj != i => {
                st.attach(obj, i, DepRel::Pobj);
            }
            _ => {
                // Stranded preposition: take the fronted unattached wh-NP.
                if let Some(s) = spans.iter().find(|s| s.end < i && !st.attached(s.head)) {
                    st.attach(s.head, i, DepRel::Pobj);
                } else if let Some(w) = (0..i).find(|&k| st.pos(k).is_wh() && !st.attached(k)) {
                    st.attach(w, i, DepRel::Pobj);
                }
            }
        }
    }
}

/// Walk up from `x` until an attached node (or the root) is found — used so
/// a preposition never attaches below an unattached token.
fn resolve_to_attached_head(st: &State, x: usize, root: usize) -> usize {
    if x == root || st.attached(x) {
        x
    } else {
        root
    }
}

/// Attach every remaining NP (as dobj of the nearest preceding verb, attr of
/// a copular root, or dep of the root) and every remaining token.
fn attach_leftovers(st: &mut State, spans: &[Span], root: usize) {
    let n = st.tokens.len();
    // NP heads first.
    for s in spans {
        if st.attached(s.head) || s.head == root {
            continue;
        }
        // Nearest preceding verb in the same sentence.
        let gov = (0..s.start)
            .rev()
            .find(|&k| st.pos(k).is_verb() && (st.attached(k) || k == root))
            .or_else(|| (st.pos(root).is_verb()).then_some(root));
        match gov {
            Some(v) => {
                let v = if st.pos(v).is_verb() && st.rels[v] == DepRel::Cop {
                    st.heads[v].unwrap_or(root)
                } else if st.attached(v)
                    && !matches!(st.rels[v], DepRel::Root)
                    && !is_clause_head(st, v)
                {
                    // aux attaches below its lexical verb; climb once.
                    st.heads[v].unwrap_or(v)
                } else {
                    v
                };
                if v != s.head {
                    st.attach(s.head, v, DepRel::Dobj);
                }
            }
            None => st.attach(s.head, root, DepRel::Dep),
        }
    }
    // Everything else.
    for i in 0..n {
        if !st.attached(i) && i != root {
            let rel = match st.pos(i) {
                Pos::Rb | Pos::Wrb => DepRel::Advmod,
                Pos::Cc => DepRel::Cc,
                _ => DepRel::Dep,
            };
            st.attach(i, root, rel);
        }
    }
}

/// Is `v` the head of clause-level structure (has subject/object children or
/// is a rcmod/conj)?
fn is_clause_head(st: &State, v: usize) -> bool {
    matches!(st.rels[v], DepRel::Rcmod | DepRel::Conj)
        || st.pos(v).is_verb() && st.heads[v].is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> DepTree {
        DependencyParser::new().parse(text).expect("parse")
    }

    /// Index of the first token whose lowercased text is `w`.
    fn idx(t: &DepTree, w: &str) -> usize {
        t.tokens.iter().position(|tok| tok.lower == w).unwrap_or_else(|| {
            panic!("token {w:?} not in {:?}", t.tokens.iter().map(|x| &x.text).collect::<Vec<_>>())
        })
    }

    fn rel_of(t: &DepTree, w: &str) -> (Option<usize>, DepRel) {
        let i = idx(t, w);
        (t.heads[i], t.rels[i])
    }

    #[test]
    fn running_example_passive_with_relative_clause() {
        // The paper's running example (Figure 5).
        let t = parse("Who was married to an actor that played in Philadelphia?");
        assert!(t.is_well_formed());
        let married = idx(&t, "married");
        assert_eq!(t.root, married);
        assert_eq!(rel_of(&t, "who"), (Some(married), DepRel::Nsubjpass));
        assert_eq!(rel_of(&t, "was"), (Some(married), DepRel::Auxpass));
        let to = idx(&t, "to");
        assert_eq!(rel_of(&t, "to"), (Some(married), DepRel::Prep));
        let actor = idx(&t, "actor");
        assert_eq!(t.heads[actor], Some(to));
        assert_eq!(t.rels[actor], DepRel::Pobj);
        let played = idx(&t, "played");
        assert_eq!(t.heads[played], Some(actor));
        assert_eq!(t.rels[played], DepRel::Rcmod);
        assert_eq!(rel_of(&t, "that"), (Some(played), DepRel::Nsubj));
        let in_ = idx(&t, "in");
        assert_eq!(t.heads[in_], Some(played));
        assert_eq!(rel_of(&t, "philadelphia"), (Some(in_), DepRel::Pobj));
    }

    #[test]
    fn fronting_and_stranding_produce_the_same_shape() {
        // §4.1: both orders must yield the same dependency structure.
        let a = parse("In which movies did Antonio Banderas star?");
        let b = parse("Which movies did Antonio Banderas star in?");
        for t in [&a, &b] {
            let star = idx(t, "star");
            assert_eq!(t.root, star, "{t}");
            let in_ = idx(t, "in");
            assert_eq!(t.heads[in_], Some(star), "{t}");
            assert_eq!(t.rels[in_], DepRel::Prep, "{t}");
            let movies = idx(t, "movies");
            assert_eq!(t.heads[movies], Some(in_), "{t}");
            assert_eq!(t.rels[movies], DepRel::Pobj, "{t}");
            let banderas = idx(t, "banderas");
            assert_eq!(t.heads[banderas], Some(star), "{t}");
            assert_eq!(t.rels[banderas], DepRel::Nsubj, "{t}");
            assert_eq!(rel_of(t, "did"), (Some(star), DepRel::Aux), "{t}");
            assert_eq!(rel_of(t, "antonio"), (Some(banderas), DepRel::Nn), "{t}");
        }
    }

    #[test]
    fn copular_question() {
        let t = parse("Who is the mayor of Berlin?");
        let mayor = idx(&t, "mayor");
        assert_eq!(t.root, mayor);
        assert_eq!(rel_of(&t, "who"), (Some(mayor), DepRel::Nsubj));
        assert_eq!(rel_of(&t, "is"), (Some(mayor), DepRel::Cop));
        assert_eq!(rel_of(&t, "the"), (Some(mayor), DepRel::Det));
        let of = idx(&t, "of");
        assert_eq!(t.heads[of], Some(mayor));
        assert_eq!(rel_of(&t, "berlin"), (Some(of), DepRel::Pobj));
    }

    #[test]
    fn adjectival_copular_question() {
        let t = parse("How tall is Michael Jordan?");
        let tall = idx(&t, "tall");
        assert_eq!(t.root, tall);
        assert_eq!(rel_of(&t, "how"), (Some(tall), DepRel::Advmod));
        assert_eq!(rel_of(&t, "is"), (Some(tall), DepRel::Cop));
        assert_eq!(rel_of(&t, "jordan"), (Some(tall), DepRel::Nsubj));
    }

    #[test]
    fn imperative_with_participial_modifier() {
        let t = parse("Give me all movies directed by Francis Ford Coppola.");
        let give = idx(&t, "give");
        assert_eq!(t.root, give);
        assert_eq!(rel_of(&t, "me"), (Some(give), DepRel::Iobj));
        let movies = idx(&t, "movies");
        assert_eq!(t.heads[movies], Some(give));
        assert_eq!(t.rels[movies], DepRel::Dobj);
        let directed = idx(&t, "directed");
        assert_eq!(t.heads[directed], Some(movies));
        assert_eq!(t.rels[directed], DepRel::Rcmod);
        let by = idx(&t, "by");
        assert_eq!(t.heads[by], Some(directed));
        assert_eq!(rel_of(&t, "coppola"), (Some(by), DepRel::Pobj));
    }

    #[test]
    fn yes_no_question() {
        let t = parse("Is Michelle Obama the wife of Barack Obama?");
        let wife = idx(&t, "wife");
        assert_eq!(t.root, wife);
        assert_eq!(rel_of(&t, "is"), (Some(wife), DepRel::Cop));
        let michelle_head = idx(&t, "obama"); // first Obama
        assert_eq!(t.heads[michelle_head], Some(wife));
        assert_eq!(t.rels[michelle_head], DepRel::Nsubj);
    }

    #[test]
    fn simple_wh_subject_question() {
        let t = parse("Who developed Minecraft?");
        let dev = idx(&t, "developed");
        assert_eq!(t.root, dev);
        assert_eq!(rel_of(&t, "who"), (Some(dev), DepRel::Nsubj));
        assert_eq!(rel_of(&t, "minecraft"), (Some(dev), DepRel::Dobj));
    }

    #[test]
    fn coordination_shares_the_clause() {
        let t = parse("Give me all people that were born in Vienna and died in Berlin.");
        let born = idx(&t, "born");
        let died = idx(&t, "died");
        assert_eq!(t.rels[born], DepRel::Rcmod);
        assert_eq!(t.heads[died], Some(born));
        assert_eq!(t.rels[died], DepRel::Conj);
        assert_eq!(rel_of(&t, "that"), (Some(born), DepRel::Nsubjpass));
        let in1 = t.tokens.iter().position(|x| x.lower == "in").unwrap();
        assert_eq!(t.heads[in1], Some(born));
        // second "in" attaches to "died"
        let in2 = t.tokens.iter().rposition(|x| x.lower == "in").unwrap();
        assert_eq!(t.heads[in2], Some(died));
    }

    #[test]
    fn possessive() {
        let t = parse("Who is Barack Obama's wife?");
        let wife = idx(&t, "wife");
        assert_eq!(t.root, wife);
        let obama = idx(&t, "obama");
        assert_eq!(t.heads[obama], Some(wife));
        assert_eq!(t.rels[obama], DepRel::Poss);
    }

    #[test]
    fn when_question() {
        let t = parse("When did Michael Jackson die?");
        let die = idx(&t, "die");
        assert_eq!(t.root, die);
        assert_eq!(rel_of(&t, "when"), (Some(die), DepRel::Advmod));
        assert_eq!(rel_of(&t, "jackson"), (Some(die), DepRel::Nsubj));
        assert_eq!(rel_of(&t, "did"), (Some(die), DepRel::Aux));
    }

    #[test]
    fn flow_through_question() {
        let t = parse("Which cities does the Weser flow through?");
        let flow = idx(&t, "flow");
        assert_eq!(t.root, flow);
        assert_eq!(rel_of(&t, "weser"), (Some(flow), DepRel::Nsubj));
        let through = idx(&t, "through");
        assert_eq!(t.heads[through], Some(flow));
        assert_eq!(rel_of(&t, "cities"), (Some(through), DepRel::Pobj));
    }

    #[test]
    fn np_only_input_is_rooted_at_the_np_head() {
        let t = parse("the capital of Canada");
        let capital = idx(&t, "capital");
        assert_eq!(t.root, capital);
        assert!(t.is_well_formed());
    }

    #[test]
    fn every_workload_question_parses_well_formed() {
        // A smoke sweep over Table 11-style questions.
        let questions = [
            "Who was the successor of John F. Kennedy?",
            "Who is the mayor of Berlin?",
            "Give me all members of Prodigy.",
            "Give me all cars that are produced in Germany.",
            "How tall is Michael Jordan?",
            "What is the capital of Canada?",
            "Who is the governor of Wyoming?",
            "Who was the father of Queen Elizabeth II?",
            "Sean Parnell is the governor of which U.S. state?",
            "What is the birth name of Angela Merkel?",
            "Who developed Minecraft?",
            "Give me all companies in Munich.",
            "Who founded Intel?",
            "Who is the husband of Amanda Palmer?",
            "Which cities does the Weser flow through?",
            "Which countries are connected by the Rhine?",
            "What are the nicknames of San Francisco?",
            "What is the time zone of Salt Lake City?",
            "Give me all Argentine films.",
            "Is Michelle Obama the wife of Barack Obama?",
            "When did Michael Jackson die?",
            "List the children of Margaret Thatcher.",
            "Who was called Scarface?",
            "Which books by Kerouac were published by Viking Press?",
            "How high is the Mount Everest?",
            "Who created the comic Captain America?",
            "What is the largest city in Australia?",
            "In which city was the former Dutch queen Juliana buried?",
            "Which country does the creator of Miffy come from?",
            "Who produces Orangina?",
            "Who is the youngest player in the Premier League?",
            "Give me all launch pads operated by NASA.",
        ];
        for q in questions {
            let t = parse(q);
            assert!(t.is_well_formed(), "malformed tree for {q:?}:\n{t}");
        }
    }
}
