//! Tokenization.

use crate::lexicon;
use crate::pos::{self, Pos};

/// One token of the question, with its surface form, lowercased form,
/// lemma and POS tag.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Original surface text.
    pub text: String,
    /// Lowercased surface text.
    pub lower: String,
    /// Lemma (lowercased base form).
    pub lemma: String,
    /// Part-of-speech tag.
    pub pos: Pos,
}

/// Split question text into word tokens.
///
/// Rules: split on whitespace; detach sentence-final and clause punctuation
/// (`? . , !`); keep internal hyphens, periods in abbreviations (`U.S.`),
/// digits and apostrophes (`'s` is detached as its own token).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let mut word = raw;
        // Strip leading punctuation.
        while let Some(c) = word.chars().next() {
            if matches!(c, '"' | '(' | '\'' | '“') {
                word = &word[c.len_utf8()..];
            } else {
                break;
            }
        }
        // Detach trailing punctuation (repeatedly).
        let mut trailing = Vec::new();
        while let Some(c) = word.chars().last() {
            let is_abbrev_dot = c == '.' && word.len() > 1 && word[..word.len() - 1].contains('.');
            if matches!(c, ')' | '"' | '”' | '\'') {
                // Closing quotes/brackets are dropped entirely.
                word = &word[..word.len() - c.len_utf8()];
            } else if matches!(c, '?' | '!' | ',' | ';' | ':') || (c == '.' && !is_abbrev_dot) {
                trailing.push(c.to_string());
                word = &word[..word.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        if !word.is_empty() {
            // Detach possessive 's.
            if let Some(stem) = word.strip_suffix("'s").or_else(|| word.strip_suffix("’s")) {
                if !stem.is_empty() {
                    out.push(stem.to_owned());
                    out.push("'s".to_owned());
                } else {
                    out.push(word.to_owned());
                }
            } else {
                out.push(word.to_owned());
            }
        }
        out.extend(trailing.into_iter().rev());
    }
    out
}

/// Tokenize and tag a question, dropping punctuation tokens.
pub fn analyze(text: &str) -> Vec<Token> {
    let words = tokenize(text);
    let mut out = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        let lower = w.to_lowercase();
        let prev_is_dt_or_jj = out
            .last()
            .is_some_and(|t: &Token| matches!(t.pos, Pos::Dt | Pos::Jj | Pos::Jjr | Pos::Jjs));
        let tag = pos::tag_word(w, &lower, i == 0, prev_is_dt_or_jj);
        if tag == Pos::Punct {
            continue;
        }
        let lemma = lexicon::lemmatize(&lower, tag);
        out.push(Token { text: w.clone(), lower, lemma, pos: tag });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_final_question_mark() {
        assert_eq!(tokenize("Who is it?"), vec!["Who", "is", "it", "?"]);
    }

    #[test]
    fn detaches_possessive() {
        assert_eq!(tokenize("Obama's wife"), vec!["Obama", "'s", "wife"]);
    }

    #[test]
    fn keeps_abbreviations() {
        assert_eq!(tokenize("a U.S. state?"), vec!["a", "U.S.", "state", "?"]);
    }

    #[test]
    fn strips_quotes_and_commas() {
        assert_eq!(
            tokenize("born in Vienna, and died"),
            vec!["born", "in", "Vienna", ",", "and", "died"]
        );
        assert_eq!(tokenize("called \"Scarface\"?"), vec!["called", "Scarface", "?"]);
    }

    #[test]
    fn analyze_drops_punctuation_and_lemmatizes() {
        let toks = analyze("Who was married to an actor?");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Who", "was", "married", "to", "an", "actor"]);
        assert_eq!(toks[1].lemma, "be");
        assert_eq!(toks[2].lemma, "marry");
        assert_eq!(toks[2].pos, Pos::Vbn);
    }

    #[test]
    fn analyze_tags_proper_nouns_mid_sentence() {
        let toks = analyze("did Antonio Banderas star in Philadelphia?");
        assert_eq!(toks[1].pos, Pos::Nnp);
        assert_eq!(toks[2].pos, Pos::Nnp);
        assert_eq!(toks[5].pos, Pos::Nnp);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(analyze("  ").is_empty());
    }
}
