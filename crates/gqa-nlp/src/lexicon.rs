//! Word lists and the lemmatizer.
//!
//! Closed-class words (determiners, prepositions, auxiliaries, wh-words) are
//! enumerated exhaustively; open-class words are seeded with the vocabulary
//! of the QALD-style workload and fall back to suffix rules.

use crate::pos::Pos;

/// Tag for closed-class words; `None` if the word is open-class.
pub fn closed_class(lower: &str) -> Option<Pos> {
    Some(match lower {
        "the" | "a" | "an" | "all" | "every" | "each" | "some" | "any" | "no" | "both" | "this"
        | "these" | "those" => Pos::Dt,
        // "that" is tagged as a wh-determiner: in the question workload it is
        // almost always a relativizer ("an actor that played in …").
        "which" | "that" | "whatever" | "whichever" => Pos::Wdt,
        "who" | "whom" | "what" | "whose" => Pos::Wp,
        "when" | "where" | "why" | "how" => Pos::Wrb,
        "in" | "of" | "on" | "by" | "at" | "from" | "with" | "for" | "through" | "about"
        | "into" | "after" | "before" | "between" | "during" | "as" | "near" | "under" | "over"
        | "behind" | "without" | "than" => Pos::In,
        "to" => Pos::To,
        "and" | "or" | "but" | "nor" => Pos::Cc,
        "is" | "has" | "does" => Pos::Vbz,
        "are" | "have" | "do" => Pos::Vbp,
        "was" | "were" | "did" | "had" => Pos::Vbd,
        "be" => Pos::Vb,
        "been" => Pos::Vbn,
        "being" => Pos::Vbg,
        "will" | "would" | "can" | "could" | "shall" | "should" | "may" | "might" | "must" => {
            Pos::Md
        }
        "i" | "you" | "he" | "she" | "it" | "we" | "they" | "me" | "him" | "her" | "us"
        | "them" => Pos::Prp,
        "my" | "your" | "his" | "its" | "our" | "their" => Pos::PrpDollar,
        "not" | "n't" | "also" | "only" | "still" | "currently" => Pos::Rb,
        // Periphrastic superlative markers head "most populous"-style NPs.
        "most" | "least" => Pos::Jjs,
        // Comparative quantifiers ("more than 2000000 inhabitants").
        "more" | "fewer" => Pos::Jjr,
        // "many"/"much" behave adjectivally inside NPs ("how many companies").
        "many" | "much" => Pos::Jj,
        "'s" => Pos::Pos,
        _ => return None,
    })
}

/// Tag for known open-class words of the question workload.
pub fn open_class(lower: &str) -> Option<Pos> {
    Some(match lower {
        // Base verbs.
        "play" | "star" | "act" | "appear" | "marry" | "die" | "bear" | "direct" | "produce"
        | "develop" | "found" | "create" | "write" | "publish" | "flow" | "connect" | "operate"
        | "live" | "locate" | "own" | "win" | "give" | "list" | "show" | "name" | "tell"
        | "call" | "come" | "lead" | "govern" | "border" | "cross" | "run" | "make" | "succeed"
        | "head" | "release" => Pos::Vb,
        // Present 3sg.
        "plays" | "stars" | "flows" | "produces" | "owns" | "lives" | "borders" | "leads"
        | "crosses" | "connects" | "comes" | "operates" | "heads" => Pos::Vbz,
        // Past forms (VBD; the parser re-reads VBD/VBN from context).
        "played" | "starred" | "died" | "directed" | "produced" | "developed" | "founded"
        | "created" | "wrote" | "won" | "led" | "governed" | "came" | "succeeded" | "released" => {
            Pos::Vbd
        }
        // Participles.
        "married" | "born" | "written" | "located" | "called" | "made" | "operated" | "buried"
        | "headquartered" | "published" | "owned" | "named" | "fed" => Pos::Vbn,
        "starring" | "flowing" | "living" => Pos::Vbg,
        // Common nouns of the workload.
        "actor" | "actress" | "film" | "movie" | "city" | "country" | "state" | "capital"
        | "mayor" | "governor" | "wife" | "husband" | "spouse" | "father" | "mother" | "child"
        | "daughter" | "son" | "member" | "company" | "car" | "book" | "river" | "mountain"
        | "player" | "team" | "president" | "successor" | "creator" | "height" | "population"
        | "timezone" | "nickname" | "uncle" | "aunt" | "band" | "author" | "director"
        | "producer" | "founder" | "developer" | "comic" | "launch" | "pad" | "headquarters"
        | "queen" | "king" | "person" | "people" | "place" | "area" | "zone" | "time" | "birth"
        | "sister" | "brother" | "leader" | "language" | "currency" | "anthem" | "lake" => Pos::Nn,
        "actors" | "films" | "movies" | "cities" | "countries" | "states" | "cars" | "books"
        | "rivers" | "members" | "companies" | "players" | "children" | "nicknames" | "pads"
        | "teams" | "languages" | "daughters" | "sons" | "wives" | "husbands" | "bands"
        | "authors" | "lakes" | "mountains" => Pos::Nns,
        // Adjectives of the workload.
        "tall" | "high" | "big" | "large" | "small" | "long" | "old" | "young" | "former"
        | "dutch" | "argentine" | "german" | "american" | "british" | "french" => Pos::Jj,
        "taller" | "higher" | "bigger" | "larger" | "older" | "younger" | "longer" => Pos::Jjr,
        "tallest" | "highest" | "biggest" | "largest" | "smallest" | "longest" | "oldest"
        | "youngest" | "first" | "last" => Pos::Jjs,
        _ => return None,
    })
}

/// Is the word a form of *be*?
pub fn is_be(lower: &str) -> bool {
    matches!(lower, "be" | "is" | "are" | "was" | "were" | "been" | "being" | "am")
}

/// Is the word a form of *do* (question auxiliary)?
pub fn is_do(lower: &str) -> bool {
    matches!(lower, "do" | "does" | "did")
}

/// Is the word a form of *have*?
pub fn is_have(lower: &str) -> bool {
    matches!(lower, "have" | "has" | "had")
}

/// "Light" words for Rule 1 of §4.1.2 (embedding extension): prepositions,
/// auxiliaries, determiners, the infinitive marker.
pub fn is_light_word(lower: &str) -> bool {
    is_be(lower)
        || is_do(lower)
        || is_have(lower)
        || matches!(closed_class(lower), Some(Pos::In | Pos::To | Pos::Dt | Pos::Md))
}

/// Irregular-verb and irregular-plural lemma table.
fn irregular(lower: &str) -> Option<&'static str> {
    Some(match lower {
        "is" | "are" | "was" | "were" | "been" | "being" | "am" => "be",
        "has" | "had" => "have",
        "did" | "does" | "done" => "do",
        "wrote" | "written" => "write",
        "won" => "win",
        "led" => "lead",
        "came" => "come",
        "made" => "make",
        "born" | "bore" => "bear",
        "fed" => "feed",
        "children" => "child",
        "people" => "person",
        "wives" => "wife",
        "cities" => "city",
        "countries" => "country",
        "companies" => "company",
        "movies" => "movie",
        "bodies" => "body",
        "men" => "man",
        "women" => "woman",
        "died" | "dying" => "die",
        "lying" => "lie",
        _ => return None,
    })
}

/// Lemmatize a lowercased word given its POS tag.
///
/// Irregular table first, then suffix rules (`-ies → -y`, `-es → -e`/∅,
/// `-s → ∅` for nouns/verbs; `-ied → -y`, `-ed → ∅`, `-ing → ∅` with
/// consonant-doubling repair for verbs).
pub fn lemmatize(lower: &str, pos: Pos) -> String {
    if let Some(l) = irregular(lower) {
        return l.to_owned();
    }
    let strip_plural = |w: &str| -> String {
        if let Some(stem) = w.strip_suffix("ies") {
            if stem.len() >= 2 {
                return format!("{stem}y");
            }
        }
        if let Some(stem) = w.strip_suffix("sses") {
            return format!("{stem}ss");
        }
        if let Some(stem) = w.strip_suffix("shes").or_else(|| w.strip_suffix("ches")) {
            return format!("{}{}", stem, &w[w.len() - 4..w.len() - 2]);
        }
        if w.ends_with("ss") || w.ends_with("us") {
            return w.to_owned();
        }
        if let Some(stem) = w.strip_suffix('s') {
            if stem.len() >= 2 {
                return stem.to_owned();
            }
        }
        w.to_owned()
    };
    match pos {
        Pos::Nns => strip_plural(lower),
        Pos::Vbz => strip_plural(lower),
        Pos::Vbd | Pos::Vbn => {
            if let Some(stem) = lower.strip_suffix("ied") {
                return format!("{stem}y");
            }
            if let Some(stem) = lower.strip_suffix("ed") {
                return undouble(stem, lower);
            }
            lower.to_owned()
        }
        Pos::Vbg => {
            if let Some(stem) = lower.strip_suffix("ing") {
                return undouble(stem, lower);
            }
            lower.to_owned()
        }
        _ => lower.to_owned(),
    }
}

/// Repair stems after stripping `-ed`/`-ing`: `starr → star`, `creat →
/// create` (re-add the silent `e` when the stem ends consonant+consonant is
/// wrong — we use a small heuristic keyed on known doublings and `-at`, `-iv`
/// `-uc` endings).
fn undouble(stem: &str, _orig: &str) -> String {
    let bytes = stem.as_bytes();
    let n = bytes.len();
    if n >= 2 && bytes[n - 1] == bytes[n - 2] && !matches!(bytes[n - 1], b'l' | b's') {
        // starred → star, planned → plan (but not called → call).
        return stem[..n - 1].to_owned();
    }
    // Silent-e restoration for common latinate endings: created → create,
    // produced → produce, lived → live, located → locate.
    if stem.ends_with("at")
        || stem.ends_with("uc")
        || stem.ends_with("iv")
        || stem.ends_with("ag")
        || stem.ends_with("in")
        || stem.ends_with("ir")
        || stem.ends_with("as")
        || stem.ends_with("os")
        || stem.ends_with("us")
        || stem.ends_with("es")
    {
        return format!("{stem}e");
    }
    stem.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_lemmas() {
        assert_eq!(lemmatize("was", Pos::Vbd), "be");
        assert_eq!(lemmatize("is", Pos::Vbz), "be");
        assert_eq!(lemmatize("born", Pos::Vbn), "bear");
        assert_eq!(lemmatize("children", Pos::Nns), "child");
        assert_eq!(lemmatize("wrote", Pos::Vbd), "write");
    }

    #[test]
    fn regular_verb_lemmas() {
        assert_eq!(lemmatize("played", Pos::Vbd), "play");
        assert_eq!(lemmatize("married", Pos::Vbn), "marry");
        assert_eq!(lemmatize("starred", Pos::Vbd), "star");
        assert_eq!(lemmatize("starring", Pos::Vbg), "star");
        assert_eq!(lemmatize("directed", Pos::Vbn), "direct");
        assert_eq!(lemmatize("created", Pos::Vbd), "create");
        assert_eq!(lemmatize("produced", Pos::Vbn), "produce");
        assert_eq!(lemmatize("located", Pos::Vbn), "locate");
        assert_eq!(lemmatize("called", Pos::Vbn), "call");
        assert_eq!(lemmatize("founded", Pos::Vbd), "found");
    }

    #[test]
    fn plural_lemmas() {
        assert_eq!(lemmatize("movies", Pos::Nns), "movie");
        assert_eq!(lemmatize("cars", Pos::Nns), "car");
        assert_eq!(lemmatize("cities", Pos::Nns), "city");
        assert_eq!(lemmatize("actresses", Pos::Nns), "actress");
        assert_eq!(lemmatize("glass", Pos::Nns), "glass");
    }

    #[test]
    fn third_person_lemmas() {
        assert_eq!(lemmatize("plays", Pos::Vbz), "play");
        assert_eq!(lemmatize("flows", Pos::Vbz), "flow");
        assert_eq!(lemmatize("crosses", Pos::Vbz), "cross");
    }

    #[test]
    fn light_words() {
        for w in ["was", "did", "to", "in", "the", "of", "a", "can"] {
            assert!(is_light_word(w), "{w} should be light");
        }
        for w in ["married", "actor", "who"] {
            assert!(!is_light_word(w), "{w} should not be light");
        }
    }

    #[test]
    fn be_do_have() {
        assert!(is_be("were"));
        assert!(is_do("does"));
        assert!(is_have("had"));
        assert!(!is_be("do"));
    }

    #[test]
    fn open_class_hits() {
        assert_eq!(open_class("actor"), Some(Pos::Nn));
        assert_eq!(open_class("movies"), Some(Pos::Nns));
        assert_eq!(open_class("youngest"), Some(Pos::Jjs));
        assert_eq!(open_class("zzzz"), None);
    }

    #[test]
    fn noun_lemma_is_identity_for_singular() {
        assert_eq!(lemmatize("actor", Pos::Nn), "actor");
        assert_eq!(lemmatize("berlin", Pos::Nnp), "berlin");
    }
}
