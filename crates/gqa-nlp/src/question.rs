//! Question-level analysis: which node is the answer variable, what shape
//! the answer takes, and whether the question needs aggregation.
//!
//! The paper's system selects answers from the binding of the wh-vertex in
//! the matched subgraph; aggregation questions (Table 10) are a failure
//! class it leaves to future work — we detect them here and (optionally,
//! see `gqa-core::aggregates`) answer them.

use crate::deprel::DepRel;
use crate::pos::Pos;
use crate::tree::DepTree;

/// What kind of value the question expects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnswerShape {
    /// A set of resources ("Give me all …", "Which …").
    List,
    /// A person ("Who …").
    Person,
    /// A place ("Where …", "In which city …").
    Place,
    /// A date ("When …").
    Date,
    /// A number obtained by counting ("How many …").
    Count,
    /// A literal value ("How tall …", "What is the population …").
    Literal,
    /// Yes/no ("Is Michelle Obama the wife of …").
    Boolean,
    /// Anything else.
    Other,
}

/// An aggregation marker found in the question.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Aggregation {
    /// Superlative ("youngest", "largest"): order by some predicate and
    /// take the extremum. Carries the superlative's node index.
    Superlative(usize),
    /// "How many": count the matches.
    Count,
    /// Numeric comparison ("more than 2000000 inhabitants"): filter by the
    /// quantity bound at `node` (the measured noun's tree index).
    Comparison {
        /// Index of the quantity noun ("inhabitants").
        node: usize,
        /// True for more/over/greater, false for less/fewer/under.
        greater: bool,
        /// The threshold.
        value: f64,
    },
}

/// Result of analyzing one parsed question.
#[derive(Clone, Debug)]
pub struct QuestionAnalysis {
    /// The node whose binding answers the question (wh word, wh-determined
    /// noun, or the object of an imperative).
    pub target: usize,
    /// Expected answer shape.
    pub shape: AnswerShape,
    /// Aggregation, if the question needs one.
    pub aggregation: Option<Aggregation>,
}

impl QuestionAnalysis {
    /// Analyze a dependency tree.
    pub fn of(tree: &DepTree) -> QuestionAnalysis {
        let n = tree.len();
        let lower0 = tree.tokens.first().map(|t| t.lower.as_str()).unwrap_or("");

        // "how many X" → count over X.
        let how_many = (0..n.saturating_sub(1))
            .find(|&i| tree.tokens[i].lower == "how" && tree.tokens[i + 1].lower == "many");
        if let Some(i) = how_many {
            // Target: the noun the "many" modifies, or the next noun.
            let target = (i + 2..n).find(|&j| tree.pos(j).is_noun()).unwrap_or(tree.root);
            return QuestionAnalysis {
                target,
                shape: AnswerShape::Count,
                aggregation: Some(Aggregation::Count),
            };
        }

        // Numeric comparison: "more|less (than) <number> <noun>".
        let comparison = (0..n).find_map(|i| {
            let w = tree.tokens[i].lower.as_str();
            let greater = matches!(w, "more" | "over" | "greater" | "above");
            let less = matches!(w, "less" | "fewer" | "under" | "below");
            if !greater && !less {
                return None;
            }
            // Optional "than", then a number, then the measured noun.
            let mut j = i + 1;
            if j < n && tree.tokens[j].lower == "than" {
                j += 1;
            }
            let value = tree.tokens.get(j).and_then(|t| t.lower.parse::<f64>().ok())?;
            let node = (j + 1..n).find(|&k| tree.pos(k).is_noun())?;
            Some(Aggregation::Comparison { node, greater, value })
        });

        // Superlative anywhere → aggregation marker (answered only when the
        // aggregates extension is enabled, mirroring Table 10).
        let superlative = comparison
            .or_else(|| (0..n).find(|&i| tree.pos(i) == Pos::Jjs).map(Aggregation::Superlative));

        // Boolean: the sentence starts with a copula or do-auxiliary.
        if matches!(lower0, "is" | "are" | "was" | "were" | "does" | "do" | "did") {
            let target = tree.root;
            return QuestionAnalysis {
                target,
                shape: AnswerShape::Boolean,
                aggregation: superlative,
            };
        }

        // wh-questions.
        if let Some(w) = (0..n).find(|&i| tree.pos(i).is_wh() && tree.tokens[i].lower != "that") {
            let lower = tree.tokens[w].lower.as_str();
            // which/what + noun: the determined noun is the variable.
            let target = if tree.rels[w] == DepRel::Det { tree.parent(w).unwrap_or(w) } else { w };
            let shape = match lower {
                "who" | "whom" | "whose" => AnswerShape::Person,
                "where" => AnswerShape::Place,
                "when" => AnswerShape::Date,
                "how" => AnswerShape::Literal, // "how tall/high"
                _ => AnswerShape::List,
            };
            return QuestionAnalysis { target, shape, aggregation: superlative };
        }

        // Imperatives: target = dobj of the root verb.
        if tree.pos(tree.root).is_verb() {
            if let Some(obj) = tree.children_via(tree.root, DepRel::Dobj).next() {
                return QuestionAnalysis {
                    target: obj,
                    shape: AnswerShape::List,
                    aggregation: superlative,
                };
            }
        }

        QuestionAnalysis { target: tree.root, shape: AnswerShape::Other, aggregation: superlative }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::DependencyParser;

    fn analyze(q: &str) -> (DepTree, QuestionAnalysis) {
        let t = DependencyParser::new().parse(q).unwrap();
        let a = QuestionAnalysis::of(&t);
        (t, a)
    }

    #[test]
    fn who_question_targets_wh() {
        let (t, a) = analyze("Who is the mayor of Berlin?");
        assert_eq!(t.tokens[a.target].lower, "who");
        assert_eq!(a.shape, AnswerShape::Person);
        assert!(a.aggregation.is_none());
    }

    #[test]
    fn which_noun_targets_the_noun() {
        let (t, a) = analyze("Which cities does the Weser flow through?");
        assert_eq!(t.tokens[a.target].lower, "cities");
        assert_eq!(a.shape, AnswerShape::List);
    }

    #[test]
    fn imperative_targets_dobj() {
        let (t, a) = analyze("Give me all members of Prodigy.");
        assert_eq!(t.tokens[a.target].lower, "members");
        assert_eq!(a.shape, AnswerShape::List);
    }

    #[test]
    fn boolean_detection() {
        let (_, a) = analyze("Is Michelle Obama the wife of Barack Obama?");
        assert_eq!(a.shape, AnswerShape::Boolean);
    }

    #[test]
    fn when_question_is_date() {
        let (t, a) = analyze("When did Michael Jackson die?");
        assert_eq!(a.shape, AnswerShape::Date);
        assert_eq!(t.tokens[a.target].lower, "when");
    }

    #[test]
    fn how_tall_is_literal() {
        let (_, a) = analyze("How tall is Michael Jordan?");
        assert_eq!(a.shape, AnswerShape::Literal);
    }

    #[test]
    fn how_many_is_count_aggregation() {
        let (t, a) = analyze("How many companies are in Munich?");
        assert_eq!(a.shape, AnswerShape::Count);
        assert_eq!(a.aggregation, Some(Aggregation::Count));
        assert_eq!(t.tokens[a.target].lower, "companies");
    }

    #[test]
    fn comparison_is_flagged() {
        let (t, a) = analyze("Which cities have more than 2000000 inhabitants?");
        match a.aggregation {
            Some(Aggregation::Comparison { node, greater, value }) => {
                assert!(greater);
                assert_eq!(value, 2_000_000.0);
                assert_eq!(t.tokens[node].lower, "inhabitants");
            }
            other => panic!("expected comparison, got {other:?}"),
        }
        assert_eq!(t.tokens[a.target].lower, "cities");
        let (_, b) = analyze("Which cities have fewer than 2000000 inhabitants?");
        assert!(matches!(b.aggregation, Some(Aggregation::Comparison { greater: false, .. })));
    }

    #[test]
    fn superlative_is_flagged() {
        let (t, a) = analyze("Who is the youngest player in the Premier League?");
        match a.aggregation {
            Some(Aggregation::Superlative(i)) => assert_eq!(t.tokens[i].lower, "youngest"),
            other => panic!("expected superlative, got {other:?}"),
        }
    }
}
