//! Penn-Treebank-style part-of-speech tags and the tagger.

use crate::lexicon;

/// The POS tag set used by the parser (a pragmatic Penn Treebank subset).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Pos {
    /// Common noun, singular (`actor`).
    Nn,
    /// Common noun, plural (`movies`).
    Nns,
    /// Proper noun (`Berlin`, `Antonio`).
    Nnp,
    /// Base-form verb (`star`, `give`).
    Vb,
    /// Past-tense verb (`played`, `was`).
    Vbd,
    /// 3rd-person-singular present verb (`plays`, `is`).
    Vbz,
    /// Non-3rd present verb (`play`, `are`).
    Vbp,
    /// Past participle (`married`, `born`).
    Vbn,
    /// Gerund (`starring`).
    Vbg,
    /// Modal (`can`, `will`).
    Md,
    /// Preposition / subordinating conjunction (`in`, `of`, `by`).
    In,
    /// `to` as infinitive marker or preposition.
    To,
    /// Determiner (`the`, `a`, `all`).
    Dt,
    /// Wh-determiner (`which`, `what` before a noun).
    Wdt,
    /// Wh-pronoun (`who`, `what`, `whom`).
    Wp,
    /// Wh-adverb (`when`, `where`, `how`).
    Wrb,
    /// Adjective (`tall`, `Argentine`).
    Jj,
    /// Comparative adjective (`taller`).
    Jjr,
    /// Superlative adjective (`tallest`, `youngest`).
    Jjs,
    /// Adverb (`also`).
    Rb,
    /// Personal pronoun (`me`, `it`).
    Prp,
    /// Possessive pronoun (`his`).
    PrpDollar,
    /// Cardinal number.
    Cd,
    /// Coordinating conjunction (`and`, `or`).
    Cc,
    /// Possessive marker `'s`.
    Pos,
    /// Punctuation.
    Punct,
    /// Anything unrecognized.
    Fw,
}

impl Pos {
    /// Any verbal tag.
    pub fn is_verb(self) -> bool {
        matches!(self, Pos::Vb | Pos::Vbd | Pos::Vbz | Pos::Vbp | Pos::Vbn | Pos::Vbg)
    }

    /// Any nominal tag.
    pub fn is_noun(self) -> bool {
        matches!(self, Pos::Nn | Pos::Nns | Pos::Nnp)
    }

    /// Any wh tag.
    pub fn is_wh(self) -> bool {
        matches!(self, Pos::Wp | Pos::Wdt | Pos::Wrb)
    }

    /// Any adjectival tag.
    pub fn is_adjective(self) -> bool {
        matches!(self, Pos::Jj | Pos::Jjr | Pos::Jjs)
    }

    /// Words a noun phrase may contain before its head.
    pub fn is_np_internal(self) -> bool {
        self.is_noun() || self.is_adjective() || matches!(self, Pos::Cd)
    }

    /// The Penn tag text (`"NNS"`, `"VBD"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Pos::Nn => "NN",
            Pos::Nns => "NNS",
            Pos::Nnp => "NNP",
            Pos::Vb => "VB",
            Pos::Vbd => "VBD",
            Pos::Vbz => "VBZ",
            Pos::Vbp => "VBP",
            Pos::Vbn => "VBN",
            Pos::Vbg => "VBG",
            Pos::Md => "MD",
            Pos::In => "IN",
            Pos::To => "TO",
            Pos::Dt => "DT",
            Pos::Wdt => "WDT",
            Pos::Wp => "WP",
            Pos::Wrb => "WRB",
            Pos::Jj => "JJ",
            Pos::Jjr => "JJR",
            Pos::Jjs => "JJS",
            Pos::Rb => "RB",
            Pos::Prp => "PRP",
            Pos::PrpDollar => "PRP$",
            Pos::Cd => "CD",
            Pos::Cc => "CC",
            Pos::Pos => "POS",
            Pos::Punct => ".",
            Pos::Fw => "FW",
        }
    }
}

/// Tag one lowercased word, with its raw (case-preserving) form and position
/// context.
///
/// Priority: closed-class lexicon → open-class lexicon → capitalization →
/// suffix heuristics.
pub fn tag_word(raw: &str, lower: &str, is_first: bool, prev_is_dt_or_jj: bool) -> Pos {
    if raw.chars().all(|c| !c.is_alphanumeric()) {
        return Pos::Punct;
    }
    if raw.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Pos::Cd;
    }
    if let Some(p) = lexicon::closed_class(lower) {
        return p;
    }
    if let Some(p) = lexicon::open_class(lower) {
        return p;
    }
    // Capitalized mid-sentence (or in a known NP context) → proper noun.
    let capitalized = raw.chars().next().is_some_and(|c| c.is_uppercase());
    if capitalized && !is_first {
        return Pos::Nnp;
    }
    // Suffix heuristics.
    if lower.ends_with("ing") && lower.len() > 4 {
        return Pos::Vbg;
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return Pos::Vbn; // the parser distinguishes VBD/VBN from context
    }
    if lower.ends_with("est") && lower.len() > 4 {
        return Pos::Jjs;
    }
    if lower.ends_with("ous")
        || lower.ends_with("ful")
        || lower.ends_with("ive")
        || lower.ends_with("al")
    {
        return Pos::Jj;
    }
    if lower.ends_with('s') && !lower.ends_with("ss") && lower.len() > 2 {
        return Pos::Nns;
    }
    if capitalized {
        // Sentence-initial capitalized unknown: noun unless a DT/JJ follows…
        // we cannot look ahead here, so default to NNP (questions rarely
        // start with an unknown common noun).
        return Pos::Nnp;
    }
    if prev_is_dt_or_jj {
        return Pos::Nn;
    }
    Pos::Nn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_words() {
        assert_eq!(tag_word("who", "who", true, false), Pos::Wp);
        assert_eq!(tag_word("which", "which", false, false), Pos::Wdt);
        assert_eq!(tag_word("in", "in", false, false), Pos::In);
        assert_eq!(tag_word("the", "the", false, false), Pos::Dt);
        assert_eq!(tag_word("and", "and", false, false), Pos::Cc);
        assert_eq!(tag_word("to", "to", false, false), Pos::To);
        assert_eq!(tag_word("me", "me", false, false), Pos::Prp);
    }

    #[test]
    fn verb_forms() {
        assert_eq!(tag_word("was", "was", false, false), Pos::Vbd);
        assert_eq!(tag_word("is", "is", false, false), Pos::Vbz);
        assert_eq!(tag_word("married", "married", false, false), Pos::Vbn);
        assert_eq!(tag_word("played", "played", false, false), Pos::Vbd);
        assert_eq!(tag_word("starring", "starring", false, false), Pos::Vbg);
        assert_eq!(tag_word("give", "give", true, false), Pos::Vb);
    }

    #[test]
    fn nouns_and_names() {
        assert_eq!(tag_word("actor", "actor", false, false), Pos::Nn);
        assert_eq!(tag_word("movies", "movies", false, false), Pos::Nns);
        assert_eq!(tag_word("Banderas", "banderas", false, false), Pos::Nnp);
        assert_eq!(tag_word("Philadelphia", "philadelphia", false, false), Pos::Nnp);
    }

    #[test]
    fn numbers_and_punct() {
        assert_eq!(tag_word("1984", "1984", false, false), Pos::Cd);
        assert_eq!(tag_word("?", "?", false, false), Pos::Punct);
    }

    #[test]
    fn suffix_fallbacks() {
        assert_eq!(tag_word("flibbering", "flibbering", false, false), Pos::Vbg);
        assert_eq!(tag_word("glorped", "glorped", false, false), Pos::Vbn);
        assert_eq!(tag_word("zorbest", "zorbest", false, false), Pos::Jjs);
        assert_eq!(tag_word("blops", "blops", false, false), Pos::Nns);
        assert_eq!(tag_word("blop", "blop", false, false), Pos::Nn);
    }

    #[test]
    fn predicates() {
        assert!(Pos::Vbd.is_verb());
        assert!(!Pos::Nn.is_verb());
        assert!(Pos::Nns.is_noun());
        assert!(Pos::Wp.is_wh());
        assert!(Pos::Jjs.is_adjective());
        assert!(Pos::Cd.is_np_internal());
        assert_eq!(Pos::PrpDollar.as_str(), "PRP$");
    }
}
