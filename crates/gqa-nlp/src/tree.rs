//! The dependency tree `Y` (paper §4.1): words as nodes, grammatical
//! relations as edge labels.

use crate::deprel::DepRel;
use crate::pos::Pos;
use crate::token::Token;
use std::fmt;

/// A dependency tree over the tokens of one question.
///
/// `heads[i]` is the parent of node `i` (`None` exactly for the root), and
/// `rels[i]` labels the edge `heads[i] → i`.
#[derive(Clone, PartialEq, Debug)]
pub struct DepTree {
    /// The tokens, in sentence order.
    pub tokens: Vec<Token>,
    /// Parent of each node; `None` for the root.
    pub heads: Vec<Option<usize>>,
    /// Label of the incoming edge of each node (`Root` for the root).
    pub rels: Vec<DepRel>,
    /// Index of the root node.
    pub root: usize,
}

impl DepTree {
    /// Number of nodes (`|Y|`).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Children of node `i`, in sentence order.
    pub fn children(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.heads.iter().enumerate().filter(move |&(_, h)| *h == Some(i)).map(|(j, _)| j)
    }

    /// Children of `i` reached via relation `rel`.
    pub fn children_via(&self, i: usize, rel: DepRel) -> impl Iterator<Item = usize> + '_ {
        self.children(i).filter(move |&j| self.rels[j] == rel)
    }

    /// The parent of `i`, if any.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.heads[i]
    }

    /// All nodes of the subtree rooted at `i`, in sentence order.
    pub fn subtree(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend(self.children(x));
        }
        out.sort_unstable();
        out
    }

    /// Token of node `i`.
    pub fn token(&self, i: usize) -> &Token {
        &self.tokens[i]
    }

    /// Lemma of node `i`.
    pub fn lemma(&self, i: usize) -> &str {
        &self.tokens[i].lemma
    }

    /// POS of node `i`.
    pub fn pos(&self, i: usize) -> Pos {
        self.tokens[i].pos
    }

    /// Is this tree a well-formed rooted tree (single root, acyclic, all
    /// nodes reachable)? Used by tests and debug assertions.
    pub fn is_well_formed(&self) -> bool {
        if self.tokens.is_empty() {
            return false;
        }
        if self.heads.len() != self.tokens.len() || self.rels.len() != self.tokens.len() {
            return false;
        }
        let roots = self.heads.iter().filter(|h| h.is_none()).count();
        if roots != 1 || self.heads[self.root].is_some() || self.rels[self.root] != DepRel::Root {
            return false;
        }
        // Every node must reach the root without cycling.
        for mut i in 0..self.len() {
            let mut hops = 0;
            while let Some(h) = self.heads[i] {
                i = h;
                hops += 1;
                if hops > self.len() {
                    return false;
                }
            }
            if i != self.root {
                return false;
            }
        }
        true
    }

    /// The full noun phrase headed at `i`: the subtree restricted to
    /// NP-internal edges (det/amod/nn/num/poss/possessive), in sentence
    /// order, rendered as text.
    pub fn noun_phrase_text(&self, i: usize) -> String {
        let mut nodes: Vec<usize> = vec![i];
        let mut stack = vec![i];
        while let Some(x) = stack.pop() {
            for c in self.children(x) {
                if matches!(self.rels[c], DepRel::Nn | DepRel::Amod | DepRel::Num) {
                    nodes.push(c);
                    stack.push(c);
                }
            }
        }
        nodes.sort_unstable();
        let words: Vec<&str> = nodes.iter().map(|&n| self.tokens[n].text.as_str()).collect();
        words.join(" ")
    }
}

impl fmt::Display for DepTree {
    /// CoNLL-ish rendering: `idx word POS head rel` per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tokens.iter().enumerate() {
            writeln!(
                f,
                "{}\t{}\t{}\t{}\t{}",
                i,
                t.text,
                t.pos.as_str(),
                self.heads[i].map_or(-1i64, |h| h as i64),
                self.rels[i]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::analyze;

    /// Hand-built tree for "the tall actor" rooted at "actor".
    fn np_tree() -> DepTree {
        let tokens = analyze("the tall actor");
        DepTree {
            tokens,
            heads: vec![Some(2), Some(2), None],
            rels: vec![DepRel::Det, DepRel::Amod, DepRel::Root],
            root: 2,
        }
    }

    #[test]
    fn children_and_parent() {
        let t = np_tree();
        assert_eq!(t.children(2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(t.parent(0), Some(2));
        assert_eq!(t.parent(2), None);
        assert_eq!(t.children_via(2, DepRel::Det).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn subtree_is_sorted_and_complete() {
        let t = np_tree();
        assert_eq!(t.subtree(2), vec![0, 1, 2]);
        assert_eq!(t.subtree(0), vec![0]);
    }

    #[test]
    fn well_formedness() {
        let t = np_tree();
        assert!(t.is_well_formed());
        let mut cyclic = t.clone();
        cyclic.heads[2] = Some(0); // cycle, no root
        cyclic.heads[0] = Some(2);
        assert!(!cyclic.is_well_formed());
        let mut two_roots = t.clone();
        two_roots.heads[1] = None;
        assert!(!two_roots.is_well_formed());
    }

    #[test]
    fn noun_phrase_text_excludes_determiner() {
        let t = np_tree();
        assert_eq!(t.noun_phrase_text(2), "tall actor");
    }

    #[test]
    fn display_renders_every_token() {
        let t = np_tree();
        let s = t.to_string();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("actor"));
        assert!(s.contains("amod"));
    }
}
