//! # gqa-baselines — comparison systems (paper §6, §7)
//!
//! * [`deanna`] — a DEANNA-style pipeline [Yahya et al., EMNLP 2012]: the
//!   question is understood *eagerly* — a disambiguation graph is built
//!   over every phrase's candidates, a joint ILP-style optimization picks
//!   exactly one candidate per phrase (solved exactly by branch-and-bound;
//!   exponential, as the paper's Table 12 notes), a single SPARQL query is
//!   generated and evaluated. Pairwise semantic-coherence weights are
//!   computed against the RDF graph on the fly — the cost the paper calls
//!   out ("it is very costly").
//! * [`keyword`] — a naive keyword matcher: link every noun phrase, return
//!   the neighborhood of the best-linked entity. A floor for precision.
//!
//! Both share gAnswer's substrates (parser, linker, dictionary, store), so
//! measured differences isolate the *disambiguation strategy* — exactly the
//! comparison Figure 6 and Table 8 make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deanna;
pub mod keyword;

pub use deanna::{Deanna, DeannaConfig, DeannaResponse};
pub use keyword::KeywordBaseline;
