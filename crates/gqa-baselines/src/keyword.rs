//! A naive keyword baseline: no structure, no disambiguation.
//!
//! Links every noun phrase of the question, picks the best-linked entity,
//! and returns its neighborhood (objects first, then subjects). This is the
//! precision floor the structured systems must beat — akin to the keyword
//! search systems the paper contrasts Q/A against in §7.

use gqa_linker::Linker;
use gqa_nlp::token::analyze;
use gqa_nlp::Pos;
use gqa_rdf::schema::Schema;
use gqa_rdf::Store;

/// The keyword baseline.
pub struct KeywordBaseline<'s> {
    store: &'s Store,
    linker: Linker,
    /// Cap on returned answers.
    pub max_answers: usize,
}

impl<'s> KeywordBaseline<'s> {
    /// Build over a store.
    pub fn new(store: &'s Store) -> Self {
        let schema = Schema::new(store);
        let linker = Linker::new(store, &schema);
        KeywordBaseline { store, linker, max_answers: 10 }
    }

    /// Answer: neighborhood of the best-linked mention.
    pub fn answer(&self, question: &str) -> Vec<String> {
        let tokens = analyze(question);
        // Candidate mentions: maximal proper-noun runs, then single nouns.
        let mut mentions: Vec<String> = Vec::new();
        let mut run: Vec<&str> = Vec::new();
        for t in &tokens {
            if t.pos == Pos::Nnp {
                run.push(&t.text);
            } else {
                if !run.is_empty() {
                    mentions.push(run.join(" "));
                    run.clear();
                }
                if t.pos.is_noun() {
                    mentions.push(t.lemma.clone());
                }
            }
        }
        if !run.is_empty() {
            mentions.push(run.join(" "));
        }

        // Best-confidence entity across mentions.
        let best =
            mentions.iter().flat_map(|m| self.linker.link(m)).filter(|c| !c.is_class).max_by(
                |a, b| a.confidence.partial_cmp(&b.confidence).unwrap_or(std::cmp::Ordering::Equal),
            );
        let Some(best) = best else { return Vec::new() };

        let mut out: Vec<String> = Vec::new();
        for t in self.store.out_edges(best.id) {
            let text = self.store.term(t.o).label().into_owned();
            if !out.contains(&text) {
                out.push(text);
            }
            if out.len() >= self.max_answers {
                return out;
            }
        }
        for t in self.store.in_edges(best.id) {
            let text = self.store.term(t.s).label().into_owned();
            if !out.contains(&text) {
                out.push(text);
            }
            if out.len() >= self.max_answers {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gqa_datagen::minidbp::mini_dbpedia;

    #[test]
    fn returns_the_neighborhood_of_the_linked_entity() {
        let store = mini_dbpedia();
        let sys = KeywordBaseline::new(&store);
        let answers = sys.answer("Who is the mayor of Berlin?");
        assert!(answers.contains(&"Klaus Wowereit".to_owned()), "{answers:?}");
        // …but with plenty of noise alongside (low precision by design).
        assert!(answers.len() > 1, "{answers:?}");
    }

    #[test]
    fn unlinkable_question_returns_nothing() {
        let store = mini_dbpedia();
        let sys = KeywordBaseline::new(&store);
        assert!(sys.answer("What is the meaning of life?").is_empty());
    }
}
